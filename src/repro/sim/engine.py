"""The discrete-event simulation engine.

:class:`SimulationEngine` owns the clock and the event queue and exposes a
small API used by the streaming substrate:

* :meth:`SimulationEngine.schedule` / :meth:`schedule_in` -- one-shot events,
* :meth:`SimulationEngine.schedule_periodic` -- periodic processes
  (peer scheduling rounds, churn, metric sampling),
* :meth:`SimulationEngine.run` / :meth:`run_until` / :meth:`step` -- the
  event loop,
* :exc:`StopSimulation` -- raised by a callback to end the run early
  (used when every peer has completed its source switch).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.telemetry import get_telemetry
from repro.sim.clock import SimulationClock
from repro.sim.events import Event, EventCallback, EventQueue
from repro.sim.process import PeriodicProcess


class StopSimulation(Exception):
    """Raised from an event callback to stop the event loop immediately.

    The optional ``reason`` is preserved on :attr:`SimulationEngine.stop_reason`.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason)
        self.reason = reason


class SimulationEngine:
    """A deterministic discrete-event simulation loop.

    Parameters
    ----------
    start_time:
        Initial simulation time (seconds).  Experiments with a simulated
        warm-up start at a negative time so that the source switch happens
        at ``t = 0`` exactly as in the paper's timeline.

    Notes
    -----
    The engine is single-threaded and deterministic: events with identical
    timestamps execute in (priority, insertion) order.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = SimulationClock(start_time)
        self.queue = EventQueue()
        self._running = False
        self._processed = 0
        self.stop_reason: Optional[str] = None

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        when: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``when``.

        Raises
        ------
        ValueError
            If ``when`` is in the past.
        """
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now}, when={when}"
            )
        return self.queue.push(when, callback, priority=priority, label=label)

    def schedule_in(
        self,
        delay: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.clock.now + delay, callback, priority=priority, label=label)

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[float], None],
        *,
        start: Optional[float] = None,
        priority: int = 0,
        label: str = "",
    ) -> PeriodicProcess:
        """Register a periodic process firing every ``period`` seconds.

        The ``callback`` receives the current simulation time.  The first
        firing happens at ``start`` (defaults to ``now + period``).
        """
        process = PeriodicProcess(
            engine=self,
            period=period,
            callback=callback,
            priority=priority,
            label=label,
        )
        first = self.clock.now + period if start is None else start
        process.start(first)
        return process

    def cancel(self, event: Event) -> None:
        """Cancel a pending one-shot event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------ #
    # the event loop
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty.  A :exc:`StopSimulation` raised by the callback is propagated
        after recording its reason.
        """
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        try:
            event.callback()
        except StopSimulation as stop:
            self.stop_reason = stop.reason or "stopped"
            raise
        finally:
            self._processed += 1
        return True

    def run(self, *, max_events: Optional[int] = None) -> None:
        """Run until the queue is exhausted (or ``max_events`` is reached)."""
        self._run(until=None, max_events=max_events)

    def run_until(self, until: float, *, max_events: Optional[int] = None) -> None:
        """Run until simulation time ``until`` (inclusive) or the queue empties."""
        self._run(until=until, max_events=max_events)

    def _run(self, *, until: Optional[float], max_events: Optional[int]) -> None:
        obs = get_telemetry()
        start_processed = self._processed
        with obs.span("engine.run", until=until):
            self._run_loop(until=until, max_events=max_events)
        if obs.enabled:
            obs.counter("engine.events").add(self._processed - start_processed)
            obs.gauge("engine.pending_events").set(len(self.queue))

    def _run_loop(self, *, until: Optional[float], max_events: Optional[int]) -> None:
        self._running = True
        self.stop_reason = None
        executed = 0
        try:
            while True:
                nxt = self.queue.peek()
                if nxt is None:
                    if until is not None and until > self.clock.now:
                        # The queue drained before the horizon: still advance
                        # the clock to it, so callers observe the time they
                        # asked to run until (mirrors the future-event case).
                        self.clock.advance_to(until)
                    break
                if until is not None and nxt.time > until:
                    # Advance the clock to the horizon so callers observe it.
                    self.clock.advance_to(until)
                    break
                if max_events is not None and executed >= max_events:
                    break
                try:
                    self.step()
                except StopSimulation:
                    break
                executed += 1
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationEngine(now={self.clock.now!r}, pending={len(self.queue)}, "
            f"processed={self._processed})"
        )
