"""Virtual time for the discrete-event engine.

The simulation clock is a monotonically non-decreasing floating point time
expressed in seconds.  Time ``0.0`` is, by convention of the paper's
evaluation, the instant at which the old source ``S1`` stops generating new
segments and the new source ``S2`` starts; the warm-up phase therefore runs
at negative times when a simulated warm-up is requested.
"""

from __future__ import annotations

import math


def round_half_up(value: float) -> int:
    """Deterministic round-half-up: ``floor(value + 0.5)``.

    The simulator's single rounding policy for turning expectations and
    time ratios into whole counts (churn sizes, periods per phase, period
    indices).  Python's ``round`` uses banker's rounding (``round(0.5) ==
    0``), which makes small populations churn never and is sensitive to
    the parity of the integral part; this policy is monotone in ``value``
    and therefore safe to reproduce across call sites.

    Examples
    --------
    >>> round_half_up(0.5), round_half_up(1.5), round_half_up(2.5)
    (1, 2, 3)
    >>> round_half_up(0.49)
    0
    """
    return math.floor(value + 0.5)


class ClockError(RuntimeError):
    """Raised when the clock would be moved backwards."""


class SimulationClock:
    """A monotonic virtual clock.

    Parameters
    ----------
    start:
        Initial simulation time in seconds.  Defaults to ``0.0``.

    Examples
    --------
    >>> clock = SimulationClock()
    >>> clock.now
    0.0
    >>> clock.advance_to(2.5)
    >>> clock.now
    2.5
    """

    __slots__ = ("_now", "_start")

    def __init__(self, start: float = 0.0) -> None:
        self._start = float(start)
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def start(self) -> float:
        """The time the clock was created with (or last reset to)."""
        return self._start

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since the start of the simulation."""
        return self._now - self._start

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises
        ------
        ClockError
            If ``when`` is earlier than the current time.  Equal times are
            allowed (many events may share a timestamp).
        """
        when = float(when)
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now!r}, requested={when!r}"
            )
        self._now = when

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock to ``start`` (used between experiment repetitions)."""
        self._start = float(start)
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now!r})"
