"""Periodic processes on top of the event queue.

A :class:`PeriodicProcess` re-schedules itself every ``period`` seconds.  It
is the building block for the paper's *data scheduling period*
(``tau = 1.0 s``): each peer's buffer-map exchange / request scheduling, the
churn model and the metric sampler are all periodic processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import SimulationEngine
    from repro.sim.events import Event


class PeriodicProcess:
    """A callback invoked every ``period`` seconds of simulated time.

    Instances are normally created through
    :meth:`repro.sim.engine.SimulationEngine.schedule_periodic`.

    Attributes
    ----------
    period:
        Interval between invocations (seconds).
    fired:
        Number of completed invocations.
    """

    def __init__(
        self,
        engine: "SimulationEngine",
        period: float,
        callback: Callable[[float], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._engine = engine
        self.period = float(period)
        self._callback = callback
        self._priority = priority
        self.label = label
        self._pending: Optional["Event"] = None
        self._stopped = False
        self.fired = 0

    @property
    def active(self) -> bool:
        """Whether the process will fire again."""
        return not self._stopped and self._pending is not None

    def start(self, first_time: float) -> None:
        """Schedule the first invocation at ``first_time``."""
        if self._stopped:
            raise RuntimeError("cannot restart a stopped PeriodicProcess")
        self._pending = self._engine.schedule(
            first_time, self._fire, priority=self._priority, label=self.label
        )

    def stop(self) -> None:
        """Cancel the next (and all future) invocations."""
        self._stopped = True
        if self._pending is not None:
            self._engine.cancel(self._pending)
            self._pending = None

    def _fire(self) -> None:
        if self._stopped:
            return
        now = self._engine.now
        # Re-schedule first so a callback that raises StopSimulation leaves a
        # consistent queue, and so a callback calling ``stop`` cancels it.
        self._pending = self._engine.schedule(
            now + self.period, self._fire, priority=self._priority, label=self.label
        )
        self.fired += 1
        self._callback(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "stopped"
        return f"PeriodicProcess(label={self.label!r}, period={self.period}, {state})"
