"""Events and the time-ordered event queue.

Events are lightweight records ``(time, priority, sequence, callback)``
kept in a binary heap.  Ties on time are broken first by an explicit
integer priority (lower runs first) and then by insertion order, which
makes event execution fully deterministic for a given seed -- a property
the reproduction relies on so that every figure can be regenerated
bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

EventCallback = Callable[[], None]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulation time at which the callback fires.
    priority:
        Tie-breaker for events sharing a timestamp; lower values run first.
    sequence:
        Monotone insertion counter; the final tie-breaker.
    callback:
        Zero-argument callable executed when the event fires.
    label:
        Optional human-readable label (used in error messages and traces).
    """

    time: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False, hash=False)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    The queue supports lazy cancellation: :meth:`cancel` marks an event and
    :meth:`pop` silently discards cancelled entries.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def push(
        self,
        time: float,
        callback: EventCallback,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at simulation time ``time`` and return the event."""
        event = Event(
            time=float(time),
            priority=int(priority),
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (no-op if already executed)."""
        self._cancelled.add(event.sequence)

    def is_cancelled(self, event: Event) -> bool:
        return event.sequence in self._cancelled

    def peek(self) -> Optional[Event]:
        """Return the next runnable event without removing it, or ``None``."""
        while self._heap and self._heap[0].sequence in self._cancelled:
            dropped = heapq.heappop(self._heap)
            self._cancelled.discard(dropped.sequence)
        return self._heap[0] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next runnable event, or ``None`` when empty."""
        nxt = self.peek()
        if nxt is None:
            return None
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._cancelled.clear()

    def __iter__(self) -> Iterator[Event]:
        """Iterate over pending (non-cancelled) events in heap order (unsorted)."""
        return (e for e in self._heap if e.sequence not in self._cancelled)
