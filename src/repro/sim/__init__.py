"""Discrete-event simulation substrate.

The paper evaluates the fast source switch algorithm on an ad-hoc simulator
of a pull-based (gossip) P2P streaming system with a data scheduling period
of ``tau = 1.0`` seconds.  This subpackage provides the generic simulation
machinery that the streaming substrate (:mod:`repro.streaming`) is built on:

* :class:`~repro.sim.clock.SimulationClock` -- the virtual time source,
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue`
  -- the time-ordered event queue,
* :class:`~repro.sim.engine.SimulationEngine` -- the event loop, with
  support for one-shot and periodic callbacks (processes),
* :class:`~repro.sim.process.PeriodicProcess` -- the scheduling-period
  abstraction used by peers, sources and the churn model,
* :mod:`repro.sim.rng` -- deterministic, named random-number streams so
  that every experiment is exactly reproducible from a single seed.

The engine is deliberately minimal and dependency-free: the streaming
workload drives it with one periodic process per logical activity (rounds,
churn, metric sampling) rather than one event per packet, which keeps
laptop-scale runs of thousands of peers tractable (see the scaling notes in
``DESIGN.md``).
"""

from repro.sim.clock import SimulationClock, round_half_up
from repro.sim.engine import SimulationEngine, StopSimulation
from repro.sim.events import Event, EventQueue
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams, derive_seed

__all__ = [
    "SimulationClock",
    "round_half_up",
    "SimulationEngine",
    "StopSimulation",
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "RandomStreams",
    "derive_seed",
]
