"""Deterministic named random-number streams.

Every stochastic decision in the simulator (topology augmentation, bandwidth
assignment, request ordering, churn, ...) draws from its own named
``numpy.random.Generator`` derived from a single experiment seed.  This has
two benefits that matter for a faithful reproduction:

* experiments are bit-for-bit repeatable from one integer seed, and
* changing one stochastic component (say, enabling churn) does not perturb
  the random draws of unrelated components, so algorithm comparisons stay
  paired -- the fast and normal switch algorithms are evaluated on exactly
  the same overlays, bandwidth assignments and churn schedules, as in the
  paper's paired comparisons.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

import numpy as np

__all__ = ["derive_seed", "sequence_seeds", "RandomStreams"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    The derivation uses SHA-256 so that child seeds are effectively
    independent, stable across Python versions (unlike ``hash``), and
    insensitive to the order in which streams are requested.
    """
    digest = hashlib.sha256(f"{int(root_seed)}::{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def sequence_seeds(root_seed: int, n: int) -> List[int]:
    """``n`` independent child seeds spawned from one root seed.

    Uses :class:`numpy.random.SeedSequence` spawning -- the mechanism numpy
    provides for building families of statistically independent generators
    -- rather than hand-offset seeds (``seed + k`` would correlate child
    streams that share low-entropy roots).  The multi-channel universe
    derives one child seed per channel this way, so two channels' event
    streams are uncorrelated and each channel's draws are stable no matter
    how many worker processes execute the universe.

    Examples
    --------
    >>> sequence_seeds(7, 3) == sequence_seeds(7, 3)
    True
    >>> len(set(sequence_seeds(7, 100)))
    100
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    # SeedSequence entropy must be non-negative; negative roots are folded
    # into the unsigned 64-bit space deterministically.
    children = np.random.SeedSequence(int(root_seed) % 2**64).spawn(int(n))
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


class RandomStreams:
    """A registry of named, independently seeded random generators.

    Parameters
    ----------
    seed:
        The experiment-level root seed.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("bandwidth").integers(0, 100, size=3)
    >>> b = RandomStreams(seed=7).get("bandwidth").integers(0, 100, size=3)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self._seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose root seed is derived from ``name``.

        Useful when a sub-component (e.g. one simulation repetition in a
        sweep) needs its own full family of streams.
        """
        return RandomStreams(derive_seed(self._seed, f"spawn::{name}"))

    def reset(self) -> None:
        """Forget all streams; subsequent :meth:`get` calls re-create them."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
