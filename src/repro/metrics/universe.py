"""Per-channel and per-popularity-decile zap-time aggregation.

The multi-channel universe (:mod:`repro.channels`) measures the paper's
source switch once per channel of a Zipf lineup; this module owns the
statistics the universe reports:

* :func:`zap_time_stats` -- the per-peer *zap time* distribution of one
  channel mesh (mean and 50th/90th/99th percentiles).  The zap time of a
  peer is its switch completion time: the moment playback of the new
  stream actually starts (the viewer sees the new channel).  Peers that
  never completed within the horizon contribute the horizon, mirroring
  :class:`~repro.metrics.collectors.MetricsCollector`.
* :func:`decile_of` -- the popularity-decile bucketing shared by the
  lineup and the reports: decile 0 is the most popular tenth of the
  lineup, decile 9 the least popular.
* :func:`weighted_mean` -- peer-count-weighted averaging used to roll
  per-channel means up to deciles exactly (a decile's mean zap time is the
  mean over all peers of its channels, not the mean of channel means).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.metrics.collectors import PeerOutcome

__all__ = [
    "ZapTimeStats",
    "zap_time_stats",
    "zap_time_values",
    "decile_of",
    "weighted_mean",
]


@dataclass(frozen=True)
class ZapTimeStats:
    """Zap-time distribution of one channel mesh under one algorithm."""

    peers: int
    mean: float
    p50: float
    p90: float
    p99: float
    unfinished: int


def zap_time_values(
    outcomes: Sequence[PeerOutcome], *, horizon: float
) -> Tuple[List[float], int]:
    """Per-peer zap-time samples of one channel mesh.

    Returns the samples (one per tracked peer, in outcome order) and how
    many peers never completed within the horizon -- those contribute the
    horizon itself, mirroring
    :class:`~repro.metrics.collectors.MetricsCollector`.  This is the raw
    distribution both :func:`zap_time_stats` and the sharded runtime's
    streaming sketches (:mod:`repro.metrics.sketch`) are computed from, so
    the two aggregation paths agree sample for sample.
    """
    values: List[float] = []
    unfinished = 0
    for outcome in outcomes:
        if outcome.switch_complete_time is None:
            unfinished += 1
            values.append(float(horizon))
        else:
            values.append(float(outcome.switch_complete_time))
    return values, unfinished


def zap_time_stats(
    outcomes: Sequence[PeerOutcome], *, horizon: float
) -> ZapTimeStats:
    """Per-peer zap-time statistics over one channel's tracked peers.

    Percentiles use linear interpolation on the sorted samples; an empty
    outcome list yields all-zero statistics (a channel whose mesh emptied
    out before the switch completed).
    """
    values, unfinished = zap_time_values(outcomes, horizon=horizon)
    if not values:
        return ZapTimeStats(peers=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, unfinished=0)
    samples = np.sort(np.asarray(values, dtype=float))
    p50, p90, p99 = (float(v) for v in np.percentile(samples, [50.0, 90.0, 99.0]))
    return ZapTimeStats(
        peers=int(samples.size),
        mean=float(samples.mean()),
        p50=p50,
        p90=p90,
        p99=p99,
        unfinished=unfinished,
    )


def decile_of(rank: int, n_channels: int) -> int:
    """Popularity decile of the channel at popularity ``rank`` (0-based).

    The lineup is split into ten equal rank bands; with fewer than ten
    channels some deciles are simply unpopulated.

    Examples
    --------
    >>> [decile_of(r, 20) for r in (0, 1, 2, 18, 19)]
    [0, 0, 1, 9, 9]
    """
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")
    if not (0 <= rank < n_channels):
        raise ValueError(f"rank must be in [0, {n_channels}), got {rank}")
    return (rank * 10) // n_channels


def weighted_mean(pairs: Sequence[Tuple[float, int]]) -> float:
    """Mean of ``(value, weight)`` pairs; 0.0 when the weights sum to zero."""
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        return 0.0
    return sum(value * weight for value, weight in pairs) / total
