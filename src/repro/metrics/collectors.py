"""Per-round and per-run metric collection.

The collector is fed once per scheduling period with the tracked peers'
state and produces:

* a :class:`RoundSample` time series -- the data behind the *ratio track*
  figures (Figures 5 and 9): average undelivered ratio of the old source
  and average delivered ratio of the new source's startup window;
* a :class:`SwitchMetrics` summary -- the data behind the bar/line figures
  (Figures 6, 7, 10, 11): average (and worst-case) finishing time of the
  old source, preparing time of the new source and switch completion time.

Peers that never complete within the simulated horizon are accounted for
with the horizon time (and counted in ``unfinished``), so truncated runs
bias both algorithms identically instead of silently dropping slow nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["PeerOutcome", "RoundSample", "SwitchMetrics", "MetricsCollector"]


@dataclass(frozen=True)
class PeerOutcome:
    """Final per-peer switch outcome.

    Attributes
    ----------
    node_id:
        Peer id.
    q0:
        Undelivered old-source segments at the switch instant.
    finish_old_time:
        When the peer finished playing the old source (``None`` if never).
    prepared_new_time:
        When the peer had gathered the new source's startup window.
    switch_complete_time:
        When the peer actually started playing the new source
        (``max`` of the two conditions).
    stalls:
        Old-stream playback stalls experienced after the switch instant.
    stalls_new:
        New-stream playback stalls (post-switch continuity losses).
    segments_received:
        Total segments delivered to the peer during the measured window.
    peer_class:
        Bandwidth-class label of the peer (empty when the population is
        homogeneous); feeds the per-class workload metrics.
    region:
        Network-region label of the peer (empty under the ideal fabric);
        feeds the per-region switch-time breakdown of :mod:`repro.metrics.net`.
    """

    node_id: int
    q0: int
    finish_old_time: Optional[float]
    prepared_new_time: Optional[float]
    switch_complete_time: Optional[float]
    stalls: int = 0
    stalls_new: int = 0
    segments_received: int = 0
    peer_class: str = ""
    region: str = ""


@dataclass(frozen=True)
class RoundSample:
    """System-wide averages at the end of one scheduling period.

    ``cumulative_stalls`` is the running total of stall periods over all
    tracked peers and both streams; differencing it between two samples
    gives the stalls incurred in that window (the per-phase continuity
    accounting of the workload engine).
    """

    time: float
    undelivered_ratio_old: float
    delivered_ratio_new: float
    fraction_finished_old: float
    fraction_prepared_new: float
    fraction_switched: float
    tracked_peers: int
    cumulative_stalls: int = 0


@dataclass
class SwitchMetrics:
    """Summary of one simulation run.

    All times are in seconds from the switch instant.  ``avg_switch_time``
    is the paper's headline metric (the average preparing time of the new
    source); ``avg_start_time`` additionally respects the
    finished-old-playback condition (the time playback of the new source
    actually starts).
    """

    algorithm: str
    n_peers: int
    avg_finish_old: float
    avg_prepare_new: float
    avg_switch_time: float
    avg_start_time: float
    last_finish_old: float
    last_prepare_new: float
    last_start_time: float
    unfinished: int
    horizon: float
    overhead_ratio: float = 0.0
    rounds: List[RoundSample] = field(default_factory=list)
    outcomes: List[PeerOutcome] = field(default_factory=list)

    def series(self, attribute: str) -> List[tuple[float, float]]:
        """``(time, value)`` series of a :class:`RoundSample` attribute."""
        return [(sample.time, getattr(sample, attribute)) for sample in self.rounds]


class MetricsCollector:
    """Collects round samples and computes the final summary."""

    def __init__(self, startup_quota_new: int) -> None:
        if startup_quota_new <= 0:
            raise ValueError("startup_quota_new must be positive")
        self.startup_quota_new = int(startup_quota_new)
        self.rounds: List[RoundSample] = []

    # ------------------------------------------------------------------ #
    def sample_round(
        self, time: float, peers: Sequence, departed_stalls: int = 0
    ) -> RoundSample:
        """Record system-wide averages over the tracked ``peers``.

        ``peers`` are :class:`repro.streaming.peer.PeerNode` objects (typed
        loosely to keep this module free of simulator imports for testing).
        ``departed_stalls`` is the frozen stall total of tracked peers that
        have already left through churn; folding it in keeps
        ``cumulative_stalls`` monotone under departures (a leaver's stall
        history must not vanish from the continuity accounting).  The
        session maintains it as a counter at removal time, so sampling
        stays O(alive peers).
        """
        tracked = [p for p in peers if getattr(p, "tracked", True)]
        departed_stalls = int(departed_stalls)
        if not tracked:
            sample = RoundSample(
                time=float(time),
                undelivered_ratio_old=0.0,
                delivered_ratio_new=0.0,
                fraction_finished_old=1.0,
                fraction_prepared_new=1.0,
                fraction_switched=1.0,
                tracked_peers=0,
                cumulative_stalls=departed_stalls,
            )
            self.rounds.append(sample)
            return sample

        undelivered: List[float] = []
        delivered: List[float] = []
        finished = 0
        prepared = 0
        switched = 0
        stalls = departed_stalls
        for peer in tracked:
            stalls += int(getattr(peer, "total_stalls", 0))
            q0 = peer.q0 if peer.q0 else 0
            if q0 > 0:
                undelivered.append(peer.undelivered_old() / q0)
            else:
                undelivered.append(0.0)
            delivered.append(peer.delivered_new_startup() / self.startup_quota_new)
            if peer.finish_old_time is not None:
                finished += 1
            if peer.prepared_new_time is not None:
                prepared += 1
            if peer.switch_complete_time is not None:
                switched += 1

        count = len(tracked)
        sample = RoundSample(
            time=float(time),
            undelivered_ratio_old=float(np.mean(undelivered)),
            delivered_ratio_new=float(np.mean(delivered)),
            fraction_finished_old=finished / count,
            fraction_prepared_new=prepared / count,
            fraction_switched=switched / count,
            tracked_peers=count,
            cumulative_stalls=stalls,
        )
        self.rounds.append(sample)
        return sample

    # ------------------------------------------------------------------ #
    def finalize(
        self,
        peers: Sequence,
        *,
        algorithm: str,
        horizon: float,
        overhead_ratio: float = 0.0,
    ) -> SwitchMetrics:
        """Build the run summary from the tracked peers' recorded times."""
        tracked = [p for p in peers if getattr(p, "tracked", True)]
        outcomes: List[PeerOutcome] = []
        finish_times: List[float] = []
        prepare_times: List[float] = []
        start_times: List[float] = []
        unfinished = 0
        for peer in tracked:
            finish = peer.finish_old_time
            prepare = peer.prepared_new_time
            start = peer.switch_complete_time
            if finish is None or prepare is None or start is None:
                unfinished += 1
            finish_times.append(finish if finish is not None else horizon)
            prepare_times.append(prepare if prepare is not None else horizon)
            start_times.append(start if start is not None else horizon)
            outcomes.append(
                PeerOutcome(
                    node_id=peer.node_id,
                    q0=peer.q0 or 0,
                    finish_old_time=finish,
                    prepared_new_time=prepare,
                    switch_complete_time=start,
                    stalls=peer.playback_old.stall_periods if peer.playback_old else 0,
                    stalls_new=(
                        peer.playback_new.stall_periods
                        if getattr(peer, "playback_new", None) is not None
                        else 0
                    ),
                    segments_received=peer.segments_received_total,
                    peer_class=str(getattr(peer, "peer_class", "")),
                    region=str(getattr(peer, "region", "")),
                )
            )

        return SwitchMetrics(
            algorithm=algorithm,
            n_peers=len(tracked),
            avg_finish_old=_mean(finish_times),
            avg_prepare_new=_mean(prepare_times),
            avg_switch_time=_mean(prepare_times),
            avg_start_time=_mean(start_times),
            last_finish_old=_max(finish_times),
            last_prepare_new=_max(prepare_times),
            last_start_time=_max(start_times),
            unfinished=unfinished,
            horizon=float(horizon),
            overhead_ratio=float(overhead_ratio),
            rounds=list(self.rounds),
            outcomes=outcomes,
        )


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return float(np.mean(values)) if values else 0.0


def _max(values: Iterable[float]) -> float:
    values = list(values)
    return float(np.max(values)) if values else 0.0
