"""Result comparison, plain-text tables and metric serialisation.

The benchmark harness prints, for every figure it regenerates, the same
rows/series the paper reports.  This module provides the small amount of
shared formatting machinery: pairwise comparison of a fast-switch run with
a normal-switch run (reduction ratio, Figure 7/11) and fixed-width text
tables.  It also owns the JSON-friendly (de)serialisation of
:class:`~repro.metrics.collectors.SwitchMetrics`, used by the persistent
result store (:mod:`repro.experiments.store`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.metrics.collectors import PeerOutcome, RoundSample, SwitchMetrics

__all__ = [
    "mean_of",
    "reduction_ratio",
    "ComparisonRow",
    "compare_metrics",
    "format_table",
    "format_series",
    "metrics_to_dict",
    "metrics_from_dict",
]


def mean_of(values: Sequence[float]) -> float:
    """Plain mean of a sequence; 0.0 when empty (tables over zero reps)."""
    values = list(values)
    return float(sum(values) / len(values)) if values else 0.0


def reduction_ratio(normal_value: float, fast_value: float) -> float:
    """Relative reduction of ``fast_value`` versus ``normal_value``.

    The paper's metric 2: ``(normal - fast) / normal``.  Zero when the
    baseline value is not positive (nothing to reduce).
    """
    if normal_value <= 0:
        return 0.0
    return (normal_value - fast_value) / normal_value


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a fast-vs-normal comparison table (one network size)."""

    label: str
    n_peers: int
    normal_finish_old: float
    fast_finish_old: float
    fast_prepare_new: float
    normal_prepare_new: float
    switch_time_reduction: float
    normal_overhead: float
    fast_overhead: float

    def as_dict(self) -> Mapping[str, float | int | str]:
        """Dictionary form (used by the CLI's machine-readable output)."""
        return {
            "label": self.label,
            "n_peers": self.n_peers,
            "normal_finish_old": self.normal_finish_old,
            "fast_finish_old": self.fast_finish_old,
            "fast_prepare_new": self.fast_prepare_new,
            "normal_prepare_new": self.normal_prepare_new,
            "switch_time_reduction": self.switch_time_reduction,
            "normal_overhead": self.normal_overhead,
            "fast_overhead": self.fast_overhead,
        }


def compare_metrics(
    label: str,
    normal: SwitchMetrics,
    fast: SwitchMetrics,
) -> ComparisonRow:
    """Build a comparison row from one normal-switch and one fast-switch run."""
    return ComparisonRow(
        label=label,
        n_peers=normal.n_peers,
        normal_finish_old=normal.avg_finish_old,
        fast_finish_old=fast.avg_finish_old,
        fast_prepare_new=fast.avg_prepare_new,
        normal_prepare_new=normal.avg_prepare_new,
        switch_time_reduction=reduction_ratio(normal.avg_switch_time, fast.avg_switch_time),
        normal_overhead=normal.overhead_ratio,
        fast_overhead=fast.overhead_ratio,
    )


def metrics_to_dict(metrics: SwitchMetrics) -> Dict[str, Any]:
    """JSON-friendly dictionary form of a :class:`SwitchMetrics` summary.

    The nested :class:`RoundSample` and :class:`PeerOutcome` records become
    plain dictionaries; :func:`metrics_from_dict` restores the exact
    original (floats round-trip bit-identically through ``json``).
    """
    return asdict(metrics)


def metrics_from_dict(payload: Mapping[str, Any]) -> SwitchMetrics:
    """Rebuild a :class:`SwitchMetrics` from :func:`metrics_to_dict` output."""
    data = dict(payload)
    data["rounds"] = [RoundSample(**dict(sample)) for sample in data.get("rounds", [])]
    data["outcomes"] = [PeerOutcome(**dict(outcome)) for outcome in data.get("outcomes", [])]
    return SwitchMetrics(**data)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of mappings as a fixed-width text table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    series: Sequence[tuple[float, float]],
    *,
    x_label: str = "time",
    y_label: str = "value",
    float_format: str = "{:.3f}",
) -> str:
    """Render a ``(x, y)`` series as a two-column text table."""
    rows = [{x_label: x, y_label: y} for x, y in series]
    return format_table(rows, [x_label, y_label], float_format=float_format)
