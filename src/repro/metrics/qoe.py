"""Quality-of-experience metrics for time-scripted workloads.

The paper reports switch-time averages over a homogeneous population and a
single switch event.  The workload engine (:mod:`repro.workloads`) drives
repeated switches through phases of varying churn and bandwidth, so its
reports need finer-grained quality measures:

* :class:`PhaseQoE` -- playback continuity over one phase window: the
  *playback continuity index* (fraction of peer-periods free of stalls),
  the absolute number of stall periods incurred, and how far the switch
  progressed by the end of the phase;
* :class:`ClassSwitchStats` -- per bandwidth class (ADSL/cable/fiber ...),
  the mean and the 50th/90th/99th percentiles of the per-peer switch
  completion times (peers that never completed are accounted for with the
  horizon, mirroring :class:`~repro.metrics.collectors.MetricsCollector`).

Both are computed from data the session already records -- the
:class:`~repro.metrics.collectors.RoundSample` series and the per-peer
:class:`~repro.metrics.collectors.PeerOutcome` records -- so a stored
result can be re-analysed without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.metrics.collectors import PeerOutcome, RoundSample

__all__ = [
    "PhaseQoE",
    "ClassSwitchStats",
    "phase_qoe",
    "per_class_switch_stats",
    "continuity_index",
]


@dataclass(frozen=True)
class PhaseQoE:
    """Playback quality over one phase window of a workload segment.

    Attributes
    ----------
    phase:
        Phase name from the workload spec.
    start / end:
        Window bounds in seconds from the segment's switch instant.
    periods:
        Number of scheduling periods the window covers.
    stall_periods:
        Stall periods incurred by tracked peers inside the window.
    continuity_index:
        ``1 - stall_periods / (peers x periods)`` clamped to ``[0, 1]`` --
        1.0 means nobody stalled during the phase.
    fraction_switched:
        Fraction of tracked peers that had completed the switch by the end
        of the window.
    """

    phase: str
    start: float
    end: float
    periods: int
    stall_periods: int
    continuity_index: float
    fraction_switched: float


@dataclass(frozen=True)
class ClassSwitchStats:
    """Switch-time distribution of one bandwidth class.

    Times are per-peer switch completion times in seconds from the switch
    instant; unfinished peers contribute the horizon.
    """

    peer_class: str
    peers: int
    mean: float
    p50: float
    p90: float
    p99: float


def continuity_index(stalls: int, peers: int, periods: int) -> float:
    """``1 - stalls / (peers x periods)``, clamped to ``[0, 1]``."""
    slots = peers * periods
    if slots <= 0:
        return 1.0
    return max(0.0, min(1.0, 1.0 - stalls / slots))


def _window_samples(
    rounds: Sequence[RoundSample], start: float, end: float
) -> List[RoundSample]:
    return [sample for sample in rounds if start < sample.time <= end + 1e-9]


def phase_qoe(
    rounds: Sequence[RoundSample],
    windows: Sequence[Tuple[str, float, float]],
) -> Tuple[PhaseQoE, ...]:
    """Per-phase QoE from a session's round-sample series.

    Parameters
    ----------
    rounds:
        The session's :class:`RoundSample` series (``record_rounds=True``).
    windows:
        ``(phase_name, start, end)`` triples in seconds from the switch
        instant, contiguous and in order (the compiled workload schedule's
        phase windows).

    Stall accounting differences the ``cumulative_stalls`` counter at the
    window bounds, so phases partition the session's stalls exactly.
    Stalls incurred at or before time 0 (a simulated warm-up runs at
    negative times) are excluded via the baseline sample, not charged to
    the first phase.  A window past the recorded horizon (the session
    stopped early) reports zero periods and carries the last known switch
    fraction.
    """
    results: List[PhaseQoE] = []
    baseline = [sample for sample in rounds if sample.time <= 0]
    stalls_before = baseline[-1].cumulative_stalls if baseline else 0
    fraction = 1.0 if not rounds else rounds[0].fraction_switched
    for name, start, end in windows:
        samples = _window_samples(rounds, start, end)
        if samples:
            stalls_at_end = samples[-1].cumulative_stalls
            fraction = samples[-1].fraction_switched
            peers = max(sample.tracked_peers for sample in samples)
        else:
            stalls_at_end = stalls_before
            peers = 0
        stall_count = max(0, stalls_at_end - stalls_before)
        stalls_before = stalls_at_end
        results.append(
            PhaseQoE(
                phase=name,
                start=float(start),
                end=float(end),
                periods=len(samples),
                stall_periods=stall_count,
                continuity_index=continuity_index(stall_count, peers, len(samples)),
                fraction_switched=float(fraction),
            )
        )
    return tuple(results)


def per_class_switch_stats(
    outcomes: Sequence[PeerOutcome],
    *,
    horizon: float,
) -> Tuple[ClassSwitchStats, ...]:
    """Switch-time percentiles grouped by peer class.

    Peers without a class label are grouped under ``"all"``; classes are
    returned sorted by name so the output is deterministic.  Percentiles
    use linear interpolation on the sorted per-class samples.
    """
    groups: Dict[str, List[float]] = {}
    for outcome in outcomes:
        label = outcome.peer_class or "all"
        value = (
            outcome.switch_complete_time
            if outcome.switch_complete_time is not None
            else float(horizon)
        )
        groups.setdefault(label, []).append(float(value))
    stats: List[ClassSwitchStats] = []
    for label in sorted(groups):
        values = np.sort(np.asarray(groups[label], dtype=float))
        p50, p90, p99 = (float(v) for v in np.percentile(values, [50.0, 90.0, 99.0]))
        stats.append(
            ClassSwitchStats(
                peer_class=label,
                peers=int(values.size),
                mean=float(values.mean()),
                p50=p50,
                p90=p90,
                p99=p99,
            )
        )
    return tuple(stats)
