"""Per-network-region switch-time breakdown.

The network layer (:mod:`repro.net`) places every peer in a named region;
this module rolls the per-peer switch outcomes up by region, the way
:mod:`repro.metrics.qoe` rolls them up by bandwidth class:

* :func:`per_region_switch_stats` -- one :class:`RegionSwitchStats` per
  populated region of a single run (mean and percentiles of the switch
  completion time, unfinished peers contributing the horizon);
* :func:`region_comparison_rows` -- the paired fast-vs-normal per-region
  table behind ``repro compare --topology ...`` (mean switch time of each
  algorithm per region plus the reduction ratio).

Peers with an empty region label (runs on the ideal fabric) fall into a
single ``"-"`` bucket, so the functions are safe to call on any result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.metrics.collectors import PeerOutcome
from repro.metrics.report import reduction_ratio

__all__ = [
    "RegionSwitchStats",
    "per_region_switch_stats",
    "region_comparison_rows",
    "fabric_stats_rows",
]

#: Bucket label used for peers without a region (ideal-fabric runs).
NO_REGION = "-"


@dataclass(frozen=True)
class RegionSwitchStats:
    """Switch-time distribution of one region's tracked peers."""

    region: str
    peers: int
    mean: float
    p50: float
    p90: float
    unfinished: int


def _completion_times(
    outcomes: Sequence[PeerOutcome], horizon: float
) -> Dict[str, List[float]]:
    by_region: Dict[str, List[float]] = {}
    for outcome in outcomes:
        region = outcome.region or NO_REGION
        time = (
            float(outcome.switch_complete_time)
            if outcome.switch_complete_time is not None
            else float(horizon)
        )
        by_region.setdefault(region, []).append(time)
    return by_region


def per_region_switch_stats(
    outcomes: Sequence[PeerOutcome], *, horizon: float
) -> Tuple[RegionSwitchStats, ...]:
    """Per-region switch-time statistics, sorted by region name.

    Unfinished peers contribute the horizon time, mirroring
    :class:`~repro.metrics.collectors.MetricsCollector` (truncation biases
    every region identically instead of dropping slow peers).
    """
    by_region = _completion_times(outcomes, horizon)
    unfinished: Dict[str, int] = {}
    for outcome in outcomes:
        region = outcome.region or NO_REGION
        if outcome.switch_complete_time is None:
            unfinished[region] = unfinished.get(region, 0) + 1
    stats = []
    for region in sorted(by_region):
        samples = np.sort(np.asarray(by_region[region], dtype=float))
        p50, p90 = (float(v) for v in np.percentile(samples, [50.0, 90.0]))
        stats.append(
            RegionSwitchStats(
                region=region,
                peers=int(samples.size),
                mean=float(samples.mean()),
                p50=p50,
                p90=p90,
                unfinished=unfinished.get(region, 0),
            )
        )
    return tuple(stats)


def region_comparison_rows(
    normal_outcomes: Sequence[PeerOutcome],
    fast_outcomes: Sequence[PeerOutcome],
    *,
    horizon: float,
) -> List[Dict[str, object]]:
    """Paired per-region comparison rows (one per region of either run)."""
    normal = {s.region: s for s in per_region_switch_stats(normal_outcomes, horizon=horizon)}
    fast = {s.region: s for s in per_region_switch_stats(fast_outcomes, horizon=horizon)}
    rows: List[Dict[str, object]] = []
    for region in sorted(set(normal) | set(fast)):
        n, f = normal.get(region), fast.get(region)
        rows.append(
            {
                "region": region,
                "peers": (f.peers if f is not None else n.peers if n is not None else 0),
                "normal_switch_time": n.mean if n is not None else 0.0,
                "fast_switch_time": f.mean if f is not None else 0.0,
                "reduction": reduction_ratio(
                    n.mean if n is not None else 0.0,
                    f.mean if f is not None else 0.0,
                ),
                "fast_p90": f.p90 if f is not None else 0.0,
                "unfinished": f.unfinished if f is not None else 0,
            }
        )
    return rows


def fabric_stats_rows(stats: Mapping[str, float]) -> List[Dict[str, object]]:
    """The fabric counters of one run as printable ``metric``/``value`` rows."""
    return [
        {"metric": f"net {name}", "value": round(float(value), 5)}
        for name, value in sorted(stats.items())
    ]
