"""Mergeable streaming aggregates for sharded universe runs.

The sharded runtime (:mod:`repro.dist`) never ships raw per-peer results
back to the parent process: each shard reduces the per-peer zap-time
distribution of its channels into a :class:`QuantileSketch` plus a
:class:`StreamAccumulator`, and the parent merges the per-shard aggregates.
Memory therefore stays O(shard), not O(universe) -- the property that lets
``repro universe run --viewers 1000000`` complete on one box.

Exactness contract
------------------
The sketch is **exact** while the number of inserted samples stays at or
below its ``capacity``: every sample is retained with weight one and
:meth:`QuantileSketch.percentile` computes the same linear-interpolation
percentile as ``numpy.percentile`` -- hence the same values as
:func:`repro.metrics.universe.zap_time_stats` over the pooled samples.
Beyond the capacity the sketch compresses deterministically into
equal-count centroid bins; percentiles then interpolate over the weighted
centroids and are only guaranteed to lie within a pinned relative
tolerance of the exact answer (``tests/test_metrics_sketch.py`` pins
both halves of the contract).

Determinism
-----------
Compression and merging are pure functions of the inserted multiset and
the merge order; the sharded runner always merges per-shard sketches in
shard-id order, so repeated runs -- interrupted or not -- aggregate to
bit-identical sketches.  ``to_dict``/``from_dict`` round-trip exactly
through JSON (floats survive via repr), which is what lets the checkpoint
journal persist shard aggregates losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_SKETCH_CAPACITY",
    "QuantileSketch",
    "StreamAccumulator",
    "sketch_of",
]

#: Default centroid capacity.  8192 raw samples cover every shipped
#: universe exactly; beyond that the compressed relative error on the
#: pinned percentiles stays well under the 1% contract tolerance.
DEFAULT_SKETCH_CAPACITY: int = 8192


@dataclass
class StreamAccumulator:
    """Mergeable count/sum/min/max accumulator (exact, order-independent)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float, weight: int = 1) -> None:
        """Fold one sample (or ``weight`` identical samples) in."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        value = float(value)
        self.count += int(weight)
        self.total += value * weight
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "StreamAccumulator") -> None:
        """Fold another accumulator in (exact for count and sum)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the folded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (``inf`` sentinels map to ``None``)."""
        return {
            "count": self.count,
            "total": self.total,
            "minimum": None if self.count == 0 else self.minimum,
            "maximum": None if self.count == 0 else self.maximum,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "StreamAccumulator":
        """Rebuild from :meth:`to_dict` output (exact round trip)."""
        count = int(payload["count"])
        return StreamAccumulator(
            count=count,
            total=float(payload["total"]),
            minimum=float("inf") if count == 0 else float(payload["minimum"]),
            maximum=float("-inf") if count == 0 else float(payload["maximum"]),
        )


@dataclass
class QuantileSketch:
    """A bounded-memory, mergeable quantile sketch over float samples.

    Internally a sorted list of ``(value, weight)`` centroids with integer
    weights.  While every weight is one (no compression has happened) the
    sketch is a verbatim multiset of the samples and percentiles are
    computed by ``numpy.percentile`` -- bit-identical to the in-memory
    statistics.  Once the centroid count exceeds ``capacity`` the sketch
    collapses into ``capacity`` equal-count bins (weighted means), after
    which percentiles are linear interpolations over the conceptual
    expansion of the centroids.
    """

    capacity: int = DEFAULT_SKETCH_CAPACITY
    #: Parallel arrays kept sorted by value; weights are sample counts.
    values: List[float] = field(default_factory=list)
    weights: List[int] = field(default_factory=list)
    #: Whether any lossy compression has happened (sticky).
    compressed: bool = False
    #: Exact extremes of every inserted sample.  Compression replaces tail
    #: samples with centroid means, so the centroid range understates the
    #: true range; these survive ``add``/``merge``/serialisation and pin
    #: ``percentile(0)``/``percentile(100)``.
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {self.capacity}")
        if self.values:
            # Direct construction from bare centroids (e.g. a payload
            # written before the extremes were recorded): the centroid
            # range is the best available bound -- and exact whenever the
            # sketch is uncompressed.
            self.minimum = min(self.minimum, min(self.values))
            self.maximum = max(self.maximum, max(self.values))

    # -- ingestion ------------------------------------------------------- #
    @property
    def count(self) -> int:
        """Total number of samples folded in (compression preserves it)."""
        return int(sum(self.weights))

    @property
    def exact(self) -> bool:
        """Whether percentiles are still exact (no compression happened)."""
        return not self.compressed

    def add(self, value: float) -> None:
        """Fold one sample in."""
        self.extend([value])

    def extend(self, samples: Iterable[float]) -> None:
        """Fold a batch of samples in (one sort + at most one compression)."""
        fresh = [float(v) for v in samples]
        if not fresh:
            return
        self.minimum = min(self.minimum, min(fresh))
        self.maximum = max(self.maximum, max(fresh))
        self.values.extend(fresh)
        self.weights.extend([1] * len(fresh))
        self._normalise()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in; exactness survives while sizes allow it."""
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.values.extend(other.values)
        self.weights.extend(int(w) for w in other.weights)
        self.compressed = self.compressed or other.compressed
        self._normalise()

    def _normalise(self) -> None:
        """Restore the sorted-centroid invariant, compressing if oversize."""
        order = np.argsort(np.asarray(self.values, dtype=float), kind="stable")
        values = [self.values[i] for i in order]
        weights = [self.weights[i] for i in order]
        if len(values) > self.capacity:
            values, weights = _compress(values, weights, self.capacity)
            self.compressed = True
        self.values = values
        self.weights = weights

    # -- queries --------------------------------------------------------- #
    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (linear interpolation; 0.0 when empty).

        Exact mode delegates to ``numpy.percentile`` over the raw samples;
        compressed mode interpolates over the expanded weighted centroids
        without materialising them, with the tails pinned to the exact
        extremes (``np.interp`` alone would clamp ``q -> 0/100`` to the
        first/last *centroid mean*, shrinking the reported range).
        """
        if not self.values:
            return 0.0
        if not self.compressed:
            return float(np.percentile(np.asarray(self.values, dtype=float), q))
        if float(q) <= 0.0:
            return float(self.minimum)
        if float(q) >= 100.0:
            return float(self.maximum)
        values = np.asarray(self.values, dtype=float)
        weights = np.asarray(self.weights, dtype=np.float64)
        total = weights.sum()
        # Fractional order-statistic index of the percentile (numpy's
        # linear-interpolation convention), evaluated by interpolating
        # between centroid means placed at their bins' index midpoints.
        # With unit weights the midpoints are 0, 1, 2, ... -- i.e. this is
        # the same formula the exact branch computes.
        h = (total - 1.0) * (float(q) / 100.0)
        midpoints = np.cumsum(weights) - weights / 2.0 - 0.5
        return float(np.interp(h, midpoints, values))

    def percentiles(self, qs: Sequence[float]) -> Tuple[float, ...]:
        """Several percentiles at once."""
        return tuple(self.percentile(q) for q in qs)

    @property
    def mean(self) -> float:
        """Weighted mean of the centroids (exact: compression is centroidal)."""
        total = self.count
        if total == 0:
            return 0.0
        return float(
            np.dot(
                np.asarray(self.values, dtype=float),
                np.asarray(self.weights, dtype=float),
            )
            / total
        )

    # -- serialisation --------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form; exact float round trip via :meth:`from_dict`."""
        return {
            "capacity": self.capacity,
            "values": list(self.values),
            "weights": list(self.weights),
            "compressed": self.compressed,
            "minimum": None if not self.values else self.minimum,
            "maximum": None if not self.values else self.maximum,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "QuantileSketch":
        """Rebuild from :meth:`to_dict` output (exact round trip).

        Payloads written before the exact extremes were recorded load with
        the centroid range as fallback (``__post_init__`` derives it).
        """
        minimum = payload.get("minimum")
        maximum = payload.get("maximum")
        return QuantileSketch(
            capacity=int(payload["capacity"]),
            values=[float(v) for v in payload["values"]],
            weights=[int(w) for w in payload["weights"]],
            compressed=bool(payload["compressed"]),
            minimum=float("inf") if minimum is None else float(minimum),
            maximum=float("-inf") if maximum is None else float(maximum),
        )


def _compress(
    values: Sequence[float], weights: Sequence[int], capacity: int
) -> Tuple[List[float], List[int]]:
    """Collapse sorted centroids into ``capacity`` equal-count bins.

    Bin boundaries are drawn at multiples of ``total / capacity`` over the
    cumulative weight, so the result depends only on the input multiset --
    never on how it was accumulated.  Weights stay integral and their sum
    is preserved exactly.
    """
    weights_arr = np.array(weights, dtype=np.int64)  # a copy: bins mutate it
    total = int(weights_arr.sum())
    cumulative = np.cumsum(weights_arr)
    # Target cumulative count at the end of each bin (last bin takes the
    # remainder, keeping the weight sum exact under integer arithmetic).
    edges = [(total * (b + 1)) // capacity for b in range(capacity)]
    out_values: List[float] = []
    out_weights: List[int] = []
    start = 0  # first centroid index of the current bin
    consumed = 0  # cumulative weight already binned
    for edge in edges:
        if edge <= consumed:
            continue
        # Centroids whose cumulative weight falls inside this bin.
        stop = int(np.searchsorted(cumulative, edge, side="left")) + 1
        chunk_values = np.asarray(values[start:stop], dtype=float)
        chunk_weights = weights_arr[start:stop].astype(np.float64).copy()
        # The boundary centroid may straddle the edge: split its weight.
        overflow = int(cumulative[stop - 1]) - edge
        if overflow > 0:
            chunk_weights[-1] -= overflow
        weight = edge - consumed
        out_values.append(float(np.dot(chunk_values, chunk_weights) / weight))
        out_weights.append(int(weight))
        consumed = edge
        if overflow > 0:
            # The straddling centroid keeps its absolute position in
            # ``cumulative``; only its remaining weight carries forward.
            start = stop - 1
            weights_arr[stop - 1] = overflow
        else:
            start = stop
    return out_values, out_weights


def sketch_of(
    samples: Iterable[float], *, capacity: int = DEFAULT_SKETCH_CAPACITY
) -> QuantileSketch:
    """Build a sketch over ``samples`` in one shot."""
    sketch = QuantileSketch(capacity=capacity)
    sketch.extend(samples)
    return sketch
