"""Metrics: collectors, overhead accounting and result reports.

The paper's evaluation (Section 5.2) uses three primary metrics and three
supplementary ones; all are implemented here:

Primary
    1. *Average preparing time of the new source* (= average switch time):
       mean time for all nodes to gather the ``Qs`` startup segments of the
       new source.
    2. *Reduction ratio*: relative reduction of the average switch time of
       the fast algorithm versus the normal algorithm.
    3. *Communication overhead*: buffer-map exchange bits divided by
       delivered data bits.

Supplementary
    * *Undelivered ratio of the old source* ``Q1/Q0`` over time,
    * *Delivered ratio of the new source* ``(Qs - Q2)/Qs`` over time,
    * *Average finishing time of the old source* ``T1'``.
"""

from repro.metrics.collectors import MetricsCollector, PeerOutcome, RoundSample, SwitchMetrics
from repro.metrics.overhead import OverheadAccountant
from repro.metrics.qoe import (
    ClassSwitchStats,
    PhaseQoE,
    continuity_index,
    per_class_switch_stats,
    phase_qoe,
)
from repro.metrics.report import (
    ComparisonRow,
    compare_metrics,
    format_table,
    reduction_ratio,
)
from repro.metrics.universe import ZapTimeStats, decile_of, weighted_mean, zap_time_stats

__all__ = [
    "MetricsCollector",
    "PeerOutcome",
    "RoundSample",
    "SwitchMetrics",
    "OverheadAccountant",
    "PhaseQoE",
    "ClassSwitchStats",
    "phase_qoe",
    "per_class_switch_stats",
    "continuity_index",
    "ComparisonRow",
    "compare_metrics",
    "format_table",
    "reduction_ratio",
    "ZapTimeStats",
    "zap_time_stats",
    "decile_of",
    "weighted_mean",
]
