"""Communication-overhead accounting.

Section 5.3 of the paper defines the communication overhead as *"the ratio
of communication cost for buffer information exchange over the real
communication cost for data segments transfer"*.  With a 600-slot buffer the
availability bitmap costs 600 bits, plus 20 bits for the id of the first
buffered segment, i.e. 620 bits per neighbour per scheduling period;
segments carry 30 kbit of media data.  If a node obtained exactly the
``p = 10`` segments it plays per second, the overhead would be
``620 * M / (30 * 1024 * 10) ≈ 1 %``; the measured value is slightly higher
because most nodes' delivery rate cannot quite match the playback rate.

:class:`OverheadAccountant` tracks the two byte counters per scheduling
period and cumulatively, and can optionally include request messages in the
control cost as a sensitivity analysis (the paper does not count them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["OverheadSample", "OverheadAccountant"]


@dataclass(frozen=True)
class OverheadSample:
    """Cumulative byte counters at the end of one scheduling period."""

    time: float
    control_bits: int
    request_bits: int
    data_bits: int

    def ratio(self, *, include_requests: bool = False) -> float:
        """Control-to-data ratio; 0.0 when no data has been transferred."""
        control = self.control_bits + (self.request_bits if include_requests else 0)
        if self.data_bits <= 0:
            return 0.0
        return control / self.data_bits


@dataclass
class OverheadAccountant:
    """Accumulates control and data traffic volumes.

    Attributes
    ----------
    control_bits:
        Cumulative buffer-map exchange bits.
    request_bits:
        Cumulative request message bits (not part of the paper's ratio).
    data_bits:
        Cumulative delivered segment payload bits.
    samples:
        Per-period snapshots (appended by :meth:`close_period`).
    """

    control_bits: int = 0
    request_bits: int = 0
    data_bits: int = 0
    samples: List[OverheadSample] = field(default_factory=list)

    def add_control(self, bits: int) -> None:
        """Charge buffer-map exchange traffic."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self.control_bits += int(bits)

    def add_request(self, bits: int) -> None:
        """Charge request message traffic."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self.request_bits += int(bits)

    def add_data(self, bits: int) -> None:
        """Charge delivered segment payload traffic."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        self.data_bits += int(bits)

    def close_period(self, time: float) -> OverheadSample:
        """Record the cumulative counters at the end of a period."""
        sample = OverheadSample(
            time=float(time),
            control_bits=self.control_bits,
            request_bits=self.request_bits,
            data_bits=self.data_bits,
        )
        self.samples.append(sample)
        return sample

    def overhead_ratio(self, *, include_requests: bool = False) -> float:
        """Cumulative control-to-data ratio (the paper's metric 3)."""
        control = self.control_bits + (self.request_bits if include_requests else 0)
        if self.data_bits <= 0:
            return 0.0
        return control / self.data_bits

    def ratio_series(self, *, include_requests: bool = False) -> List[tuple[float, float]]:
        """``(time, cumulative overhead ratio)`` per recorded period."""
        return [(s.time, s.ratio(include_requests=include_requests)) for s in self.samples]

    def last_sample(self) -> Optional[OverheadSample]:
        """The most recent period snapshot, or ``None``."""
        return self.samples[-1] if self.samples else None
