"""The closed-form optimisation model of the switch process (Section 3).

A peer still needs ``Q1`` segments of the old source ``S1`` and the first
``Qs`` segments (of which ``Q2`` are still undelivered) of the new source
``S2``.  Its constant total inbound rate ``I`` is split into ``I1 + I2``.
The playback of ``S2`` can start only after the playback of ``S1`` has
finished, which takes ``T1' = Q1 / I1 + Q / p`` (receive the backlog, then
play out the final startup window of ``Q`` segments at ``p`` segments per
second), and after the ``Q2`` startup segments of ``S2`` have arrived,
which takes ``T2 = Q2 / I2``.

The paper minimises ``T2`` subject to ``T2 >= T1'`` and obtains (Eq. 4)::

            I - p(Q1+Q2)/Q + sqrt( (p(Q1+Q2)/Q - I)^2 + 4 p I Q1 / Q )
    r1  =  -----------------------------------------------------------
                                    2

with ``I1 = r1`` and ``I2 = r2 = I - r1`` as the optimal split, and the
negative root ``r1'`` discarded.

This module implements that closed form together with the degenerate cases
the formula does not cover (``Q1 = 0``, ``Q = 0``, ``I = 0``), exposes both
quadratic roots for verification, and provides the resulting lower bound on
the switch time which the simulation results can be compared against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "OptimalSplit",
    "optimal_split",
    "quadratic_roots",
    "switch_time_lower_bound",
    "finish_time_old",
    "prepare_time_new",
]

_EPS = 1e-12


@dataclass(frozen=True)
class OptimalSplit:
    """Result of the closed-form rate split.

    Attributes
    ----------
    r1 / r2:
        Optimal inbound rate for the old / new stream (segments/second);
        ``r1 + r2 == I`` up to floating point error.
    t1_prime:
        Expected time to *finish the playback* of the old source under the
        split (``Q1/r1 + Q/p``), ``0.0`` when nothing remains.
    t2:
        Expected time to gather the new source's startup segments
        (``Q2/r2``); this equals the minimised switch time.
    """

    r1: float
    r2: float
    t1_prime: float
    t2: float


def quadratic_roots(inbound: float, q1: float, q2: float, q: float, p: float) -> Tuple[float, float]:
    """Both roots ``(r1, r1')`` of the paper's quadratic (Eq. 4--5).

    The inequality ``Q2/(I - I1) >= Q1/I1 + Q/p`` rearranges to
    ``I1^2 + (p(Q1+Q2)/Q - I) I1 - p I Q1 / Q >= 0`` whose roots are
    returned as ``(larger, smaller)``.  The smaller root is non-positive
    whenever the inputs are non-negative (the paper discards it).

    Raises
    ------
    ValueError
        If ``q`` or ``p`` is not strictly positive (the formula divides by
        both); callers should use :func:`optimal_split`, which handles the
        degenerate cases explicitly.
    """
    if q <= 0:
        raise ValueError(f"Q must be positive for the closed form, got {q}")
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    a = p * (q1 + q2) / q
    b = a - inbound                     # the quadratic is  x^2 + b x - c = 0
    c = p * inbound * q1 / q            # with c >= 0
    disc = b * b + 4.0 * c
    root = math.sqrt(max(disc, 0.0))
    # Evaluate whichever root does NOT suffer cancellation directly, and
    # recover the other one from the product of roots (x1 * x2 = -c).  For
    # large b the naive "(-b + root)/2" loses most significant digits, which
    # makes the downstream T2 >= T1' guarantee fail numerically.
    if b > 0:
        r1_neg = (-b - root) / 2.0
        r1 = (-c / r1_neg) if r1_neg != 0.0 else 0.0
    else:
        r1 = (-b + root) / 2.0
        r1_neg = (-c / r1) if r1 != 0.0 else 0.0
    return r1, r1_neg


def optimal_split(
    inbound: float,
    q1: float,
    q2: float,
    q: float,
    p: float,
) -> OptimalSplit:
    """Compute the optimal inbound-rate split ``(I1, I2) = (r1, r2)``.

    Parameters
    ----------
    inbound:
        Total inbound rate ``I`` (segments/second), must be non-negative.
    q1:
        Undelivered segments of the old source (``Q1 >= 0``).
    q2:
        Undelivered startup segments of the new source (``Q2 >= 0``).
    q:
        Playback (re)start quota ``Q`` of the old source (``>= 0``).
    p:
        Playback rate ``p`` (segments/second), must be positive.

    Returns
    -------
    OptimalSplit
        The optimal split and the resulting completion times.  When the
        total inbound rate is zero and work remains, the respective times
        are ``inf``.

    Notes
    -----
    Degenerate cases handled outside the closed form:

    * ``Q1 == 0``: nothing of the old source remains; the only constraint is
      the residual playback window, so ``I2 = min(I, Q2 * p / Q)`` when
      ``Q > 0`` else ``I2 = I``.
    * ``Q2 == 0``: the new source needs nothing; all capacity goes to the
      old source.
    * ``Q == 0``: no residual playback window; the constraint becomes
      ``Q2/I2 >= Q1/I1`` giving the proportional split
      ``r1 = I * Q1 / (Q1 + Q2)``.
    """
    if inbound < 0:
        raise ValueError(f"inbound rate must be non-negative, got {inbound}")
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    if q1 < 0 or q2 < 0 or q < 0:
        raise ValueError("Q1, Q2 and Q must be non-negative")

    if q2 <= _EPS:
        # Nothing to fetch from the new source: dedicate everything to S1.
        r1, r2 = float(inbound), 0.0
        return OptimalSplit(
            r1=r1,
            r2=r2,
            t1_prime=_safe_div(q1, r1) + _safe_div(q, p) if q1 > 0 else _safe_div(q, p),
            t2=0.0,
        )

    if q1 <= _EPS:
        # Only the residual playback window constrains T2.
        if q <= _EPS:
            r2 = float(inbound)
        else:
            r2 = min(float(inbound), q2 * p / q)
        r1 = float(inbound) - r2
        return OptimalSplit(
            r1=r1,
            r2=r2,
            t1_prime=_safe_div(q, p),
            t2=_safe_div(q2, r2),
        )

    if q <= _EPS:
        # Proportional split (limit Q -> 0 of the closed form).
        r1 = inbound * q1 / (q1 + q2)
    else:
        r1, _ = quadratic_roots(inbound, q1, q2, q, p)
    r1 = min(max(r1, 0.0), float(inbound))
    r2 = float(inbound) - r1
    return OptimalSplit(
        r1=r1,
        r2=r2,
        t1_prime=_safe_div(q1, r1) + _safe_div(q, p),
        t2=_safe_div(q2, r2),
    )


def finish_time_old(q1: float, q: float, p: float, i1: float) -> float:
    """``T1' = Q1/I1 + Q/p`` for an arbitrary (not necessarily optimal) split."""
    return _safe_div(q1, i1) + _safe_div(q, p)


def prepare_time_new(q2: float, i2: float) -> float:
    """``T2 = Q2/I2`` for an arbitrary split."""
    return _safe_div(q2, i2)


def switch_time_lower_bound(
    inbound: float,
    q1: float,
    q2: float,
    q: float,
    p: float,
) -> float:
    """The model's lower bound on a peer's switch time.

    This is simply ``T2`` of the optimal split -- the best any scheduling
    algorithm could do if segment availability and neighbour outbound
    capacity were unconstrained.  The simulation benchmarks report how far
    both practical algorithms are from this bound.
    """
    return optimal_split(inbound, q1, q2, q, p).t2


def _safe_div(num: float, den: float) -> float:
    """``num / den`` with ``0/0 -> 0`` and ``x/0 -> inf`` for ``x > 0``."""
    if den > _EPS:
        return num / den
    return 0.0 if num <= _EPS else math.inf
