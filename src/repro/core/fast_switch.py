"""The Fast Source Switch Algorithm (Algorithm 1).

Per scheduling period, every peer that is aware of the source switch:

1. collects the candidate segments -- undelivered segments of the old
   source ``S1`` and of the new source's startup window -- that at least
   one neighbour advertises;
2. computes each candidate's request priority (urgency/rarity, Eq. 6--9)
   and sorts candidates by descending priority, *mixing* old- and
   new-source segments in a single order;
3. greedily assigns each candidate to the neighbour that can deliver it
   earliest within the period (Step 1 of Algorithm 1), yielding the ordered
   sets ``O1`` (schedulable old-source segments) and ``O2`` (schedulable
   new-source segments);
4. computes the optimal inbound split ``(r1, r2)`` from the closed-form
   model and applies the four-case allocation against the available
   outbound rates ``O1 = |O1|/tau`` and ``O2 = |O2|/tau``;
5. requests the first ``I1 * tau`` segments of ``O1`` and the first
   ``I2 * tau`` segments of ``O2`` (Step 2 of Algorithm 1).

The interleaving in step 2 is what distinguishes the fast algorithm from the
normal baseline: new-source segments with high urgency or rarity are pulled
*early*, which both pre-populates the mesh with new-source data (so it can
spread peer-to-peer instead of radiating from the new source at the end) and
exploits the residual playback time of the old source.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.allocation import RateAllocation, allocate_rates
from repro.core.base import (
    LocalView,
    ScheduleDecision,
    SegmentRequest,
    Stream,
    SwitchAlgorithm,
)
from repro.core.model import optimal_split
from repro.core.priority import PriorityPolicy, priority_for_view
from repro.core.scheduler import (
    AssignedSegment,
    CandidateSegment,
    greedy_supplier_assignment,
)

__all__ = ["FastSwitchAlgorithm"]


class FastSwitchAlgorithm(SwitchAlgorithm):
    """The paper's greedy fast source switch algorithm.

    Parameters
    ----------
    priority_policy:
        Which priority rule to use (default: the paper's
        ``max(urgency, rarity)``).  Exposed for the ablation benchmark.
    work_conserving:
        When ``True`` (default) any inbound capacity left over after the
        four-case allocation (because one of the two schedulable sets is
        shorter than its allocation) is spent on the remaining schedulable
        segments in priority order.  This matches what any real client
        would do and never reduces throughput; set to ``False`` to follow
        the four-case split to the letter.
    """

    name = "fast"

    def __init__(
        self,
        *,
        priority_policy: PriorityPolicy = PriorityPolicy.PAPER,
        work_conserving: bool = True,
    ) -> None:
        self.priority_policy = priority_policy
        self.work_conserving = work_conserving

    # ------------------------------------------------------------------ #
    def schedule(self, view: LocalView) -> ScheduleDecision:
        """Compute the period's segment requests (see module docstring)."""
        capacity = view.capacity_segments()
        if capacity <= 0:
            return ScheduleDecision(requests=())

        candidates = self._build_candidates(view)
        if not candidates:
            return ScheduleDecision(requests=())

        assignment = greedy_supplier_assignment(candidates, view.tau)
        old_set, new_set = _partition_by_stream(assignment.assigned, view)

        o1_rate = len(old_set) / view.tau
        o2_rate = len(new_set) / view.tau

        split = optimal_split(
            view.inbound_rate,
            q1=view.q1,
            q2=view.q2,
            q=view.startup_quota_old,
            p=view.play_rate,
        )
        allocation = allocate_rates(split, view.inbound_rate, o1_rate, o2_rate)

        take_old = min(len(old_set), int(round(allocation.i1 * view.tau)))
        take_new = min(len(new_set), int(round(allocation.i2 * view.tau)))
        # Never exceed the peer's inbound capacity in segments.
        while take_old + take_new > capacity:
            if take_new >= take_old and take_new > 0:
                take_new -= 1
            elif take_old > 0:
                take_old -= 1
            else:  # pragma: no cover - both zero cannot exceed capacity
                break

        chosen: List[AssignedSegment] = old_set[:take_old] + new_set[:take_new]

        if self.work_conserving:
            chosen = self._fill_leftover_capacity(
                chosen, old_set, new_set, take_old, take_new, capacity
            )

        # Emit requests in descending priority order so the simulator's
        # supplier-side contention favours what the algorithm values most.
        chosen.sort(key=lambda item: (-item.priority, item.seg_id))
        requests = tuple(
            SegmentRequest(
                seg_id=item.seg_id,
                supplier_id=item.supplier_id,
                stream=view.stream_of(item.seg_id),
                expected_receive_time=item.expected_receive_time,
            )
            for item in chosen
        )
        return ScheduleDecision(
            requests=requests,
            i1=allocation.i1,
            i2=allocation.i2,
            r1=split.r1,
            r2=split.r2,
            o1=o1_rate,
            o2=o2_rate,
            case=allocation.case,
        )

    # ------------------------------------------------------------------ #
    def _build_candidates(self, view: LocalView) -> List[CandidateSegment]:
        """Priority-sorted candidates (needed segments with >= 1 supplier)."""
        candidates: List[CandidateSegment] = []
        for seg_id in view.needed():
            suppliers = view.suppliers_of(seg_id)
            if not suppliers:
                continue
            priority = priority_for_view(
                seg_id,
                suppliers,
                view.playback_id,
                view.play_rate,
                policy=self.priority_policy,
            )
            candidates.append(
                CandidateSegment(seg_id=seg_id, priority=priority, suppliers=suppliers)
            )
        # Descending priority; ties broken towards earlier segments, whose
        # playback deadline is closer.
        candidates.sort(key=lambda c: (-c.priority, c.seg_id))
        return candidates

    def _fill_leftover_capacity(
        self,
        chosen: List[AssignedSegment],
        old_set: List[AssignedSegment],
        new_set: List[AssignedSegment],
        take_old: int,
        take_new: int,
        capacity: int,
    ) -> List[AssignedSegment]:
        """Spend unused inbound capacity on remaining schedulable segments."""
        leftover = capacity - len(chosen)
        if leftover <= 0:
            return chosen
        extras = old_set[take_old:] + new_set[take_new:]
        extras.sort(key=lambda item: (-item.priority, item.seg_id))
        return chosen + extras[:leftover]


def _partition_by_stream(
    assigned: List[AssignedSegment], view: LocalView
) -> Tuple[List[AssignedSegment], List[AssignedSegment]]:
    """Split the greedy assignment into the ordered sets ``O1`` and ``O2``."""
    old_set: List[AssignedSegment] = []
    new_set: List[AssignedSegment] = []
    for item in assigned:
        if view.stream_of(item.seg_id) is Stream.OLD:
            old_set.append(item)
        else:
            new_set.append(item)
    return old_set, new_set
