"""Shared data model for source-switch algorithms.

The types in this module form the contract between the streaming simulator
(:mod:`repro.streaming`) and the switch algorithms (:mod:`repro.core`):

* :class:`Stream` distinguishes the *old* source ``S1`` from the *new*
  source ``S2``;
* :class:`NeighbourView` is what a peer knows about one neighbour after the
  periodic buffer-map exchange: which needed segments the neighbour holds,
  at which FIFO position, and at what rate it can send;
* :class:`LocalView` bundles the peer's own playback state and all
  neighbour views for one scheduling period;
* :class:`ScheduleDecision` is the algorithm's output: an ordered list of
  :class:`SegmentRequest` plus the diagnostic quantities (``I1``, ``I2``,
  ``r1``, allocation case) that the tests and the model-validation
  benchmarks inspect.

Algorithms must be pure functions of the :class:`LocalView`; they may keep
internal state across periods (both paper algorithms are stateless, but the
interface allows stateful extensions such as request retrying policies).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

__all__ = [
    "Stream",
    "NeighbourView",
    "LocalView",
    "SegmentRequest",
    "ScheduleDecision",
    "SwitchAlgorithm",
]


class Stream(enum.Enum):
    """Which source a segment belongs to."""

    OLD = "S1"
    NEW = "S2"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NeighbourView:
    """A peer's snapshot of one neighbour for the current scheduling period.

    Attributes
    ----------
    node_id:
        The neighbour's identifier.
    send_rate:
        ``R(j)``: the rate (segments/second) at which this neighbour is
        expected to be able to send to the local peer during this period.
    available:
        Segment ids (within the local peer's window of interest) present in
        the neighbour's buffer according to the latest buffer map.
    positions:
        For each available segment id, its FIFO position ``p_ij`` counted
        from the buffer tail (the insertion end): 1 means newest; values
        close to the buffer capacity mean the segment is about to be
        evicted.  Used by the rarity term (Eq. 8).
    buffer_capacity:
        The neighbour's buffer capacity ``B`` in segments.
    """

    node_id: int
    send_rate: float
    available: frozenset[int]
    positions: Mapping[int, int] = field(default_factory=dict)
    buffer_capacity: int = 600

    def position_of(self, seg_id: int) -> int:
        """FIFO position of ``seg_id`` (defaults to newest when unknown)."""
        return int(self.positions.get(seg_id, 1))


@dataclass(frozen=True)
class LocalView:
    """Everything one peer sees locally at the start of a scheduling period.

    Attributes
    ----------
    now:
        Simulation time (seconds) at which the view was taken.
    tau:
        Data scheduling period length (seconds).
    play_rate:
        ``p``: segments played per second.
    inbound_rate:
        ``I``: the peer's total inbound rate (segments/second).
    playback_id:
        ``id_play``: the id of the segment being played at this moment
        (the next segment the player will consume).
    startup_quota_old:
        ``Q``: consecutive segments required to (re)start playback of the
        old stream after a stall.
    startup_quota_new:
        ``Qs``: segments of the new source required before its playback can
        start (the paper configures ``Qs >> Q``).
    old_needed:
        Undelivered segment ids of the old source the peer still must fetch
        (``Q1 = len(old_needed)``).
    new_needed:
        Undelivered segment ids among the first ``Qs`` segments of the new
        source (``Q2 = len(new_needed)``).
    id_end:
        Id of the old source's final segment, or ``None`` while unknown.
    id_begin:
        Id of the new source's first segment, or ``None`` while unknown.
    neighbours:
        Snapshot of each neighbour (see :class:`NeighbourView`).
    """

    now: float
    tau: float
    play_rate: float
    inbound_rate: float
    playback_id: int
    startup_quota_old: int
    startup_quota_new: int
    old_needed: frozenset[int]
    new_needed: frozenset[int]
    id_end: Optional[int]
    id_begin: Optional[int]
    neighbours: Tuple[NeighbourView, ...]

    # ------------------------------------------------------------------ #
    # convenience accessors used by algorithms and tests
    # ------------------------------------------------------------------ #
    @property
    def q1(self) -> int:
        """``Q1``: number of undelivered old-source segments."""
        return len(self.old_needed)

    @property
    def q2(self) -> int:
        """``Q2``: number of undelivered new-source startup segments."""
        return len(self.new_needed)

    def stream_of(self, seg_id: int) -> Stream:
        """Classify a segment id as belonging to the old or new stream."""
        if self.id_begin is not None and seg_id >= self.id_begin:
            return Stream.NEW
        if self.id_end is not None and seg_id > self.id_end:
            return Stream.NEW
        return Stream.OLD

    def suppliers_of(self, seg_id: int) -> Tuple[NeighbourView, ...]:
        """All neighbours whose snapshot advertises ``seg_id``."""
        return tuple(n for n in self.neighbours if seg_id in n.available)

    def needed(self) -> frozenset[int]:
        """Union of old and new needed segment ids."""
        return self.old_needed | self.new_needed

    def capacity_segments(self) -> int:
        """Whole segments the peer can receive this period (``I * tau``)."""
        return max(0, int(round(self.inbound_rate * self.tau)))


@dataclass(frozen=True)
class SegmentRequest:
    """One segment request issued for the next scheduling period.

    Attributes
    ----------
    seg_id:
        Requested segment id.
    supplier_id:
        Neighbour chosen to supply the segment.
    stream:
        Stream the segment belongs to (old/new source).
    expected_receive_time:
        The scheduler's estimate of when the segment will have arrived,
        measured from the start of the period (seconds); purely diagnostic.
    """

    seg_id: int
    supplier_id: int
    stream: Stream
    expected_receive_time: float = 0.0


@dataclass(frozen=True)
class ScheduleDecision:
    """Output of a switch algorithm for one scheduling period.

    Attributes
    ----------
    requests:
        Ordered segment requests (the order encodes priority; the simulator
        issues them in this order so that, under supplier-side contention,
        high-priority segments are served first).
    i1 / i2:
        The inbound rate allocated to the old / new stream
        (segments/second).
    r1 / r2:
        The unconstrained optimum of the model (Eq. 4), when it was
        computed; ``None`` for decisions that never evaluated the model
        (e.g. the normal algorithm or single-stream periods).
    o1 / o2:
        The available outbound rates towards the old / new stream
        (``|O1|/tau`` and ``|O2|/tau`` in the paper's notation).
    case:
        Which of the four allocation cases applied (see
        :class:`repro.core.allocation.AllocationCase`), or ``None``.
    """

    requests: Tuple[SegmentRequest, ...]
    i1: float = 0.0
    i2: float = 0.0
    r1: Optional[float] = None
    r2: Optional[float] = None
    o1: float = 0.0
    o2: float = 0.0
    case: Optional["AllocationCase"] = None  # noqa: F821 - forward ref, see allocation.py

    @property
    def old_requests(self) -> Tuple[SegmentRequest, ...]:
        """Requests targeting the old source's stream."""
        return tuple(r for r in self.requests if r.stream is Stream.OLD)

    @property
    def new_requests(self) -> Tuple[SegmentRequest, ...]:
        """Requests targeting the new source's stream."""
        return tuple(r for r in self.requests if r.stream is Stream.NEW)

    def requested_ids(self) -> frozenset[int]:
        """The set of requested segment ids."""
        return frozenset(r.seg_id for r in self.requests)


class SwitchAlgorithm(ABC):
    """Strategy interface for per-peer request scheduling.

    A switch algorithm is invoked once per scheduling period for every peer
    that has not yet completed its source switch (and, in this
    implementation, also for ordinary single-stream periods so the same
    scheduling path is exercised before and after the switch).
    """

    #: short machine-readable name used in reports and benchmark tables
    name: str = "abstract"

    @abstractmethod
    def schedule(self, view: LocalView) -> ScheduleDecision:
        """Compute the segment requests for the period described by ``view``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def validate_view(view: LocalView) -> None:
    """Sanity-check a :class:`LocalView` (used by tests and the simulator).

    Raises
    ------
    ValueError
        If structural invariants are violated (negative rates, overlapping
        old/new needed sets, needed segments already played, ...).
    """
    if view.tau <= 0:
        raise ValueError(f"tau must be positive, got {view.tau}")
    if view.play_rate <= 0:
        raise ValueError(f"play_rate must be positive, got {view.play_rate}")
    if view.inbound_rate < 0:
        raise ValueError(f"inbound_rate must be non-negative, got {view.inbound_rate}")
    if view.old_needed & view.new_needed:
        raise ValueError("old_needed and new_needed overlap")
    if view.id_end is not None and view.id_begin is not None:
        if view.id_begin <= view.id_end:
            raise ValueError(
                f"id_begin ({view.id_begin}) must exceed id_end ({view.id_end})"
            )
    for neighbour in view.neighbours:
        if neighbour.send_rate < 0:
            raise ValueError(f"negative send rate for neighbour {neighbour.node_id}")
        if neighbour.buffer_capacity <= 0:
            raise ValueError(f"non-positive buffer capacity for neighbour {neighbour.node_id}")
