"""The baseline *normal switch algorithm* (Section 5.1).

Quoting the paper: *"for a node n, when its neighbours can supply data
segments of both S1 and S2, node n would retrieve data segments of S1 in
priority.  If n still has available inbound rate after retrieving data
segments of S1, it would allocate the remaining inbound rate to retrieve
data segments of S2."*

Concretely, per scheduling period the baseline:

1. schedules **all** undelivered old-source segments first, in playback
   order (earliest deadline first), using the same greedy
   earliest-completion supplier assignment as the fast algorithm so the
   comparison isolates the *interleaving policy*, not the supplier choice;
2. spends whatever inbound capacity remains on new-source startup segments,
   in segment-id order, against the suppliers' *remaining* sending budgets.

This is exactly the ordering shown in the paper's Figure 2: the node fills
its seven request slots with the five old-source segments first and only
then with the first two new-source segments.

How much inbound rate "remains" for the new source admits two readings and
the class exposes both:

* **reserved** (default, ``opportunistic_leftover=False``): the old source
  is granted ``min(I, Q1)`` of the inbound rate whether or not that much of
  it can actually be scheduled this period (neighbours may not hold the
  needed segments, or may be saturated).  While the node's undelivered
  backlog ``Q1`` exceeds its inbound rate it therefore requests *no*
  new-source segments at all.  This matches the behaviour visible in the
  paper's evaluation, where the baseline makes essentially no new-source
  progress until the old stream is finished (e.g. the last node finishing
  S1 at t=15 but only becoming ready for S2 at t=24).
* **opportunistic** (``opportunistic_leftover=True``): only the old-source
  segments that could actually be scheduled consume inbound rate; anything
  left spills over to the new source immediately.  This is a stronger
  baseline used as a sensitivity check (see the ablation benchmark).
"""

from __future__ import annotations

from typing import List

from repro.core.base import (
    LocalView,
    ScheduleDecision,
    SegmentRequest,
    Stream,
    SwitchAlgorithm,
)
from repro.core.scheduler import CandidateSegment, greedy_supplier_assignment

__all__ = ["NormalSwitchAlgorithm"]


class NormalSwitchAlgorithm(SwitchAlgorithm):
    """Old source strictly first; leftovers go to the new source.

    Parameters
    ----------
    opportunistic_leftover:
        See the module docstring.  ``False`` (default) reserves
        ``min(I, Q1)`` of the inbound rate for the old source regardless of
        how much of it is actually schedulable this period; ``True`` lets
        unschedulable old-source capacity spill over to the new source.
    """

    name = "normal"

    def __init__(self, *, opportunistic_leftover: bool = False) -> None:
        self.opportunistic_leftover = opportunistic_leftover

    def schedule(self, view: LocalView) -> ScheduleDecision:
        """Compute the period's segment requests (see module docstring)."""
        capacity = view.capacity_segments()
        if capacity <= 0:
            return ScheduleDecision(requests=())

        # --- pass 1: the old source, in playback (deadline) order -------- #
        old_candidates = self._sequential_candidates(view, view.old_needed)
        old_assignment = greedy_supplier_assignment(old_candidates, view.tau)
        old_chosen = old_assignment.assigned[:capacity]

        # --- pass 2: the new source, with the remaining capacity --------- #
        if self.opportunistic_leftover:
            reserved_for_old = len(old_chosen)
        else:
            reserved_for_old = min(capacity, len(view.old_needed))
        remaining = capacity - reserved_for_old
        new_chosen = []
        if remaining > 0 and view.new_needed:
            new_candidates = self._sequential_candidates(view, view.new_needed)
            new_assignment = greedy_supplier_assignment(
                new_candidates,
                view.tau,
                initial_queue=old_assignment.supplier_queue,
            )
            new_chosen = new_assignment.assigned[:remaining]

        requests: List[SegmentRequest] = [
            SegmentRequest(
                seg_id=item.seg_id,
                supplier_id=item.supplier_id,
                stream=Stream.OLD,
                expected_receive_time=item.expected_receive_time,
            )
            for item in old_chosen
        ]
        requests.extend(
            SegmentRequest(
                seg_id=item.seg_id,
                supplier_id=item.supplier_id,
                stream=Stream.NEW,
                expected_receive_time=item.expected_receive_time,
            )
            for item in new_chosen
        )

        return ScheduleDecision(
            requests=tuple(requests),
            i1=len(old_chosen) / view.tau,
            i2=len(new_chosen) / view.tau,
            r1=None,
            r2=None,
            o1=len(old_assignment.assigned) / view.tau,
            o2=len(new_chosen) / view.tau if new_chosen else 0.0,
            case=None,
        )

    @staticmethod
    def _sequential_candidates(
        view: LocalView, needed: frozenset[int]
    ) -> List[CandidateSegment]:
        """Candidates in ascending segment-id order (playback order).

        The priority value only encodes the ordering (earlier segments get
        larger priorities); the baseline does not use urgency or rarity.
        """
        candidates: List[CandidateSegment] = []
        for rank, seg_id in enumerate(sorted(needed)):
            suppliers = view.suppliers_of(seg_id)
            if not suppliers:
                continue
            candidates.append(
                CandidateSegment(
                    seg_id=seg_id,
                    priority=1.0 / (1.0 + rank),
                    suppliers=suppliers,
                )
            )
        return candidates
