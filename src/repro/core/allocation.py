"""Four-case allocation of the inbound rate under outbound constraints (Section 4).

In a real mesh the optimal split ``(r1, r2)`` from the closed-form model may
be infeasible because the neighbours can only provide a limited outbound
rate ``O1`` towards old-source segments and ``O2`` towards new-source
segments.  The paper resolves this with four cases::

    Case 1:  r1 <= O1 and r2 <= O2   ->  I1 = r1,              I2 = r2
    Case 2:  r1 <= O1 and r2 >  O2   ->  I1 = min(O1, I - O2), I2 = O2
    Case 3:  r1 >  O1 and r2 <= O2   ->  I1 = O1,              I2 = min(O2, I - O1)
    Case 4:  r1 >  O1 and r2 >  O2   ->  I1 = O1,              I2 = O2

Cases 2--4 maximise the peer's total inbound throughput when the optimum
cannot be met.  :func:`allocate_rates` implements the rule verbatim and the
property tests assert its invariants (never exceed ``I``, ``O1`` or ``O2``;
reduce to the optimum when it is feasible).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.model import OptimalSplit, optimal_split

__all__ = ["AllocationCase", "RateAllocation", "allocate_rates", "allocate_for_model"]


class AllocationCase(enum.Enum):
    """Which of the paper's four allocation cases applied."""

    OPTIMUM_FEASIBLE = 1
    NEW_LIMITED = 2
    OLD_LIMITED = 3
    BOTH_LIMITED = 4


@dataclass(frozen=True)
class RateAllocation:
    """The allocated inbound rates for one scheduling period.

    Attributes
    ----------
    i1 / i2:
        Inbound rate (segments/second) granted to the old / new stream.
    case:
        The allocation case that produced them.
    split:
        The unconstrained optimum the case decision was based on.
    """

    i1: float
    i2: float
    case: AllocationCase
    split: OptimalSplit

    @property
    def total(self) -> float:
        """``I1 + I2``."""
        return self.i1 + self.i2


def allocate_rates(
    split: OptimalSplit,
    inbound: float,
    o1: float,
    o2: float,
) -> RateAllocation:
    """Apply the four-case rule to an already-computed optimal split.

    Parameters
    ----------
    split:
        Result of :func:`repro.core.model.optimal_split` for the current
        ``(I, Q1, Q2, Q, p)``.
    inbound:
        Total inbound rate ``I``.
    o1 / o2:
        Available outbound rate of the neighbourhood towards old / new
        segments (``|O1|/tau`` and ``|O2|/tau``).

    Returns
    -------
    RateAllocation
        Rates clipped so that ``I1 <= O1``, ``I2 <= O2`` and
        ``I1 + I2 <= I`` always hold.
    """
    if inbound < 0 or o1 < 0 or o2 < 0:
        raise ValueError("inbound, o1 and o2 must be non-negative")
    r1, r2 = split.r1, split.r2

    if r1 <= o1 and r2 <= o2:
        case = AllocationCase.OPTIMUM_FEASIBLE
        i1, i2 = r1, r2
    elif r1 <= o1 and r2 > o2:
        case = AllocationCase.NEW_LIMITED
        i2 = o2
        i1 = min(o1, inbound - o2)
    elif r1 > o1 and r2 <= o2:
        case = AllocationCase.OLD_LIMITED
        i1 = o1
        i2 = min(o2, inbound - o1)
    else:
        case = AllocationCase.BOTH_LIMITED
        i1, i2 = o1, o2

    # Clip defensively: the min() expressions above can go negative when a
    # single stream's availability already exceeds the whole inbound rate
    # (e.g. O2 > I in case 2); the paper implicitly assumes this cannot
    # happen, but a practical implementation must not emit negative rates.
    i1 = max(0.0, min(i1, o1, inbound))
    i2 = max(0.0, min(i2, o2, inbound - i1))
    return RateAllocation(i1=i1, i2=i2, case=case, split=split)


def allocate_for_model(
    inbound: float,
    q1: float,
    q2: float,
    q: float,
    p: float,
    o1: float,
    o2: float,
) -> RateAllocation:
    """Convenience wrapper: compute the optimum and apply the four cases."""
    split = optimal_split(inbound, q1, q2, q, p)
    return allocate_rates(split, inbound, o1, o2)
