"""The paper's core contribution: fast source switching.

This subpackage is a self-contained, simulator-independent implementation of
Sections 3 and 4 of the paper:

* :mod:`repro.core.model` -- the closed-form optimisation model of the
  switch process (Eq. 1--5): split a constant inbound rate ``I`` into
  ``I1`` (old source) and ``I2`` (new source) so the new source's startup
  delay ``T2`` is minimised subject to finishing the old source first.
* :mod:`repro.core.priority` -- per-segment request priorities combining
  *urgency* (deadline pressure, Eq. 7) and *rarity* (risk of eviction from
  all suppliers' FIFO buffers, Eq. 8), with
  ``priority = max(urgency, rarity)`` (Eq. 9).
* :mod:`repro.core.scheduler` -- the greedy supplier-assignment step of
  Algorithm 1 (earliest-completion supplier within the scheduling period).
* :mod:`repro.core.allocation` -- the four-case allocation of ``I1``/``I2``
  under neighbour outbound-capacity constraints (Section 4).
* :mod:`repro.core.fast_switch` -- the Fast Source Switch Algorithm
  (Algorithm 1) as a :class:`~repro.core.base.SwitchAlgorithm` strategy.
* :mod:`repro.core.normal_switch` -- the baseline *normal switch algorithm*
  (old source strictly first; leftover inbound rate goes to the new source).

All algorithms operate on a :class:`~repro.core.base.LocalView`, a snapshot
of everything one peer can see locally (its own playback state and its
neighbours' advertised buffers/rates), and return a
:class:`~repro.core.base.ScheduleDecision` listing the segment requests for
the next scheduling period.  The streaming simulator in
:mod:`repro.streaming` builds the views and executes the decisions, but the
algorithms themselves are pure functions of their inputs and are unit- and
property-tested in isolation.
"""

from repro.core.allocation import AllocationCase, allocate_rates
from repro.core.base import (
    LocalView,
    NeighbourView,
    ScheduleDecision,
    SegmentRequest,
    Stream,
    SwitchAlgorithm,
)
from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.model import OptimalSplit, optimal_split, switch_time_lower_bound
from repro.core.normal_switch import NormalSwitchAlgorithm
from repro.core.priority import (
    PriorityPolicy,
    rarity,
    request_priority,
    traditional_rarity,
    urgency,
)
from repro.core.scheduler import GreedyAssignment, greedy_supplier_assignment

__all__ = [
    "Stream",
    "NeighbourView",
    "LocalView",
    "SegmentRequest",
    "ScheduleDecision",
    "SwitchAlgorithm",
    "OptimalSplit",
    "optimal_split",
    "switch_time_lower_bound",
    "AllocationCase",
    "allocate_rates",
    "PriorityPolicy",
    "urgency",
    "rarity",
    "traditional_rarity",
    "request_priority",
    "GreedyAssignment",
    "greedy_supplier_assignment",
    "FastSwitchAlgorithm",
    "NormalSwitchAlgorithm",
]
