"""Greedy supplier assignment (Step 1 of Algorithm 1).

Given the candidate segments sorted by descending priority, the scheduler
assigns each segment to the neighbour that can deliver it *earliest* within
the scheduling period.  Each neighbour ``j`` has a sending rate ``R(j)``
(so one segment occupies it for ``1/R(j)`` seconds) and an accumulated
queueing time ``tau(j)``; a segment can only be assigned to ``j`` if
``1/R(j) + tau(j) < tau`` (it would finish within the period).

Choosing suppliers to minimise the number of segments that miss their
deadline or get evicted is NP-hard (it contains parallel machine
scheduling), so the paper -- and this implementation -- uses the greedy
earliest-completion heuristic: process segments in priority order, pick for
each the supplier with the smallest ``tau(j) + 1/R(j)``, and charge that
supplier's queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import NeighbourView
from repro.obs.telemetry import get_telemetry

__all__ = ["CandidateSegment", "AssignedSegment", "GreedyAssignment", "greedy_supplier_assignment"]


@dataclass(frozen=True)
class CandidateSegment:
    """One schedulable segment, its priority and its potential suppliers."""

    seg_id: int
    priority: float
    suppliers: Tuple[NeighbourView, ...]


@dataclass(frozen=True)
class AssignedSegment:
    """A segment together with its chosen supplier and expected receive time."""

    seg_id: int
    priority: float
    supplier_id: int
    expected_receive_time: float


@dataclass
class GreedyAssignment:
    """Result of the greedy supplier assignment.

    Attributes
    ----------
    assigned:
        Segments that obtained a supplier, in the order they were processed
        (i.e. descending priority).
    unassigned:
        Segment ids that could not be scheduled this period (all suppliers
        saturated or too slow).
    supplier_queue:
        Final queueing time ``tau(j)`` per supplier id (seconds of sending
        work assigned to that supplier this period).
    """

    assigned: List[AssignedSegment] = field(default_factory=list)
    unassigned: List[int] = field(default_factory=list)
    supplier_queue: Dict[int, float] = field(default_factory=dict)

    def assigned_ids(self) -> frozenset[int]:
        """Ids of all segments that obtained a supplier."""
        return frozenset(item.seg_id for item in self.assigned)

    def load_of(self, supplier_id: int) -> float:
        """Sending time charged to ``supplier_id`` (0.0 if unused)."""
        return self.supplier_queue.get(supplier_id, 0.0)


def greedy_supplier_assignment(
    candidates: Sequence[CandidateSegment],
    period: float,
    *,
    initial_queue: Optional[Dict[int, float]] = None,
) -> GreedyAssignment:
    """Assign each candidate to the supplier that can send it earliest.

    Parameters
    ----------
    candidates:
        Candidate segments **already sorted by descending priority** (the
        caller owns the ordering policy; ties are processed in the order
        given).
    period:
        The data scheduling period ``tau`` in seconds.  A segment is only
        assigned if its expected completion time is strictly less than
        ``tau`` (Algorithm 1, line 13).
    initial_queue:
        Optional pre-existing per-supplier queueing times ``tau(j)``
        (seconds).  Used when a caller schedules in multiple passes over the
        same neighbourhood -- e.g. the normal switch algorithm schedules all
        old-source segments first and then new-source segments against the
        *remaining* supplier capacity.

    Returns
    -------
    GreedyAssignment
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    result = GreedyAssignment()
    queue: Dict[int, float] = dict(initial_queue) if initial_queue else {}

    for candidate in candidates:
        best_time = float("inf")
        best_supplier: Optional[int] = None
        for supplier in candidate.suppliers:
            if supplier.send_rate <= 0:
                continue
            transfer = 1.0 / supplier.send_rate
            completion = transfer + queue.get(supplier.node_id, 0.0)
            if completion < best_time and completion < period:
                best_time = completion
                best_supplier = supplier.node_id
        if best_supplier is None:
            result.unassigned.append(candidate.seg_id)
            continue
        queue[best_supplier] = best_time
        result.assigned.append(
            AssignedSegment(
                seg_id=candidate.seg_id,
                priority=candidate.priority,
                supplier_id=best_supplier,
                expected_receive_time=best_time,
            )
        )

    result.supplier_queue = queue
    obs = get_telemetry()
    if obs.enabled:
        obs.counter("scheduler.assigned").add(len(result.assigned))
        obs.counter("scheduler.unassigned").add(len(result.unassigned))
    return result
