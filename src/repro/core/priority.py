"""Per-segment request priorities (Section 4, Eq. 6--9).

For every candidate segment ``D_i`` a peer computes:

* **urgency** -- the risk of missing the playback deadline::

      R_i       = max_j R_ij                      (Eq. 6)
      t_i       = (id_i - id_play) / p - 1 / R_i  (Eq. 7, deadline slack)
      urgency_i = 1 / t_i

  A segment whose deadline slack is non-positive is already (about to be)
  late; its urgency is capped at :data:`URGENCY_CAP` rather than infinity so
  that late segments still sort among themselves by rarity.

* **rarity** -- the probability that the segment will soon be evicted from
  *all* of its suppliers' FIFO buffers (Eq. 8)::

      rarity_i = prod_j ( p_ij / B )

  where ``p_ij`` is the segment's position counted from the buffer tail
  (the insertion end): a position close to ``B`` means the segment is close
  to the eviction end in that supplier's buffer.  The paper argues this is
  more informative than the traditional ``1 / n_i`` rarity (one over the
  number of suppliers), which is also provided for the ablation benchmark.

* **priority** -- ``max(urgency_i, rarity_i)`` (Eq. 9).

All functions are pure and operate on plain numbers /
:class:`~repro.core.base.NeighbourView` sequences so they can be
property-tested directly.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from repro.core.base import NeighbourView

__all__ = [
    "URGENCY_CAP",
    "PriorityPolicy",
    "max_receive_rate",
    "deadline_slack",
    "urgency",
    "rarity",
    "traditional_rarity",
    "request_priority",
    "priority_for_view",
]

#: Finite stand-in for "infinite" urgency when a segment's deadline slack is
#: non-positive.  Any value much larger than 1 (the rarity ceiling) works;
#: using a finite cap keeps sort keys well-defined and lets equally-late
#: segments be ordered by their id (earliest deadline first) downstream.
URGENCY_CAP: float = 1.0e6


class PriorityPolicy(enum.Enum):
    """Priority rule variants (used by the ablation benchmark).

    * ``PAPER`` -- ``max(urgency, rarity)`` with the buffer-position rarity
      (the paper's Eq. 9).
    * ``URGENCY_ONLY`` -- ignore rarity.
    * ``TRADITIONAL_RARITY`` -- ``max(urgency, 1/n_i)`` as in earlier
      pull-based systems.
    * ``SEQUENTIAL`` -- priority decreases with segment id (earliest first),
      i.e. no urgency/rarity information at all.
    """

    PAPER = "paper"
    URGENCY_ONLY = "urgency-only"
    TRADITIONAL_RARITY = "traditional-rarity"
    SEQUENTIAL = "sequential"


def max_receive_rate(rates: Iterable[float]) -> float:
    """``R_i = max_j R_ij`` (Eq. 6); zero when there is no supplier."""
    rates = list(rates)
    return max(rates) if rates else 0.0


def deadline_slack(seg_id: int, playback_id: int, play_rate: float, receive_rate: float) -> float:
    """``t_i``: expected time margin before ``seg_id`` misses its deadline (Eq. 7).

    ``(id_i - id_play)/p`` is when the player will need the segment and
    ``1/R_i`` is how long the (fastest) transfer would take.  A non-positive
    slack means the segment cannot arrive in time even from its fastest
    supplier.
    """
    if play_rate <= 0:
        raise ValueError(f"play_rate must be positive, got {play_rate}")
    playback_distance = (seg_id - playback_id) / play_rate
    transfer_time = (1.0 / receive_rate) if receive_rate > 0 else float("inf")
    return playback_distance - transfer_time


def urgency(seg_id: int, playback_id: int, play_rate: float, receive_rate: float) -> float:
    """``urgency_i = 1 / t_i`` capped at :data:`URGENCY_CAP` (Eq. 7).

    Segments with non-positive slack (already late, or unservable because no
    supplier can send them) get the cap.
    """
    slack = deadline_slack(seg_id, playback_id, play_rate, receive_rate)
    if slack <= 0:
        return URGENCY_CAP
    return min(1.0 / slack, URGENCY_CAP)


def rarity(positions: Sequence[int], buffer_capacity: int | Sequence[int]) -> float:
    """``rarity_i = prod_j (p_ij / B_j)`` (Eq. 8).

    Parameters
    ----------
    positions:
        FIFO positions of the segment in each supplier's buffer, counted
        from the tail (insertion end); ``1`` = newest, ``B`` = next to be
        evicted.
    buffer_capacity:
        Either a single capacity shared by all suppliers or one capacity per
        supplier.

    Returns
    -------
    float
        A value in ``(0, 1]``; segments with no supplier have rarity ``1.0``
        (they are as rare as possible -- nobody holds them), although such
        segments are never schedulable anyway.
    """
    positions = list(positions)
    if not positions:
        return 1.0
    if isinstance(buffer_capacity, (int, float)):
        capacities = [int(buffer_capacity)] * len(positions)
    else:
        capacities = [int(c) for c in buffer_capacity]
        if len(capacities) != len(positions):
            raise ValueError(
                f"got {len(positions)} positions but {len(capacities)} capacities"
            )
    value = 1.0
    for pos, cap in zip(positions, capacities):
        if cap <= 0:
            raise ValueError(f"buffer capacity must be positive, got {cap}")
        clamped = min(max(int(pos), 1), cap)
        value *= clamped / cap
    return value


def traditional_rarity(n_suppliers: int) -> float:
    """The traditional rarity ``1 / n_i`` the paper compares against."""
    if n_suppliers <= 0:
        return 1.0
    return 1.0 / n_suppliers


def request_priority(urgency_value: float, rarity_value: float) -> float:
    """``priority_i = max(urgency_i, rarity_i)`` (Eq. 9)."""
    return max(urgency_value, rarity_value)


def priority_for_view(
    seg_id: int,
    suppliers: Sequence[NeighbourView],
    playback_id: int,
    play_rate: float,
    *,
    policy: PriorityPolicy = PriorityPolicy.PAPER,
) -> float:
    """Compute a segment's priority from neighbour snapshots.

    This is the convenience entry point used by the switch algorithms: it
    derives ``R_i``, the per-supplier buffer positions and capacities from
    the :class:`~repro.core.base.NeighbourView` objects and applies the
    selected :class:`PriorityPolicy`.
    """
    receive_rate = max_receive_rate(s.send_rate for s in suppliers)
    urgency_value = urgency(seg_id, playback_id, play_rate, receive_rate)

    if policy is PriorityPolicy.SEQUENTIAL:
        # Larger priority for earlier segments; strictly positive, below any
        # urgency cap so tests can still distinguish the policies.
        return 1.0 / (1.0 + max(seg_id - playback_id, 0))
    if policy is PriorityPolicy.URGENCY_ONLY:
        return urgency_value
    if policy is PriorityPolicy.TRADITIONAL_RARITY:
        return request_priority(urgency_value, traditional_rarity(len(suppliers)))

    rarity_value = rarity(
        [s.position_of(seg_id) for s in suppliers],
        [s.buffer_capacity for s in suppliers],
    )
    return request_priority(urgency_value, rarity_value)
