"""Array-native execution engine for the per-period inner loop.

The oracle engine (:class:`~repro.streaming.session.SwitchSession`) spends
almost its whole budget in the *decide phase*: per peer, per period, it
materialises buffer-map snapshots as dicts/frozensets and walks every
candidate segment in Python to compute priorities.  This module replaces
exactly that phase with NumPy struct-of-arrays passes:

* every node's FIFO buffer is mirrored into one shared ``peers x segments``
  boolean *presence* matrix plus an insertion-index matrix (for the FIFO
  positions the rarity term consumes), kept in sync by
  :class:`MirroredBuffer` (mutations are queued and flushed in one fancy
  assignment per period);
* highest-known-id updates, undelivered-segment sets and candidate/supplier
  matrices come from boolean slices of the presence matrix instead of
  per-neighbour dict churn;
* urgency, rarity and the priority sort are evaluated as whole-array
  expressions whose floating-point operation order matches the scalar
  implementation exactly (sequential per-supplier rarity products, the
  same ``(-priority, seg_id)`` total order); peers with only a handful of
  candidates take an allocation-free scalar shortcut instead.

Everything else -- RNG streams, churn, the outbound ledger, request
execution, playback, metrics -- runs the untouched oracle code, so a
:class:`VectorSwitchSession` is a drop-in subclass that overrides only
``_decide_phase``.  The contract is **bit-identity**: for every supported
algorithm configuration the vector engine produces byte-for-byte the same
store documents as the oracle (enforced by ``tests/test_vector_equivalence.py``).
Peers whose algorithm instance is not a plain
:class:`~repro.core.fast_switch.FastSwitchAlgorithm` or
:class:`~repro.core.normal_switch.NormalSwitchAlgorithm` transparently fall
back to the scalar decide path, preserving correctness for custom
algorithm factories.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import allocate_rates
from repro.core.base import ScheduleDecision, SegmentRequest, Stream
from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.model import optimal_split
from repro.core.normal_switch import NormalSwitchAlgorithm
from repro.core.priority import URGENCY_CAP, PriorityPolicy
from repro.net.fabric import IdealFabric
from repro.obs.probes import STAGE_ASSIGNED, STAGE_REQUESTED, STAGE_SCHEDULED
from repro.obs.telemetry import get_telemetry
from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import UNBOUNDED_CAPACITY, buffer_map_bits
from repro.streaming.peer import PeerNode
from repro.streaming.session import SwitchSession

__all__ = [
    "SegmentArrays",
    "MirroredBuffer",
    "VectorSwitchSession",
    "vectorized_priorities",
]

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_INF = float("inf")


class SegmentArrays:
    """The shared struct-of-arrays state: one row per node, one column per id.

    Attributes
    ----------
    present:
        ``bool`` matrix; ``present[row, seg]`` is buffer membership.
    insert_index:
        ``int64`` matrix of FIFO insertion counters (valid where present);
        a segment's position from the buffer tail is
        ``counter - insert_index[row, seg]`` (no out-of-order discards, the
        only removal path a session exercises).
    pending:
        Mutations queued by :class:`MirroredBuffer` since the last
        :meth:`flush`; ``(row, seg) -> insertion counter`` (or ``-1`` for a
        removal).  The dict keeps only the *final* state per cell, so one
        fancy assignment per period replaces thousands of scalar writes.
    """

    def __init__(self, n_rows: int, n_segments: int) -> None:
        self.present = np.zeros((max(1, n_rows), max(1, n_segments)), dtype=bool)
        self.insert_index = np.zeros_like(self.present, dtype=np.int64)
        self.pending: Dict[Tuple[int, int], int] = {}

    @property
    def n_segments(self) -> int:
        """Current width of the segment axis."""
        return self.present.shape[1]

    def flush(self) -> None:
        """Apply all queued buffer mutations to the matrices."""
        pending = self.pending
        if not pending:
            return
        self.pending = {}
        n = len(pending)
        rows = np.empty(n, dtype=np.intp)
        cols = np.empty(n, dtype=np.intp)
        values = np.empty(n, dtype=np.int64)
        max_seg = 0
        i = 0
        for (row, seg), value in pending.items():
            rows[i] = row
            cols[i] = seg
            values[i] = value
            if seg > max_seg:
                max_seg = seg
            i += 1
        self.ensure_segments(max_seg + 1)
        inserted = values >= 0
        self.present[rows, cols] = inserted
        self.insert_index[rows, cols] = np.where(inserted, values, 0)

    def ensure_segments(self, n: int) -> None:
        """Grow the segment axis (geometrically) to cover ids ``< n``."""
        current = self.present.shape[1]
        if n <= current:
            return
        new = max(n, current * 2)
        self.present = _grown(self.present, (self.present.shape[0], new))
        self.insert_index = _grown(self.insert_index, (self.insert_index.shape[0], new))

    def ensure_rows(self, n: int) -> None:
        """Grow the node axis (geometrically) to cover rows ``< n``."""
        current = self.present.shape[0]
        if n <= current:
            return
        new = max(n, current * 2)
        self.present = _grown(self.present, (new, self.present.shape[1]))
        self.insert_index = _grown(self.insert_index, (new, self.insert_index.shape[1]))


def _grown(array: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    out = np.zeros(shape, dtype=array.dtype)
    out[: array.shape[0], : array.shape[1]] = array
    return out


class MirroredBuffer(SegmentBuffer):
    """A :class:`SegmentBuffer` that mirrors its contents into a matrix row.

    Behaviour is identical to the parent (the parent's own structures stay
    authoritative and are always current); the mirror only queues array
    bookkeeping on the mutation paths, flushed lazily before the next
    decide phase reads the matrices.
    """

    def __init__(self, capacity: Optional[int], arrays: SegmentArrays, row: int) -> None:
        super().__init__(capacity=capacity)
        self.arrays = arrays
        self.row = int(row)

    @classmethod
    def adopt(
        cls, buffer: SegmentBuffer, arrays: SegmentArrays, row: int
    ) -> "MirroredBuffer":
        """Wrap an existing buffer, taking over its state and filling the row."""
        mirrored = cls(buffer.capacity, arrays, row)
        mirrored._order = buffer._order
        mirrored._insert_index = buffer._insert_index
        mirrored._counter = buffer._counter
        mirrored._discards = buffer._discards
        mirrored.evicted_total = buffer.evicted_total
        if mirrored._insert_index:
            ids = np.fromiter(
                mirrored._insert_index.keys(), dtype=np.int64, count=len(mirrored._insert_index)
            )
            values = np.fromiter(
                mirrored._insert_index.values(), dtype=np.int64, count=len(mirrored._insert_index)
            )
            arrays.ensure_segments(int(ids.max()) + 1)
            arrays.present[row, ids] = True
            arrays.insert_index[row, ids] = values
        return mirrored

    def insert(self, seg_id: int) -> Optional[int]:
        if seg_id in self._insert_index:
            return None
        evicted = super().insert(seg_id)
        pending = self.arrays.pending
        pending[(self.row, seg_id)] = self._counter - 1
        if evicted is not None:
            pending[(self.row, evicted)] = -1
        return evicted

    def discard(self, seg_id: int) -> bool:
        removed = super().discard(seg_id)
        if removed:
            self.arrays.pending[(self.row, seg_id)] = -1
        return removed


class _Survivors:
    """Per-peer neighbourhood structure for one decide pass.

    Under the ideal fabric (no per-message draws, nothing ever dropped)
    these are cached between periods and invalidated whenever session
    membership changes; under lossy fabrics they are rebuilt every period
    so the control-plane RNG draws happen in exactly the oracle's order.
    """

    __slots__ = (
        "ids", "id_set", "rows", "rows_col", "rates", "rates_col", "transfers",
        "caps", "caps_col", "buffers", "wire_bits",
    )

    def __init__(
        self,
        ids: List[int],
        rates: List[float],
        buffers: List[MirroredBuffer],
        wire_bits: int,
    ) -> None:
        self.ids = ids
        self.id_set = frozenset(ids)
        self.rows = np.array([b.row for b in buffers], dtype=np.intp)
        self.rows_col = self.rows[:, None]
        self.rates = rates
        self.rates_col = np.array(rates, dtype=np.float64)[:, None]
        self.transfers = [1.0 / rate if rate > 0 else _INF for rate in rates]
        self.caps = [
            b.capacity if b.capacity is not None else UNBOUNDED_CAPACITY for b in buffers
        ]
        self.caps_col = np.array(self.caps, dtype=np.int64)[:, None]
        self.buffers = buffers
        self.wire_bits = wire_bits


class VectorSwitchSession(SwitchSession):
    """:class:`SwitchSession` with the array-native decide phase.

    Constructed automatically by ``SwitchSession(config)`` whenever
    ``config.engine == "vector"``; accepts exactly the same arguments.
    After the (scalar) setup completes, every node's buffer is swapped for
    a :class:`MirroredBuffer` bound to a row of the shared
    :class:`SegmentArrays`, and ``_decide_phase`` is overridden with the
    vector implementation.  All other phases -- churn, generation, request
    execution, deliveries, playback, metrics -- run the oracle's code
    unchanged, and RNG consumption is draw-for-draw identical.
    """

    def __init__(self, config, **kwargs) -> None:
        self._arrays: Optional[SegmentArrays] = None
        self._next_row = 0
        self._survivor_cache: Dict[int, _Survivors] = {}
        self._cached_alive: Optional[set] = None
        super().__init__(config, **kwargs)
        self._vectorize()

    # ------------------------------------------------------------------ #
    # array construction
    # ------------------------------------------------------------------ #
    def _vectorize(self) -> None:
        cfg = self.config
        plan = self.switch_plan
        # Size the segment axis for everything the run can generate or
        # advertise interest in; MirroredBuffer still grows on demand.
        horizon_ids = plan.id_begin + int(cfg.play_rate * (cfg.max_time + 2.0 * cfg.tau))
        startup_ids = plan.id_begin + cfg.startup_quota_new + cfg.lookahead // 4
        n_segments = max(horizon_ids, startup_ids, cfg.old_stream_segments) + 64
        self._arrays = SegmentArrays(len(self.peers) + len(self.sources) + 8, n_segments)
        self._peer_wire_bits = buffer_map_bits(cfg.buffer_capacity)
        self._source_wire_bits = buffer_map_bits(600)
        self._capacity_cache: Dict[int, int] = {}
        self._ideal_fabric = type(self.fabric) is IdealFabric
        self._rank_recip = 1.0 / (1.0 + np.arange(1024, dtype=np.float64))
        self._bit_weights = np.left_shift(
            np.ones(64, dtype=np.uint64), np.arange(64, dtype=np.uint64)
        )
        for node_id in sorted(self.sources):
            self._mirror_node(self.sources[node_id])
        for node_id in sorted(self.peers):
            self._mirror_node(self.peers[node_id])

    def _mirror_node(self, node) -> None:
        row = self._next_row
        self._next_row += 1
        self._arrays.ensure_rows(self._next_row)
        node.buffer = MirroredBuffer.adopt(node.buffer, self._arrays, row)

    def _create_joiner(self, now: float, rng: np.random.Generator) -> None:
        before = set(self.peers)
        super()._create_joiner(now, rng)
        for node_id in self.peers.keys() - before:
            self._mirror_node(self.peers[node_id])

    # ------------------------------------------------------------------ #
    # the vector decide phase
    # ------------------------------------------------------------------ #
    def _decide_phase(self, order: Sequence[int], now: float) -> Dict[int, ScheduleDecision]:
        self._arrays.flush()
        if self._ideal_fabric:
            alive = set(self.peers)
            alive.update(self.sources)
            if alive != self._cached_alive:
                self._survivor_cache.clear()
                self._cached_alive = alive
        # Announcers are fixed for the whole phase: deciding never delivers
        # data, so ``has_new_data`` cannot flip mid-loop.
        announcers = {
            node_id
            for node_id, source in self.sources.items()
            if source.switch_plan is not None
        }
        announcers.update(
            node_id
            for node_id, peer in self.peers.items()
            if peer.switch_plan is not None and peer.has_new_data
        )
        decisions: Dict[int, ScheduleDecision] = {}
        vectorised = fallbacks = 0
        obs = get_telemetry()
        probes = obs.probes
        probing = probes.enabled
        # Decide-phase lifecycle rows are accumulated in plain lists and
        # batch-appended once per period, keeping the array path array-native;
        # the rows are built from the same bit-identical SegmentRequest data
        # the scalar engine emits from, so both streams match exactly.
        probe_rows: List[Tuple[float, int, int, int, int, int, float]] = []
        period = self.rounds_run
        old_err = np.seterr(divide="ignore")
        try:
            for node_id in order:
                peer = self.peers[node_id]
                algorithm_type = type(peer.algorithm)
                if algorithm_type is FastSwitchAlgorithm:
                    kind = "fast"
                elif algorithm_type is NormalSwitchAlgorithm:
                    kind = "normal"
                else:
                    # Unsupported algorithm: scalar path, identical draws.
                    fallbacks += 1
                    snapshots = self._pull_buffer_maps(peer)
                    kind = ""
                    decision = peer.decide(snapshots, now)
                if kind:
                    vectorised += 1
                    decision = self._vector_decide(peer, kind, now, announcers)
                decisions[node_id] = decision
                if probing:
                    for request in decision.requests:
                        seg_id = request.seg_id
                        supplier_id = request.supplier_id
                        probe_rows.append(
                            (now, period, node_id, seg_id, STAGE_REQUESTED, -1, 0.0)
                        )
                        probe_rows.append(
                            (now, period, node_id, seg_id, STAGE_ASSIGNED,
                             supplier_id, 0.0)
                        )
                        probe_rows.append(
                            (now, period, node_id, seg_id, STAGE_SCHEDULED,
                             supplier_id, request.expected_receive_time)
                        )
        finally:
            np.seterr(**old_err)
        if probe_rows:
            probes.lifecycle.extend(probe_rows)
        if obs.enabled:
            obs.counter("engine.dispatch.vector").add(vectorised)
            obs.counter("engine.dispatch.scalar_fallback").add(fallbacks)
        return decisions

    def _survivors_of(self, peer: PeerNode) -> _Survivors:
        if self._ideal_fabric:
            entry = self._survivor_cache.get(peer.node_id)
            if entry is None:
                entry = self._build_survivors(peer.node_id, draw=False)
                self._survivor_cache[peer.node_id] = entry
            return entry
        return self._build_survivors(peer.node_id, draw=True)

    def _build_survivors(self, node_id: int, *, draw: bool) -> _Survivors:
        ids: List[int] = []
        rates: List[float] = []
        buffers: List[MirroredBuffer] = []
        wire_bits = 0
        sources = self.sources
        fabric = self.fabric
        for neighbour_id in self.overlay.neighbours(node_id):
            node = self._node(neighbour_id)
            if node is None:
                continue
            if draw and fabric.control_transfer(neighbour_id, node_id) is None:
                continue
            ids.append(neighbour_id)
            rates.append(self._estimate_send_rate(neighbour_id))
            buffers.append(node.buffer)
            wire_bits += (
                self._source_wire_bits if neighbour_id in sources else self._peer_wire_bits
            )
        return _Survivors(ids, rates, buffers, wire_bits)

    def _vector_decide(
        self, peer: PeerNode, kind: str, now: float, announcers: set
    ) -> ScheduleDecision:
        arrays = self._arrays
        windows = peer.interest_windows()

        survivors = self._survivors_of(peer)
        if survivors.wire_bits:
            self.overhead.add_control(survivors.wire_bits)

        # -- switch adoption (before horizon classification, as the oracle) -- #
        if peer.switch_plan is None and not announcers.isdisjoint(survivors.id_set):
            peer._adopt_switch((self.switch_plan.id_end, self.switch_plan.id_begin), now)

        plan = peer.switch_plan
        id_end = plan.id_end if plan is not None else None
        id_begin = plan.id_begin if plan is not None else None

        # -- highest-known-id updates from the windowed availability ------- #
        # The highest-known markers only ever grow, so each scan can start
        # past the current marker; once the old marker reaches ``id_end``
        # (its cap) the old-range scan is skipped outright.
        present = arrays.present
        rows = survivors.rows
        hk_old_capped = id_end is not None and peer.highest_known_old == id_end
        for lo, hi in windows:
            if hi < lo:
                continue
            if id_begin is None:
                top = _scan_top(present, rows, lo, hi, peer.highest_known_old)
                if top is not None:
                    peer.highest_known_old = top
            else:
                if not hk_old_capped:
                    old_hi = min(hi, id_end)
                    if old_hi >= lo:
                        top = _scan_top(
                            present, rows, lo, old_hi, peer.highest_known_old
                        )
                        if top is not None:
                            peer.highest_known_old = top
                            hk_old_capped = top == id_end
                new_lo = max(lo, id_begin)
                if hi >= new_lo:
                    top = _scan_top(
                        present, rows, new_lo, hi, peer.highest_known_new
                    )
                    if top is not None:
                        peer.highest_known_new = top

        # -- undelivered-segment sets (authoritative: collectors read them) - #
        own = present[peer.buffer.row]
        playback_old = peer.playback_old
        if playback_old.finished or peer.highest_known_old is None:
            old_ids = _EMPTY_IDS
        else:
            old_ids = _missing_ids(own, playback_old.position, peer.highest_known_old)
        old_list = old_ids.tolist()
        peer.wanted_old = set(old_list)

        playback_new = peer.playback_new
        if plan is None:
            new_ids = _EMPTY_IDS
        elif playback_new is not None and playback_new.started:
            if peer.highest_known_new is None:
                new_ids = _EMPTY_IDS
            else:
                lo = playback_new.position
                hi = min(peer.highest_known_new, lo + peer.lookahead)
                new_ids = _missing_ids(own, lo, hi)
        else:
            startup = plan.startup_ids()
            arrays.ensure_segments(startup.stop)
            own = arrays.present[peer.buffer.row]
            new_ids = _missing_ids(own, startup.start, startup.stop - 1)
        new_list = new_ids.tolist()
        peer.wanted_new = set(new_list)

        # -- the scheduling decision --------------------------------------- #
        capacity = self._capacity_of(peer)
        n_candidates = len(old_list) + len(new_list)
        if capacity <= 0 or n_candidates == 0 or not survivors.ids:
            # No capacity, nothing wanted, or no live neighbours: every
            # algorithm branch collapses to an all-defaults empty decision.
            decision = ScheduleDecision(requests=())
        elif kind == "fast":
            decision = self._fast_decide(
                peer, capacity, survivors, windows, old_ids, new_ids
            )
        else:
            decision = self._normal_decide(
                peer, capacity, survivors, windows, old_ids, new_ids
            )
        peer.requests_issued += len(decision.requests)
        return decision

    def _capacity_of(self, peer: PeerNode) -> int:
        capacity = self._capacity_cache.get(peer.node_id)
        if capacity is None:
            capacity = max(0, int(round(peer.bandwidth.inbound * peer.tau)))
            self._capacity_cache[peer.node_id] = capacity
        return capacity

    # ------------------------------------------------------------------ #
    # fast switch algorithm (Algorithm 1), array form
    # ------------------------------------------------------------------ #
    def _fast_decide(
        self,
        peer: PeerNode,
        capacity: int,
        survivors: _Survivors,
        windows: Sequence[Tuple[int, int]],
        old_ids: np.ndarray,
        new_ids: np.ndarray,
    ) -> ScheduleDecision:
        n_old = old_ids.size
        if n_old == 0:
            candidates = new_ids
        elif new_ids.size == 0:
            candidates = old_ids
        else:
            candidates = np.concatenate((old_ids, new_ids))
        # Snapshots advertise buffer ∩ interest windows, and the windows were
        # computed *before* any mid-round switch adoption -- a just-adopted
        # peer cannot see suppliers for ids outside its pre-adoption windows.
        supply = self._arrays.present[survivors.rows_col, candidates]
        supply &= _window_mask(candidates, windows)
        if not supply.any():
            return ScheduleDecision(requests=())

        # Supplier-less candidates are NOT filtered out: their column mask
        # is zero so the greedy pass skips them in O(1), and the priorities
        # computed for them (urgency caps out on an empty supplier set)
        # never surface because only assigned items are emitted.
        playback_id = peer._current_playback_id()
        policy = peer.algorithm.priority_policy
        if policy is PriorityPolicy.PAPER:
            counters = np.fromiter(
                (b._counter for b in survivors.buffers),
                np.int64,
                count=len(survivors.buffers),
            )[:, None]
            positions = counters - self._arrays.insert_index[
                survivors.rows_col, candidates
            ]
        else:
            positions = None
        priorities = vectorized_priorities(
            candidates, supply, survivors.rates_col, positions, survivors.caps_col,
            playback_id, peer.play_rate, policy,
        )
        # Candidates ascend globally (old ids all precede new ids), so a
        # stable sort on descending priority breaks ties towards earlier
        # segments -- the same total order as sort(key=(-priority, seg_id)).
        order = np.argsort(-priorities, kind="stable").tolist()
        masks = self._supplier_masks(supply)
        # One tolist per array instead of two numpy-scalar conversions per
        # assignment; downstream consumers (requests, store documents) then
        # only ever see native Python ints/floats.
        assigned_old, assigned_new, _ = _greedy_masks(
            order, candidates.tolist(), priorities.tolist(), masks, n_old,
            survivors, peer.tau,
        )
        return self._fast_finish(peer, capacity, assigned_old, assigned_new)

    def _supplier_masks(self, supply: np.ndarray) -> List[int]:
        """Each candidate's supplier set packed into one int bitmask."""
        k = supply.shape[0]
        if k <= 64:
            return (
                supply * self._bit_weights[:k, None]
            ).sum(axis=0, dtype=np.uint64).tolist()
        masks = [0] * supply.shape[1]
        cols, slots = np.nonzero(supply.T)
        for col, slot in zip(cols.tolist(), slots.tolist()):
            masks[col] |= 1 << slot
        return masks

    def _fast_finish(
        self,
        peer: PeerNode,
        capacity: int,
        assigned_old: List[Tuple[int, float, int, float, Stream]],
        assigned_new: List[Tuple[int, float, int, float, Stream]],
    ) -> ScheduleDecision:
        tau = peer.tau
        o1_rate = len(assigned_old) / tau
        o2_rate = len(assigned_new) / tau
        split = optimal_split(
            peer.bandwidth.inbound,
            q1=len(peer.wanted_old),
            q2=len(peer.wanted_new),
            q=peer.startup_quota_old,
            p=peer.play_rate,
        )
        allocation = allocate_rates(split, peer.bandwidth.inbound, o1_rate, o2_rate)

        take_old = min(len(assigned_old), int(round(allocation.i1 * tau)))
        take_new = min(len(assigned_new), int(round(allocation.i2 * tau)))
        while take_old + take_new > capacity:
            if take_new >= take_old and take_new > 0:
                take_new -= 1
            elif take_old > 0:
                take_old -= 1
            else:  # pragma: no cover - both zero cannot exceed capacity
                break

        chosen = assigned_old[:take_old] + assigned_new[:take_new]
        if peer.algorithm.work_conserving:
            leftover = capacity - len(chosen)
            if leftover > 0:
                extras = assigned_old[take_old:] + assigned_new[take_new:]
                if extras:
                    extras.sort(key=_priority_order)
                    chosen = chosen + extras[:leftover]
        chosen.sort(key=_priority_order)

        return ScheduleDecision(
            requests=tuple(_new_request(item) for item in chosen),
            i1=allocation.i1,
            i2=allocation.i2,
            r1=split.r1,
            r2=split.r2,
            o1=o1_rate,
            o2=o2_rate,
            case=allocation.case,
        )

    # ------------------------------------------------------------------ #
    # normal switch algorithm (baseline), array form
    # ------------------------------------------------------------------ #
    def _normal_decide(
        self,
        peer: PeerNode,
        capacity: int,
        survivors: _Survivors,
        windows: Sequence[Tuple[int, int]],
        old_ids: np.ndarray,
        new_ids: np.ndarray,
    ) -> ScheduleDecision:
        tau = peer.tau
        old_assigned, queue = self._sequential_pass(
            survivors, windows, old_ids, tau, None, new_pass=False
        )
        old_chosen = old_assigned[:capacity]

        if peer.algorithm.opportunistic_leftover:
            reserved_for_old = len(old_chosen)
        else:
            reserved_for_old = min(capacity, len(peer.wanted_old))
        remaining = capacity - reserved_for_old
        new_chosen: List[Tuple[int, float, int, float, Stream]] = []
        if remaining > 0 and peer.wanted_new:
            new_assigned, _ = self._sequential_pass(
                survivors, windows, new_ids, tau, queue, new_pass=True
            )
            new_chosen = new_assigned[:remaining]

        requests = [_new_request(item) for item in old_chosen]
        requests.extend(_new_request(item) for item in new_chosen)
        return ScheduleDecision(
            requests=tuple(requests),
            i1=len(old_chosen) / tau,
            i2=len(new_chosen) / tau,
            r1=None,
            r2=None,
            o1=len(old_assigned) / tau,
            o2=len(new_chosen) / tau if new_chosen else 0.0,
            case=None,
        )

    def _sequential_pass(
        self,
        survivors: _Survivors,
        windows: Sequence[Tuple[int, int]],
        needed_sorted: np.ndarray,
        period: float,
        initial_queue: Optional[Dict[int, float]],
        *,
        new_pass: bool,
    ) -> Tuple[List[Tuple[int, float, int, float, Stream]], Dict[int, float]]:
        """One pass of the normal algorithm: playback order, rank priorities.

        Ranks are assigned over *all* needed ids (supplier-less ones
        included), exactly as the scalar ``_sequential_candidates``
        enumerates them; zero-mask candidates are skipped by the greedy.
        """
        m = needed_sorted.size
        if m == 0:
            return [], dict(initial_queue) if initial_queue else {}
        supply = self._arrays.present[survivors.rows_col, needed_sorted]
        supply &= _window_mask(needed_sorted, windows)
        if self._rank_recip.size < m:
            self._rank_recip = 1.0 / (
                1.0 + np.arange(max(m, 2 * self._rank_recip.size), dtype=np.float64)
            )
        masks = self._supplier_masks(supply)
        assigned_old, assigned_new, queue = _greedy_masks(
            range(m), needed_sorted.tolist(), self._rank_recip[:m].tolist(),
            masks, 0 if new_pass else m, survivors, period, initial_queue,
        )
        return (assigned_new if new_pass else assigned_old), queue


# --------------------------------------------------------------------------- #
# priority kernels
# --------------------------------------------------------------------------- #
def vectorized_priorities(
    candidates: np.ndarray,
    supply: np.ndarray,
    rates_col: np.ndarray,
    positions: Optional[np.ndarray],
    caps_col: np.ndarray,
    playback_id: int,
    play_rate: float,
    policy: PriorityPolicy,
) -> np.ndarray:
    """Priorities for every candidate, replicating ``priority_for_view``.

    ``candidates`` is ``(m,)`` int64, ``supply`` is ``(k, m)`` bool
    (supplier slot x candidate), ``rates_col``/``caps_col`` are ``(k, 1)``
    columns, ``positions`` is the ``(k, m)`` int64 FIFO-position matrix
    (only consulted for the PAPER policy).  Every floating-point operation
    happens in the same order as the scalar implementation, so results are
    bit-identical: the rarity product multiplies supplier slots in
    ascending order, with non-suppliers contributing an exact ``* 1.0``.
    """
    if policy is PriorityPolicy.SEQUENTIAL:
        return 1.0 / (1.0 + np.maximum(candidates - playback_id, 0))
    receive = np.where(supply, rates_col, -np.inf).max(axis=0)
    distance = (candidates - playback_id) / play_rate
    transfer = np.where(receive > 0, 1.0 / receive, np.inf)
    slack = distance - transfer
    urgency = np.where(slack <= 0, URGENCY_CAP, np.minimum(1.0 / slack, URGENCY_CAP))
    if policy is PriorityPolicy.URGENCY_ONLY:
        return urgency
    if policy is PriorityPolicy.TRADITIONAL_RARITY:
        return np.maximum(urgency, 1.0 / supply.sum(axis=0))
    clamped = np.minimum(np.maximum(positions, 1), caps_col)
    ratios = np.where(supply, clamped / caps_col, 1.0)
    # multiply.reduce multiplies in ascending slot order, matching the
    # scalar product loop bit for bit (float multiplication is performed
    # pairwise left-to-right either way).
    rarity = np.multiply.reduce(ratios, axis=0)
    return np.maximum(urgency, rarity)


# --------------------------------------------------------------------------- #
# array helpers
# --------------------------------------------------------------------------- #
def _scan_top(
    present: np.ndarray,
    rows: np.ndarray,
    lo: int,
    hi: int,
    current: Optional[int],
) -> Optional[int]:
    """Largest id in ``[lo, hi]`` any row holds, if it beats ``current``.

    Returns ``None`` when nothing above ``current`` is present (so the
    caller's marker is already up to date).  The slices clamp at the matrix
    edge; ids beyond it cannot be present.
    """
    if current is not None:
        if current >= hi:
            return None
        if current + 1 > lo:
            lo = current + 1
    if rows.size == 0:
        return None
    block = present[rows, lo : hi + 1]
    if block.size == 0:
        return None
    hits = np.flatnonzero(block.any(axis=0))
    if hits.size == 0:
        return None
    return lo + int(hits[-1])


def _missing_ids(own: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Ids in ``[lo, hi]`` absent from the ``own`` presence row, ascending."""
    if hi < lo:
        return _EMPTY_IDS
    return np.flatnonzero(~own[lo : hi + 1]) + lo


def _window_mask(candidates: np.ndarray, windows: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Membership of each candidate in the union of interest windows."""
    visible = np.zeros(candidates.size, dtype=bool)
    for lo, hi in windows:
        if hi >= lo:
            visible |= (candidates >= lo) & (candidates <= hi)
    return visible


def _priority_order(item: Tuple[int, float, int, float, Stream]) -> Tuple[float, int]:
    return (-item[1], item[0])


def _new_request(item: Tuple[int, float, int, float, Stream]) -> SegmentRequest:
    # Bypasses the frozen-dataclass __init__ (which costs ~2x a plain
    # attribute fill through object.__setattr__); the resulting instance is
    # indistinguishable -- same __dict__, same eq/hash/repr.
    request = object.__new__(SegmentRequest)
    request.__dict__.update(
        seg_id=item[0],
        supplier_id=item[2],
        stream=item[4],
        expected_receive_time=item[3],
    )
    return request


# --------------------------------------------------------------------------- #
# greedy earliest-completion assignment
# --------------------------------------------------------------------------- #
def _greedy_masks(
    order,
    candidates: Sequence[int],
    priorities: Sequence[float],
    masks: List[int],
    n_old: int,
    survivors: _Survivors,
    period: float,
    initial_queue: Optional[Dict[int, float]] = None,
) -> Tuple[
    List[Tuple[int, float, int, float, Stream]],
    List[Tuple[int, float, int, float, Stream]],
    Dict[int, float],
]:
    """Replicates ``greedy_supplier_assignment`` exactly, bitmask-driven.

    Strictly earlier completion wins, the first minimum (in supplier slot
    order -- ascending bit order) is kept, and a completion must fall
    strictly below the period.  ``live_mask`` holds exactly the supplier
    slots whose next completion still beats the period; queue times only
    ever grow, so a slot that leaves the mask never re-enters, candidates
    with no live supplier are skipped in O(1), and once the mask empties no
    later candidate can be assigned -- same result as the scalar greedy in
    a fraction of the iterations.  Candidates at ``order`` positions
    ``>= n_old`` are new-stream.
    """
    queue: Dict[int, float] = dict(initial_queue) if initial_queue else {}
    ids = survivors.ids
    transfers = survivors.transfers
    rates = survivors.rates
    # comp[slot] is the completion time the slot would yield if chosen next;
    # it only changes when the slot is assigned, so keeping it as a list
    # turns the inner scan into plain index/compare work.
    comp = [
        transfers[slot] + queue.get(ids[slot], 0.0) for slot in range(len(ids))
    ]
    live_mask = 0
    for slot, completion in enumerate(comp):
        if rates[slot] > 0 and completion < period:
            live_mask |= 1 << slot
    assigned_old: List[Tuple[int, float, int, float, Stream]] = []
    assigned_new: List[Tuple[int, float, int, float, Stream]] = []
    if live_mask:
        for index in order:
            bits = masks[index] & live_mask
            if not bits:
                continue
            best_time = _INF
            best_slot = -1
            while bits:
                low = bits & -bits
                bits ^= low
                slot = low.bit_length() - 1
                completion = comp[slot]
                if completion < best_time:
                    best_time = completion
                    best_slot = slot
            supplier_id = ids[best_slot]
            queue[supplier_id] = best_time
            if index >= n_old:
                assigned_new.append(
                    (candidates[index], priorities[index],
                     supplier_id, best_time, Stream.NEW)
                )
            else:
                assigned_old.append(
                    (candidates[index], priorities[index],
                     supplier_id, best_time, Stream.OLD)
                )
            next_completion = transfers[best_slot] + best_time
            comp[best_slot] = next_completion
            if next_completion >= period:
                live_mask &= ~(1 << best_slot)
                if not live_mask:
                    break
    return assigned_old, assigned_new, queue
