"""Random-edge augmentation to a minimum neighbour degree.

The paper: *"Because their average node degree is too small for media
streaming, we add random edges into each overlay to let every node hold
M = 5 connected neighbours.  According to our simulation experience, M = 5
is usually a good practical choice and using a larger M cannot bring more
benefit."*

:func:`augment_to_min_degree` implements exactly that step: random edges are
added until every node has at least ``M`` neighbours.  The procedure is
deterministic for a given RNG and never removes existing crawl edges, so a
node that already has more than ``M`` crawled neighbours keeps them
(matching the paper's "add random edges" wording).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.overlay.topology import Overlay

__all__ = ["augment_to_min_degree", "AugmentationError"]


class AugmentationError(RuntimeError):
    """Raised when the target minimum degree cannot be reached."""


def augment_to_min_degree(
    overlay: Overlay,
    min_degree: int,
    rng: np.random.Generator,
    *,
    max_attempts_per_node: int = 1000,
) -> int:
    """Add random edges until every node has at least ``min_degree`` neighbours.

    Parameters
    ----------
    overlay:
        The overlay to augment **in place**.
    min_degree:
        Target minimum degree ``M`` (the paper uses 5).
    rng:
        Random generator controlling which edges are added.
    max_attempts_per_node:
        Safety bound on rejected samples (duplicate edges / self loops) per
        deficient node before falling back to a deterministic scan.

    Returns
    -------
    int
        The number of edges added.

    Raises
    ------
    AugmentationError
        If the overlay has fewer than ``min_degree + 1`` nodes, in which
        case the target degree is unsatisfiable.
    """
    if min_degree < 0:
        raise ValueError(f"min_degree must be non-negative, got {min_degree}")
    n = len(overlay)
    if min_degree == 0 or n == 0:
        return 0
    if n <= min_degree:
        raise AugmentationError(
            f"cannot reach minimum degree {min_degree} with only {n} nodes"
        )

    node_ids: List[int] = overlay.node_ids
    added = 0
    # Process nodes in random order so low-id nodes are not systematically
    # favoured as augmentation targets.
    order = list(node_ids)
    rng.shuffle(order)
    for node in order:
        attempts = 0
        while overlay.degree(node) < min_degree:
            if attempts < max_attempts_per_node:
                candidate = int(node_ids[int(rng.integers(0, n))])
                attempts += 1
                if candidate == node or overlay.has_edge(node, candidate):
                    continue
                if overlay.add_edge(node, candidate):
                    added += 1
            else:
                # Deterministic fallback: connect to the lowest-degree
                # non-neighbour.  This only triggers in pathological cases
                # (tiny overlays with a high target degree).
                candidate = _lowest_degree_non_neighbour(overlay, node)
                if candidate is None:
                    raise AugmentationError(
                        f"node {node} cannot reach degree {min_degree}; overlay too small"
                    )
                overlay.add_edge(node, candidate)
                added += 1
    return added


def _lowest_degree_non_neighbour(overlay: Overlay, node: int) -> Optional[int]:
    """The non-neighbour of ``node`` with the smallest degree, or ``None``."""
    neighbours = set(overlay.neighbours(node))
    best: Optional[int] = None
    best_degree = float("inf")
    for candidate in overlay.node_ids:
        if candidate == node or candidate in neighbours:
            continue
        degree = overlay.degree(candidate)
        if degree < best_degree:
            best = candidate
            best_degree = degree
    return best
