"""The in-memory overlay graph used by the simulator.

:class:`Overlay` is a thin, undirected adjacency structure with per-node
attributes (ping time, access speed) and per-edge latencies derived from the
ping times of both endpoints.  It supports the operations the streaming
substrate and the churn model need:

* neighbour queries,
* node addition/removal (churn),
* random-edge augmentation bookkeeping,
* BFS hop distances (used by the analytic warm-up to seed per-peer lag),
* conversion to/from :mod:`networkx` for analysis and tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.overlay.trace import TraceNode

__all__ = ["NodeInfo", "Overlay", "build_overlay_from_trace"]


@dataclass
class NodeInfo:
    """Static attributes of one overlay node.

    Attributes
    ----------
    node_id:
        Unique identifier.
    ping_ms:
        Measured ping time towards the node (milliseconds).
    speed_kbps:
        Advertised access speed (kbit/s).
    """

    node_id: int
    ping_ms: float = 50.0
    speed_kbps: float = 1000.0


class Overlay:
    """An undirected overlay graph with node attributes and edge latencies.

    Edge latency is modelled as half the sum of both endpoints' ping times
    (a crude but standard symmetric decomposition of end-to-end RTT into
    per-host access delays), expressed in **seconds**.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, NodeInfo] = {}
        self._adj: Dict[int, set[int]] = {}

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #
    def add_node(self, info: NodeInfo) -> None:
        """Add a node; raises ``ValueError`` if the id already exists."""
        if info.node_id in self._nodes:
            raise ValueError(f"node {info.node_id} already present")
        self._nodes[info.node_id] = info
        self._adj[info.node_id] = set()

    def remove_node(self, node_id: int) -> None:
        """Remove a node and all its incident edges."""
        if node_id not in self._nodes:
            raise KeyError(node_id)
        for other in list(self._adj[node_id]):
            self._adj[other].discard(node_id)
        del self._adj[node_id]
        del self._nodes[node_id]

    def add_edge(self, a: int, b: int) -> bool:
        """Add the undirected edge ``(a, b)``.

        Returns ``True`` if the edge was new, ``False`` if it already existed
        or is a self-loop.  Unknown endpoints raise ``KeyError``.
        """
        if a not in self._nodes:
            raise KeyError(a)
        if b not in self._nodes:
            raise KeyError(b)
        if a == b or b in self._adj[a]:
            return False
        self._adj[a].add(b)
        self._adj[b].add(a)
        return True

    def remove_edge(self, a: int, b: int) -> None:
        """Remove the undirected edge ``(a, b)`` (no-op if absent)."""
        self._adj.get(a, set()).discard(b)
        self._adj.get(b, set()).discard(a)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> List[int]:
        """All node ids (sorted, for determinism)."""
        return sorted(self._nodes)

    def nodes(self) -> Iterator[NodeInfo]:
        """Iterate node attribute records in id order."""
        for node_id in self.node_ids:
            yield self._nodes[node_id]

    def info(self, node_id: int) -> NodeInfo:
        """Attribute record of ``node_id``."""
        return self._nodes[node_id]

    def neighbours(self, node_id: int) -> List[int]:
        """Sorted list of neighbours of ``node_id``."""
        return sorted(self._adj[node_id])

    def degree(self, node_id: int) -> int:
        """Number of neighbours of ``node_id``."""
        return len(self._adj[node_id])

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adj.get(a, ())

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once each, as ``(min_id, max_id)`` pairs."""
        for a in self.node_ids:
            for b in self._adj[a]:
                if a < b:
                    yield (a, b)

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(s) for s in self._adj.values()) // 2

    def average_degree(self) -> float:
        """Mean node degree (0.0 for an empty overlay)."""
        if not self._nodes:
            return 0.0
        return 2.0 * self.edge_count() / len(self._nodes)

    def edge_latency(self, a: int, b: int) -> float:
        """Latency of edge ``(a, b)`` in seconds."""
        info_a, info_b = self._nodes[a], self._nodes[b]
        return (info_a.ping_ms + info_b.ping_ms) / 2.0 / 1000.0

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def hop_distances_from(self, origin: int) -> Dict[int, int]:
        """BFS hop distance from ``origin`` to every reachable node.

        Unreachable nodes are absent from the returned mapping.
        """
        if origin not in self._nodes:
            raise KeyError(origin)
        dist: Dict[int, int] = {origin: 0}
        frontier: deque[int] = deque([origin])
        while frontier:
            current = frontier.popleft()
            d = dist[current]
            for nxt in self._adj[current]:
                if nxt not in dist:
                    dist[nxt] = d + 1
                    frontier.append(nxt)
        return dist

    def is_connected(self) -> bool:
        """Whether the overlay is a single connected component."""
        if not self._nodes:
            return True
        origin = next(iter(self._nodes))
        return len(self.hop_distances_from(origin)) == len(self._nodes)

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` (with node/edge attributes)."""
        graph = nx.Graph()
        for info in self.nodes():
            graph.add_node(info.node_id, ping_ms=info.ping_ms, speed_kbps=info.speed_kbps)
        for a, b in self.edges():
            graph.add_edge(a, b, latency=self.edge_latency(a, b))
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "Overlay":
        """Build an overlay from a :class:`networkx.Graph`.

        Node attributes ``ping_ms`` and ``speed_kbps`` are honoured when
        present; otherwise defaults apply.
        """
        overlay = cls()
        for node, data in graph.nodes(data=True):
            overlay.add_node(
                NodeInfo(
                    node_id=int(node),
                    ping_ms=float(data.get("ping_ms", 50.0)),
                    speed_kbps=float(data.get("speed_kbps", 1000.0)),
                )
            )
        for a, b in graph.edges():
            overlay.add_edge(int(a), int(b))
        return overlay

    def copy(self) -> "Overlay":
        """Deep copy of the overlay (node records are copied by value)."""
        clone = Overlay()
        for info in self.nodes():
            clone.add_node(NodeInfo(info.node_id, info.ping_ms, info.speed_kbps))
        for a, b in self.edges():
            clone.add_edge(a, b)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Overlay(nodes={len(self)}, edges={self.edge_count()})"


def build_overlay_from_trace(records: Sequence[TraceNode]) -> Overlay:
    """Build an :class:`Overlay` from parsed trace records.

    Crawled neighbour references to unknown node ids are ignored (real
    crawls routinely contain dangling references to servents that went
    offline mid-crawl).
    """
    overlay = Overlay()
    known = {record.node_id for record in records}
    for record in records:
        overlay.add_node(
            NodeInfo(
                node_id=record.node_id,
                ping_ms=record.ping_ms,
                speed_kbps=record.speed_kbps,
            )
        )
    for record in records:
        for neighbour in record.neighbours:
            if neighbour in known and neighbour != record.node_id:
                overlay.add_edge(record.node_id, neighbour)
    return overlay
