"""Gossip membership management (neighbour lists under churn).

CoolStreaming-style systems (the class of systems the paper targets) rely
on a gossip membership protocol [Ganesh et al. 2003] to give every node a
small partial view of the overlay from which it picks ``M`` streaming
neighbours.  For the purposes of the switch-time evaluation the relevant
behaviours are:

* a joining node obtains ``M`` random alive neighbours,
* a leaving (or failed) node silently disappears; its former neighbours
  detect the loss at the next scheduling period and repair their neighbour
  set back to the minimum degree by picking new random partners,
* partner choices are random and uniform over alive nodes (the random
  partner selection is what gives gossip dissemination its resilience).

:class:`MembershipService` implements these behaviours directly against the
:class:`~repro.overlay.topology.Overlay`, which keeps the simulation faithful
to the paper while avoiding per-message simulation of the membership gossip
itself (whose traffic the paper does not count either).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.overlay.topology import NodeInfo, Overlay

__all__ = ["MembershipService"]


class MembershipService:
    """Maintains the overlay neighbour structure under join/leave churn.

    Parameters
    ----------
    overlay:
        The overlay to manage (mutated in place).
    min_degree:
        The target number of streaming neighbours ``M`` (paper: 5).
    rng:
        Random generator used for partner selection.
    protected:
        Node ids that must never be removed by churn (the sources).
    """

    def __init__(
        self,
        overlay: Overlay,
        min_degree: int,
        rng: np.random.Generator,
        *,
        protected: Iterable[int] = (),
    ) -> None:
        if min_degree < 1:
            raise ValueError(f"min_degree must be >= 1, got {min_degree}")
        self.overlay = overlay
        self.min_degree = int(min_degree)
        self._rng = rng
        self.protected = set(protected)
        self._next_id = (max(overlay.node_ids) + 1) if len(overlay) else 0
        self._region_index_of: Optional[Callable[[int], Optional[int]]] = None
        self._locality_bias = 1.0
        #: cumulative counters, useful for tests and reports
        self.joins = 0
        self.leaves = 0
        self.repairs = 0

    # ------------------------------------------------------------------ #
    # locality-aware partner selection
    # ------------------------------------------------------------------ #
    def set_locality(
        self,
        region_index_of: Callable[[int], Optional[int]],
        bias: float,
    ) -> None:
        """Enable locality-aware partner selection.

        ``region_index_of`` maps a node id to its network-region index (or
        ``None`` when unknown) and ``bias`` is the weight multiplier for
        same-region candidates: with bias ``b``, a same-region candidate is
        ``b`` times as likely to be drawn as a remote one.  A ``bias`` of
        1.0 (or less) is a no-op: locality stays disabled and partner
        selection keeps the classic region-blind uniform draw, bit
        identical to a service that never saw this call.  (The weighted
        draw consumes the random stream differently from the uniform one,
        which is why enabling locality is gated on ``bias > 1`` rather
        than on passing weight 1.0 into the weighted path.)
        """
        if bias > 1.0:
            self._region_index_of = region_index_of
            self._locality_bias = float(bias)

    @property
    def locality_enabled(self) -> bool:
        """Whether partner selection is biased toward same-region nodes."""
        return self._region_index_of is not None

    # ------------------------------------------------------------------ #
    # membership changes
    # ------------------------------------------------------------------ #
    def allocate_node_id(self) -> int:
        """Return a fresh, never-used node id."""
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def join(self, info: Optional[NodeInfo] = None) -> int:
        """Add a new node with ``min_degree`` random alive neighbours.

        When fewer than ``min_degree`` other nodes are alive the joiner gets
        a partial neighbour set (everyone alive) -- see :meth:`repair`.

        Returns the id of the new node.
        """
        if info is None:
            info = NodeInfo(node_id=self.allocate_node_id())
        elif info.node_id >= self._next_id:
            self._next_id = info.node_id + 1
        self.overlay.add_node(info)
        self._connect_to_random_partners(info.node_id, self.min_degree)
        self.joins += 1
        return info.node_id

    def leave(self, node_id: int) -> List[int]:
        """Remove ``node_id`` from the overlay.

        Returns the ids of its former neighbours (the peers that will need
        repair).  Protected nodes raise ``ValueError``.
        """
        if node_id in self.protected:
            raise ValueError(f"node {node_id} is protected and cannot leave")
        former = self.overlay.neighbours(node_id)
        self.overlay.remove_node(node_id)
        self.leaves += 1
        return former

    @property
    def effective_min_degree(self) -> int:
        """The degree target actually reachable with the current population.

        When fewer than ``min_degree + 1`` nodes are alive the full target is
        unattainable (a node cannot have more neighbours than there are other
        nodes), so membership maintenance degrades gracefully to the complete
        graph on the survivors instead of chasing -- and repeatedly re-drawing
        partners for -- an impossible deficit.
        """
        return min(self.min_degree, max(0, len(self.overlay) - 1))

    def repair(self, node_ids: Optional[Sequence[int]] = None) -> int:
        """Restore the minimum degree of the given nodes (default: all).

        Returns the number of edges added.  With fewer than ``min_degree + 1``
        alive nodes the repair targets :attr:`effective_min_degree` instead --
        nodes keep a partial neighbour set and a saturated (complete) overlay
        is a no-op rather than a perpetual retry.
        """
        if node_ids is None:
            node_ids = self.overlay.node_ids
        target = self.effective_min_degree
        added = 0
        for node_id in node_ids:
            if node_id not in self.overlay:
                continue
            deficit = target - self.overlay.degree(node_id)
            if deficit > 0:
                added += self._connect_to_random_partners(node_id, deficit)
        if added:
            self.repairs += 1
        return added

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _connect_to_random_partners(self, node_id: int, count: int) -> int:
        """Connect ``node_id`` to up to ``count`` random non-neighbours."""
        candidates = [
            other
            for other in self.overlay.node_ids
            if other != node_id and not self.overlay.has_edge(node_id, other)
        ]
        if not candidates:
            return 0
        count = min(count, len(candidates))
        if self._region_index_of is not None:
            # Locality-aware draw: same-region candidates carry ``bias``
            # weight, everyone else 1.0 (unknown regions count as remote).
            own = self._region_index_of(node_id)
            weights = np.array(
                [
                    self._locality_bias
                    if own is not None and self._region_index_of(c) == own
                    else 1.0
                    for c in candidates
                ],
                dtype=float,
            )
            chosen = self._rng.choice(
                len(candidates), size=count, replace=False, p=weights / weights.sum()
            )
        else:
            chosen = self._rng.choice(len(candidates), size=count, replace=False)
        added = 0
        for idx in np.atleast_1d(chosen):
            if self.overlay.add_edge(node_id, candidates[int(idx)]):
                added += 1
        return added

    def random_alive_peer(self, exclude: Iterable[int] = ()) -> Optional[int]:
        """A uniformly random alive node id not in ``exclude`` (or ``None``)."""
        exclude_set = set(exclude)
        candidates = [n for n in self.overlay.node_ids if n not in exclude_set]
        if not candidates:
            return None
        return int(candidates[int(self._rng.integers(0, len(candidates)))])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MembershipService(nodes={len(self.overlay)}, M={self.min_degree}, "
            f"joins={self.joins}, leaves={self.leaves})"
        )
