"""Overlay topology substrate.

The paper's simulations run on 30 real-trace P2P overlay topologies
collected from ``dss.clip2.com`` (a Gnutella crawler, Dec 2000 -- Jun 2001),
scaled from 100 to 10000 nodes.  Of the crawl records, only the node ID, IP
and ping time are used; the overlay is then *augmented with random edges*
until every node has ``M = 5`` connected neighbours, because the raw traces
are too sparse for media streaming.

The crawler site has been gone for two decades, so this subpackage provides
(the substitution is documented in ``DESIGN.md``):

* :mod:`repro.overlay.trace` -- a reader/writer for a clip2/DSS-style text
  trace format carrying exactly the fields the paper consumed (ID, IP,
  host name, port, ping time, speed),
* :mod:`repro.overlay.generator` -- a deterministic synthetic trace
  generator producing Gnutella-like crawls (power-law-ish degrees, realistic
  ping-time and access-speed distributions) for any node count,
* :mod:`repro.overlay.topology` -- the in-memory overlay graph used by the
  simulator (adjacency, per-edge latency, per-node attributes),
* :mod:`repro.overlay.augment` -- the random-edge augmentation to reach a
  target minimum degree ``M``,
* :mod:`repro.overlay.membership` -- the gossip membership service that
  maintains neighbour lists under churn (join, leave, neighbour repair).
"""

from repro.overlay.augment import augment_to_min_degree
from repro.overlay.generator import SyntheticTraceGenerator, TraceSpec, generate_trace
from repro.overlay.membership import MembershipService
from repro.overlay.topology import Overlay, build_overlay_from_trace
from repro.overlay.trace import TraceNode, TraceRecordError, parse_trace, write_trace

__all__ = [
    "TraceNode",
    "TraceRecordError",
    "parse_trace",
    "write_trace",
    "SyntheticTraceGenerator",
    "TraceSpec",
    "generate_trace",
    "Overlay",
    "build_overlay_from_trace",
    "augment_to_min_degree",
    "MembershipService",
]
