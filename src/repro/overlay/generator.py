"""Synthetic Gnutella-like overlay trace generation.

The original ``dss.clip2.com`` crawls are unavailable, so experiments are
run on synthetic traces that reproduce the properties the paper's simulator
actually depends on (see the substitution table in ``DESIGN.md``):

* node count (100 -- 10000),
* a sparse, connected bootstrap overlay with a heavy-tailed degree
  distribution, as observed in Gnutella crawls of that era (most servents
  had 1--3 crawled connections, a few hubs had many),
* per-node ping times with a long tail (tens of ms for well-connected
  hosts, hundreds of ms for modem users),
* per-node access speeds drawn from period-typical classes
  (modem / ISDN / cable / DSL / T1 / T3).

The generated trace is deliberately *too sparse for streaming*, just like
the real crawls, so that the random-edge augmentation step
(:func:`repro.overlay.augment.augment_to_min_degree`) is exercised exactly
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.rng import RandomStreams
from repro.overlay.trace import TraceNode

__all__ = ["TraceSpec", "SyntheticTraceGenerator", "generate_trace", "PAPER_TRACE_SIZES"]


#: The overlay sizes the paper's evaluation sweeps over (Figures 6-12).
PAPER_TRACE_SIZES: tuple[int, ...] = (100, 500, 1000, 2000, 4000, 8000)

#: Access-speed classes (kbit/s) with era-appropriate prevalence.
_SPEED_CLASSES: tuple[tuple[float, float], ...] = (
    # (speed_kbps, probability)
    (56.0, 0.25),     # dial-up modem
    (128.0, 0.10),    # ISDN
    (768.0, 0.30),    # DSL
    (1500.0, 0.25),   # cable
    (10000.0, 0.08),  # T1/LAN
    (45000.0, 0.02),  # T3/campus
)


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a synthetic crawl.

    Attributes
    ----------
    n_nodes:
        Number of servents in the crawl.
    seed:
        Root seed; two specs with the same fields produce identical traces.
    mean_degree:
        Mean number of crawled overlay edges per node (kept low on purpose;
        the paper reports the raw traces' average degree is "too small for
        media streaming").
    hub_fraction:
        Fraction of nodes acting as well-connected hubs (ultrapeer-like).
    ping_median_ms / ping_sigma:
        Parameters of the log-normal ping-time distribution.
    """

    n_nodes: int
    seed: int = 0
    mean_degree: float = 2.0
    hub_fraction: float = 0.05
    ping_median_ms: float = 80.0
    ping_sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"a trace needs at least 2 nodes, got {self.n_nodes}")
        if not (0.0 <= self.hub_fraction <= 1.0):
            raise ValueError(f"hub_fraction must be in [0, 1], got {self.hub_fraction}")
        if self.mean_degree < 1.0:
            raise ValueError(f"mean_degree must be >= 1, got {self.mean_degree}")
        if self.ping_median_ms <= 0:
            raise ValueError("ping_median_ms must be positive")


class SyntheticTraceGenerator:
    """Generates deterministic Gnutella-like traces from a :class:`TraceSpec`."""

    def __init__(self, spec: TraceSpec) -> None:
        self.spec = spec
        self._streams = RandomStreams(spec.seed).spawn(f"trace-{spec.n_nodes}")

    # ------------------------------------------------------------------ #
    def generate(self) -> List[TraceNode]:
        """Produce the trace records (connected bootstrap overlay)."""
        spec = self.spec
        n = spec.n_nodes
        rng = self._streams.get("structure")

        ping = self._sample_ping_times(n)
        speed = self._sample_speeds(n)
        adjacency = self._build_adjacency(n, rng)

        nodes: List[TraceNode] = []
        for i in range(n):
            nodes.append(
                TraceNode(
                    node_id=i,
                    ip=_fake_ip(i),
                    host=f"servent-{i}.example.net",
                    port=6346,
                    ping_ms=float(ping[i]),
                    speed_kbps=float(speed[i]),
                    neighbours=tuple(sorted(adjacency[i])),
                )
            )
        return nodes

    # ------------------------------------------------------------------ #
    def _sample_ping_times(self, n: int) -> np.ndarray:
        """Log-normal ping times, clipped to a sane [5 ms, 2000 ms] range."""
        rng = self._streams.get("ping")
        spec = self.spec
        mu = np.log(spec.ping_median_ms)
        values = rng.lognormal(mean=mu, sigma=spec.ping_sigma, size=n)
        return np.clip(values, 5.0, 2000.0)

    def _sample_speeds(self, n: int) -> np.ndarray:
        """Access speeds drawn from the era-typical class mix."""
        rng = self._streams.get("speed")
        speeds = np.array([s for s, _ in _SPEED_CLASSES])
        probs = np.array([p for _, p in _SPEED_CLASSES])
        probs = probs / probs.sum()
        idx = rng.choice(len(speeds), size=n, p=probs)
        return speeds[idx]

    def _build_adjacency(self, n: int, rng: np.random.Generator) -> List[set[int]]:
        """Build a sparse connected bootstrap overlay.

        A random spanning tree guarantees connectivity (new node attaches to
        a random existing node, hubs preferred), then extra random edges are
        added until the target mean degree is reached.  The result has a
        heavy-tailed degree distribution: hubs accumulate many edges.
        """
        spec = self.spec
        adjacency: List[set[int]] = [set() for _ in range(n)]
        n_hubs = max(1, int(round(spec.hub_fraction * n)))
        hubs = set(range(n_hubs))  # first ids act as crawl-seed hubs

        def add_edge(a: int, b: int) -> bool:
            if a == b or b in adjacency[a]:
                return False
            adjacency[a].add(b)
            adjacency[b].add(a)
            return True

        # Spanning tree with preferential attachment towards hubs.
        for i in range(1, n):
            if i <= n_hubs:
                target = int(rng.integers(0, i))
            else:
                # 60% of attachments go to a hub, the rest uniformly at random.
                if rng.random() < 0.6:
                    target = int(rng.choice(sorted(hubs)))
                else:
                    target = int(rng.integers(0, i))
            add_edge(i, target)

        # Extra random edges up to the target mean degree.
        target_edges = int(round(spec.mean_degree * n / 2.0))
        current_edges = n - 1
        attempts = 0
        max_attempts = 20 * max(target_edges, 1)
        while current_edges < target_edges and attempts < max_attempts:
            attempts += 1
            a = int(rng.integers(0, n))
            if rng.random() < 0.4:
                b = int(rng.choice(sorted(hubs)))
            else:
                b = int(rng.integers(0, n))
            if add_edge(a, b):
                current_edges += 1
        return adjacency


def _fake_ip(index: int) -> str:
    """Deterministic, collision-free fake IPv4 address for node ``index``."""
    a = 10
    b = (index >> 16) & 0xFF
    c = (index >> 8) & 0xFF
    d = index & 0xFF
    return f"{a}.{b}.{c}.{d}"


def generate_trace(
    n_nodes: int,
    *,
    seed: int = 0,
    mean_degree: float = 2.0,
    hub_fraction: float = 0.05,
) -> List[TraceNode]:
    """Convenience wrapper: generate a synthetic trace with default knobs.

    Parameters mirror :class:`TraceSpec`; see its docstring.
    """
    spec = TraceSpec(
        n_nodes=n_nodes,
        seed=seed,
        mean_degree=mean_degree,
        hub_fraction=hub_fraction,
    )
    return SyntheticTraceGenerator(spec).generate()


def generate_paper_trace_suite(
    *,
    seed: int = 0,
    sizes: Optional[Sequence[int]] = None,
    traces_per_size: int = 5,
) -> dict[int, List[List[TraceNode]]]:
    """Generate a suite of traces mirroring the paper's 30-trace corpus.

    The paper uses 30 real traces spanning 100 -- 10000 nodes.  With the
    default arguments this produces ``len(PAPER_TRACE_SIZES) * 5 = 30``
    deterministic synthetic traces keyed by size.
    """
    sizes = tuple(sizes) if sizes is not None else PAPER_TRACE_SIZES
    suite: dict[int, List[List[TraceNode]]] = {}
    for size in sizes:
        suite[size] = [
            generate_trace(size, seed=seed + 1000 * k) for k in range(traces_per_size)
        ]
    return suite
