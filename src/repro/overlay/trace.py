"""A clip2/DSS-style overlay trace format.

The original traces (``dss.clip2.com``) were text exports of Gnutella
crawls; each record carried a node identifier, IP address, host name, port,
measured ping time and the advertised access speed.  The paper states that
only the **ID, IP and ping time** fields are actually used by its
simulations.

This module defines an equivalent plain-text format so that the rest of the
code base is written against a *trace file* exactly as the paper's simulator
was, and so that users with access to real Gnutella crawl data can convert
it into this format and run the experiments unchanged.

File format
-----------
One record per line, ``|``-separated::

    # comment lines start with '#'
    <id>|<ip>|<host>|<port>|<ping_ms>|<speed_kbps>|<neighbour ids comma-separated>

The neighbour list encodes the crawled overlay edges (it may be empty; the
paper adds random edges on top of the crawl anyway -- see
:mod:`repro.overlay.augment`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

__all__ = ["TraceNode", "TraceRecordError", "parse_trace", "parse_trace_lines", "write_trace"]


class TraceRecordError(ValueError):
    """Raised when a trace line cannot be parsed."""


@dataclass(frozen=True)
class TraceNode:
    """One node record of an overlay trace.

    Attributes
    ----------
    node_id:
        Integer node identifier, unique within the trace.
    ip:
        Dotted-quad IP address (only used as an opaque label).
    host:
        Host name (opaque label; may be empty).
    port:
        TCP port of the servent.
    ping_ms:
        Measured ping time in milliseconds; used as the propagation latency
        towards this node.
    speed_kbps:
        Advertised access speed in kbit/s; used to classify the node into a
        bandwidth class when no explicit bandwidth assignment is supplied.
    neighbours:
        Node ids of crawled overlay edges (undirected).
    """

    node_id: int
    ip: str
    host: str = ""
    port: int = 6346
    ping_ms: float = 50.0
    speed_kbps: float = 1000.0
    neighbours: tuple[int, ...] = field(default_factory=tuple)

    def to_line(self) -> str:
        """Serialise the record to one trace-file line."""
        neigh = ",".join(str(n) for n in self.neighbours)
        return (
            f"{self.node_id}|{self.ip}|{self.host}|{self.port}|"
            f"{self.ping_ms:g}|{self.speed_kbps:g}|{neigh}"
        )


def _parse_line(line: str, lineno: int) -> TraceNode:
    parts = line.split("|")
    if len(parts) != 7:
        raise TraceRecordError(
            f"line {lineno}: expected 7 '|'-separated fields, got {len(parts)}: {line!r}"
        )
    raw_id, ip, host, port, ping, speed, neigh = (p.strip() for p in parts)
    try:
        node_id = int(raw_id)
        port_i = int(port)
        ping_f = float(ping)
        speed_f = float(speed)
    except ValueError as exc:
        raise TraceRecordError(f"line {lineno}: malformed numeric field in {line!r}") from exc
    if ping_f < 0:
        raise TraceRecordError(f"line {lineno}: negative ping time {ping_f!r}")
    if speed_f < 0:
        raise TraceRecordError(f"line {lineno}: negative speed {speed_f!r}")
    try:
        neighbours = tuple(int(x) for x in neigh.split(",") if x.strip() != "")
    except ValueError as exc:
        raise TraceRecordError(f"line {lineno}: malformed neighbour list in {line!r}") from exc
    return TraceNode(
        node_id=node_id,
        ip=ip,
        host=host,
        port=port_i,
        ping_ms=ping_f,
        speed_kbps=speed_f,
        neighbours=neighbours,
    )


def parse_trace_lines(lines: Iterable[str]) -> List[TraceNode]:
    """Parse trace records from an iterable of lines.

    Comment lines (starting with ``#``) and blank lines are skipped.
    Duplicate node ids raise :class:`TraceRecordError`.
    """
    nodes: List[TraceNode] = []
    seen: set[int] = set()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        node = _parse_line(line, lineno)
        if node.node_id in seen:
            raise TraceRecordError(f"line {lineno}: duplicate node id {node.node_id}")
        seen.add(node.node_id)
        nodes.append(node)
    return nodes


def parse_trace(path: Union[str, Path]) -> List[TraceNode]:
    """Parse a trace file from ``path``."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_trace_lines(handle)


def write_trace(
    nodes: Sequence[TraceNode],
    path: Union[str, Path],
    *,
    header: str = "",
) -> None:
    """Write ``nodes`` to ``path`` in the trace format.

    Parameters
    ----------
    nodes:
        Records to serialise.
    path:
        Destination file path (parent directories must exist).
    header:
        Optional comment placed at the top of the file.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# repro overlay trace (clip2/DSS-style)\n")
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write("# id|ip|host|port|ping_ms|speed_kbps|neighbours\n")
        for node in nodes:
            handle.write(node.to_line() + "\n")


def iter_trace(path: Union[str, Path]) -> Iterator[TraceNode]:
    """Lazily iterate records of a (potentially large) trace file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        seen: set[int] = set()
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            node = _parse_line(line, lineno)
            if node.node_id in seen:
                raise TraceRecordError(f"line {lineno}: duplicate node id {node.node_id}")
            seen.add(node.node_id)
            yield node
