"""repro -- a reproduction of "Fast Source Switching for Gossip-based P2P Streaming".

This package reimplements, from scratch and in pure Python, the system and
evaluation of

    Zhenhua Li, Jiannong Cao, Guihai Chen, Yan Liu.
    "Fast Source Switching for Gossip-based Peer-to-Peer Streaming",
    ICPP 2008.

Layout
------
:mod:`repro.core`
    The paper's contribution: the optimisation model of the switch process,
    the urgency/rarity request priorities, the greedy supplier assignment
    and the fast/normal switch algorithms.
:mod:`repro.sim`
    The discrete-event simulation engine.
:mod:`repro.overlay`
    Overlay traces (clip2/DSS-style format, synthetic Gnutella-like
    generator), topology, random-edge augmentation and membership.
:mod:`repro.streaming`
    The pull-based gossip streaming substrate (buffers, buffer maps,
    bandwidth, playback, sources, peers, the switch session).
:mod:`repro.churn`
    The dynamic-environment (join/leave) model.
:mod:`repro.metrics`
    Metric collection, communication-overhead accounting, reports.
:mod:`repro.experiments`
    Experiment configurations, runners, sweeps and per-figure generators.
:mod:`repro.workloads`
    The time-scripted workload engine: declarative multi-switch zapping,
    churn-burst and bandwidth-regime scenarios over heterogeneous peer
    classes, executed paired and store-backed.
:mod:`repro.channels`
    The multi-channel universe: Zipf channel lineups, the tracker-style
    channel directory, surfing/loyal zapping processes and whole-lineup
    switch measurement on one shared simulation engine.
:mod:`repro.net`
    The latency-aware network layer: named regions with an inter-region
    latency matrix, deterministic lossy links, and the network fabrics
    that turn instantaneous exchanges into delayed (and droppable)
    deliveries -- plus locality-aware overlay partner selection.

Quickstart
----------
>>> from repro import make_session_config, run_pair
>>> config = make_session_config(150, seed=1, max_time=60.0)
>>> pair = run_pair(config)                                   # doctest: +SKIP
>>> pair.switch_time_reduction > 0                            # doctest: +SKIP
True
"""

from repro.channels import UniverseSession, UniverseSpec, run_universe
from repro.core import (
    FastSwitchAlgorithm,
    NormalSwitchAlgorithm,
    allocate_rates,
    optimal_split,
)
from repro.experiments.config import make_session_config
from repro.experiments.figures import generate_figure
from repro.experiments.runner import run_pair, run_single
from repro.net import (
    IdealFabric,
    LatencyFabric,
    NetTopology,
    Region,
    get_topology,
    topology_names,
)
from repro.streaming.session import SessionConfig, SessionResult, SwitchSession
from repro.workloads import Phase, WorkloadSpec, get_universe, get_workload, run_workload

__version__ = "1.8.0"

__all__ = [
    "__version__",
    "FastSwitchAlgorithm",
    "NormalSwitchAlgorithm",
    "optimal_split",
    "allocate_rates",
    "SessionConfig",
    "SessionResult",
    "SwitchSession",
    "make_session_config",
    "run_single",
    "run_pair",
    "generate_figure",
    "WorkloadSpec",
    "Phase",
    "get_workload",
    "run_workload",
    "UniverseSpec",
    "UniverseSession",
    "get_universe",
    "run_universe",
    "Region",
    "NetTopology",
    "IdealFabric",
    "LatencyFabric",
    "get_topology",
    "topology_names",
]
