"""Dynamic-environment (churn) model.

For the dynamic experiments (Figures 9--12) the paper lets *"5% old nodes
leave and 5% new nodes join per scheduling period"*.  Joining nodes do not
back-fill the history of either source; they simply start following their
neighbours' current playback point.  This subpackage provides the churn
policy (:class:`~repro.churn.model.ChurnModel`), which decides *who leaves*
and *how many join* each period; the session executes the plan (removing
peers, repairing neighbour sets, creating joiners).
"""

from repro.churn.model import ChurnConfig, ChurnModel, ChurnPlan

__all__ = ["ChurnConfig", "ChurnModel", "ChurnPlan"]
