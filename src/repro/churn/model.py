"""Churn policy: who leaves and how many join, per scheduling period.

The policy is deliberately separated from its execution: it only draws the
random decisions (so it can be unit-tested deterministically), while the
session applies them to the overlay, the membership service and the peer
population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.clock import round_half_up

__all__ = ["ChurnConfig", "ChurnPlan", "ChurnModel"]


@dataclass(frozen=True)
class ChurnConfig:
    """Churn intensity.

    Attributes
    ----------
    leave_fraction:
        Fraction of eligible (non-source, non-protected) peers leaving per
        scheduling period.  The paper uses 0.05.
    join_fraction:
        Fraction (of the current eligible population) of new peers joining
        per scheduling period.  The paper uses 0.05.
    enabled:
        Convenience switch; a disabled model always produces empty plans.
    """

    leave_fraction: float = 0.05
    join_fraction: float = 0.05
    enabled: bool = True

    def __post_init__(self) -> None:
        if not (0.0 <= self.leave_fraction <= 1.0):
            raise ValueError(f"leave_fraction must be in [0, 1], got {self.leave_fraction}")
        if not (0.0 <= self.join_fraction <= 1.0):
            raise ValueError(f"join_fraction must be in [0, 1], got {self.join_fraction}")

    @staticmethod
    def disabled() -> "ChurnConfig":
        """A churn configuration that never changes the membership."""
        return ChurnConfig(leave_fraction=0.0, join_fraction=0.0, enabled=False)

    @staticmethod
    def paper_dynamic() -> "ChurnConfig":
        """The paper's dynamic-environment setting (5% leave + 5% join)."""
        return ChurnConfig(leave_fraction=0.05, join_fraction=0.05, enabled=True)


@dataclass(frozen=True)
class ChurnPlan:
    """The churn decisions for one scheduling period."""

    leavers: tuple[int, ...] = field(default_factory=tuple)
    joins: int = 0

    @property
    def empty(self) -> bool:
        """Whether the plan changes nothing."""
        return not self.leavers and self.joins == 0


class ChurnModel:
    """Draws per-period churn plans.

    Parameters
    ----------
    config:
        Churn intensity.
    rng:
        Random generator for leaver selection and join counts.
    """

    def __init__(self, config: ChurnConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self.total_leaves = 0
        self.total_joins = 0

    def plan_round(
        self,
        eligible_ids: Sequence[int],
        *,
        leave_fraction: Optional[float] = None,
        join_fraction: Optional[float] = None,
        leave_count: Optional[int] = None,
        join_count: Optional[int] = None,
    ) -> ChurnPlan:
        """Decide which of ``eligible_ids`` leave and how many peers join.

        The expected number of leavers (joiners) is ``leave_fraction``
        (``join_fraction``) times the eligible population; the realised
        count is ``floor(expectation + 0.5)`` -- round-half-up rather than
        Python's banker's rounding, so a 10-peer population at 5 % churn
        loses one peer per period instead of zero.

        ``leave_fraction`` / ``join_fraction`` override the configured
        intensities for this round only (the workload engine's churn
        bursts); passing overrides activates churn even when the configured
        model is disabled.  ``leave_count`` / ``join_count`` override with
        *exact* realised counts instead of fractions -- the channel-zapping
        universe scripts per-period arrival/departure counts this way.  A
        count wins over a fraction; leaver counts are clamped to the
        eligible population.
        """
        overridden = (
            leave_fraction is not None or join_fraction is not None
            or leave_count is not None or join_count is not None
        )
        if (not self.config.enabled and not overridden) or not eligible_ids:
            return ChurnPlan()
        leave = self.config.leave_fraction if leave_fraction is None else float(leave_fraction)
        join = self.config.join_fraction if join_fraction is None else float(join_fraction)
        population = len(eligible_ids)
        if leave_count is not None:
            n_leave = min(max(0, int(leave_count)), population)
        else:
            n_leave = min(round_half_up(leave * population), population)
        if join_count is not None:
            n_join = max(0, int(join_count))
        else:
            n_join = round_half_up(join * population)
        leavers: List[int] = []
        if n_leave > 0:
            picked = self._rng.choice(population, size=n_leave, replace=False)
            leavers = [int(eligible_ids[int(i)]) for i in np.atleast_1d(picked)]
        self.total_leaves += len(leavers)
        self.total_joins += n_join
        return ChurnPlan(leavers=tuple(sorted(leavers)), joins=n_join)
