"""The metrics half of the observability layer: counters, gauges, histograms.

A :class:`MetricsRegistry` is a process-local bag of named instruments.
Counters and gauges are plain Python numbers behind a ``__slots__`` object;
histograms ride on the mergeable :class:`~repro.metrics.sketch.QuantileSketch`
(exact below its capacity, deterministic compression above it) plus a
:class:`~repro.metrics.sketch.StreamAccumulator` for the moments, so a
telemetry document can report both percentiles and exact count/mean/extrema.

Hot paths never test "is telemetry on?" around every update: when telemetry
is disabled they hold the null instruments (:data:`NULL_COUNTER` and
friends) whose update methods are empty -- one attribute lookup and a no-op
call, nothing allocated, nothing recorded.  That is the "no-op-when-disabled
handle" contract the rest of the package builds on.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.sketch import QuantileSketch, StreamAccumulator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


class Counter:
    """A monotonically increasing count (requests issued, events processed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def add(self, amount: int) -> None:
        """Alias of :meth:`inc` for bulk updates aggregated in a hot loop."""
        self.value += amount


class Gauge:
    """A point-in-time value (live peers, pending shards)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A value distribution: sketch-backed percentiles plus exact moments."""

    __slots__ = ("name", "sketch", "accumulator")

    def __init__(self, name: str, *, sketch_capacity: Optional[int] = None) -> None:
        self.name = name
        self.sketch = (
            QuantileSketch() if sketch_capacity is None
            else QuantileSketch(capacity=sketch_capacity)
        )
        self.accumulator = StreamAccumulator()

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.sketch.add(float(value))
        self.accumulator.add(float(value))

    def summary(self) -> Dict[str, float]:
        """JSON-friendly digest (what the telemetry document embeds)."""
        acc = self.accumulator
        if acc.count == 0:
            return {"count": 0}
        return {
            "count": int(acc.count),
            "mean": acc.mean,
            "min": acc.minimum,
            "max": acc.maximum,
            "p50": self.sketch.percentile(50.0),
            "p90": self.sketch.percentile(90.0),
            "p99": self.sketch.percentile(99.0),
        }


class _NullCounter:
    """No-op counter handed out while telemetry is disabled."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def add(self, amount: int) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"count": 0}


#: Shared null instruments (stateless, so one of each suffices per process).
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first use and stable thereafter."""

    def __init__(self, *, histogram_sketch_capacity: Optional[int] = None) -> None:
        self._histogram_capacity = histogram_sketch_capacity
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(
                name, sketch_capacity=self._histogram_capacity
            )
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instrument values as sorted JSON-friendly mappings."""
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].summary()
                           for name in sorted(self.histograms)},
        }
