"""Span tracing: the phase profiler behind the Chrome/Perfetto export.

A :class:`Tracer` records two things per span:

* a **trace event** in Chrome trace-event form (``ph="X"`` complete events
  with microsecond ``ts``/``dur``, ``ph="i"`` instants), bounded by
  ``max_events`` so a runaway run degrades to dropped events, never to
  unbounded memory;
* **per-name duration statistics** (a :class:`~repro.metrics.sketch.
  StreamAccumulator` plus :class:`~repro.metrics.sketch.QuantileSketch`
  per span name), which always update even once the event buffer is full
  -- the phase profile in the telemetry document stays complete when the
  raw trace does not.

Timestamps come from ``time.perf_counter`` relative to the tracer's
creation, so a trace never embeds wall-clock time and loads at ``t=0`` in
Perfetto.  ``tid`` defaults to 0 (the parent process timeline); the worker
pool passes worker ids so per-shard spans land on per-worker tracks.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.sketch import QuantileSketch, StreamAccumulator

__all__ = ["Span", "Tracer", "NULL_SPAN"]

#: Default cap on buffered trace events (~200 bytes each when exported).
DEFAULT_MAX_EVENTS = 200_000


class Span:
    """One in-flight span; use as a context manager (``with tracer.span(...)``)."""

    __slots__ = ("_tracer", "name", "tid", "args", "_begin")

    def __init__(self, tracer: "Tracer", name: str, tid: int, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.tid = tid
        self.args = args
        self._begin = 0.0

    def __enter__(self) -> "Span":
        self._begin = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.complete(
            self.name, self._begin, time.perf_counter(), tid=self.tid, **self.args
        )
        return False


class _NullSpan:
    """Shared no-op span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded trace-event buffer plus per-span-name duration statistics."""

    def __init__(self, *, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = int(max_events)
        self.pid = os.getpid()
        self.origin = time.perf_counter()
        self._events: List[Dict[str, Any]] = []
        self.dropped = 0
        self._stats: Dict[str, Tuple[StreamAccumulator, QuantileSketch]] = {}

    # -- recording ------------------------------------------------------- #
    def span(self, name: str, *, tid: int = 0, **args: Any) -> Span:
        """A context manager timing one span named ``name``."""
        return Span(self, name, tid, args)

    def complete(
        self, name: str, begin: float, end: float, *, tid: int = 0, **args: Any
    ) -> None:
        """Record a finished span from raw ``perf_counter`` endpoints.

        Used by :class:`Span` on exit and directly by observers that time
        something they did not wrap (e.g. the worker pool reconstructing a
        shard's span from its assignment and completion messages).
        """
        duration = max(0.0, end - begin)
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = (StreamAccumulator(), QuantileSketch())
        stats[0].add(duration)
        stats[1].add(duration)
        self._push({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": round((begin - self.origin) * 1e6, 3),
            "dur": round(duration * 1e6, 3),
            "pid": self.pid,
            "tid": int(tid),
            "args": args,
        })

    def instant(self, name: str, *, tid: int = 0, **args: Any) -> None:
        """Record a point-in-time trace event (heartbeats, retries, respawns)."""
        self._push({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "i",
            "s": "p",
            "ts": round((time.perf_counter() - self.origin) * 1e6, 3),
            "pid": self.pid,
            "tid": int(tid),
            "args": args,
        })

    def _push(self, event: Dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    # -- reading --------------------------------------------------------- #
    def events(self) -> List[Dict[str, Any]]:
        """The buffered trace events (in recording order)."""
        return list(self._events)

    def span_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name duration digest in seconds, sorted by name."""
        digest: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._stats):
            accumulator, sketch = self._stats[name]
            digest[name] = {
                "count": int(accumulator.count),
                "total_s": accumulator.total,
                "mean_s": accumulator.mean,
                "max_s": accumulator.maximum,
                "p50_s": sketch.percentile(50.0),
                "p95_s": sketch.percentile(95.0),
            }
        return digest

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        """All buffered complete events with ``name`` (e.g. per-shard spans)."""
        return [e for e in self._events if e["name"] == name and e["ph"] == "X"]
