"""The process-local telemetry switchboard.

One module-level handle -- :func:`get_telemetry` -- is all the hot paths
ever touch.  It returns either the active :class:`Telemetry` (metrics
registry + tracer) or the shared :data:`NULL_TELEMETRY`, whose every method
is an allocation-free no-op.  Instrumented code therefore never branches on
a config flag:

    obs = get_telemetry()
    with obs.span("period.decide", t=now):
        ...
    if obs.enabled:                      # only for bulk counter updates
        obs.counter("fabric.requests").add(n)

Telemetry is **off by default** and deliberately process-local: worker
processes spawned by the dist layer inherit the default-off state, and the
parent reconstructs their per-shard spans from heartbeat/completion
messages instead -- no cross-process aggregation, no effect on the
bit-identity of anything a worker computes.

Enabling never touches simulation state, RNG streams, store fingerprints
or document payloads; the inertness tests pin that a telemetry-on run
produces byte-identical result documents.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.probes import NULL_PROBES, NullProbeSet, ProbeSet
from repro.obs.trace import DEFAULT_MAX_EVENTS, NULL_SPAN, Span, Tracer

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "telemetry_session",
]


class Telemetry:
    """A live metrics registry and tracer behind one facade.

    ``probes=True`` additionally attaches a live
    :class:`~repro.obs.probes.ProbeSet` (sim-time protocol probes);
    otherwise :attr:`probes` is the shared no-op :data:`NULL_PROBES`, so
    instrumented code can always reach ``get_telemetry().probes``.
    """

    enabled = True

    def __init__(self, *, max_trace_events: int = DEFAULT_MAX_EVENTS,
                 probes: bool = False) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(max_events=max_trace_events)
        self.probes: "ProbeSet | NullProbeSet" = (
            ProbeSet() if probes else NULL_PROBES
        )

    # -- metrics --------------------------------------------------------- #
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    # -- tracing --------------------------------------------------------- #
    def span(self, name: str, *, tid: int = 0, **args: Any) -> Span:
        return self.tracer.span(name, tid=tid, **args)

    def event(self, name: str, *, tid: int = 0, **args: Any) -> None:
        self.tracer.instant(name, tid=tid, **args)

    def complete_span(
        self, name: str, begin: float, end: float, *, tid: int = 0, **args: Any
    ) -> None:
        self.tracer.complete(name, begin, end, tid=tid, **args)

    # -- reading --------------------------------------------------------- #
    def snapshot(self) -> Dict[str, Any]:
        """Metrics plus span statistics (the telemetry document's core)."""
        snapshot = self.registry.snapshot()
        snapshot["spans"] = self.tracer.span_stats()
        return snapshot


class NullTelemetry:
    """The disabled handle: every method is a no-op, nothing is recorded."""

    enabled = False
    probes = NULL_PROBES

    def counter(self, name: str):
        return NULL_COUNTER

    def gauge(self, name: str):
        return NULL_GAUGE

    def histogram(self, name: str):
        return NULL_HISTOGRAM

    def span(self, name: str, *, tid: int = 0, **args: Any):
        return NULL_SPAN

    def event(self, name: str, *, tid: int = 0, **args: Any) -> None:
        return None

    def complete_span(
        self, name: str, begin: float, end: float, *, tid: int = 0, **args: Any
    ) -> None:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}


#: The shared disabled handle (telemetry's default state).
NULL_TELEMETRY = NullTelemetry()

_ACTIVE: "Telemetry | NullTelemetry" = NULL_TELEMETRY


def get_telemetry() -> "Telemetry | NullTelemetry":
    """The process's current telemetry handle (null when disabled)."""
    return _ACTIVE


def enable_telemetry(*, max_trace_events: int = DEFAULT_MAX_EVENTS,
                     probes: bool = False) -> Telemetry:
    """Install (and return) a fresh active :class:`Telemetry`.

    Always starts from empty instruments: two runs in one process do not
    bleed counts into each other unless the caller keeps one handle across
    both on purpose.
    """
    global _ACTIVE
    _ACTIVE = Telemetry(max_trace_events=max_trace_events, probes=probes)
    return _ACTIVE


def disable_telemetry() -> Optional[Telemetry]:
    """Return to the null handle; returns the telemetry that was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL_TELEMETRY
    return previous if isinstance(previous, Telemetry) else None


@contextmanager
def telemetry_session(
    *, max_trace_events: int = DEFAULT_MAX_EVENTS, probes: bool = False
) -> Iterator[Telemetry]:
    """Enable telemetry for a ``with`` block, restoring the prior handle after.

    The yielded :class:`Telemetry` stays readable after the block -- run,
    then export:

        with telemetry_session() as tel:
            session.run()
        write_chrome_trace(tel, "trace.json")

    ``probes=True`` also records the sim-time protocol probes
    (:mod:`repro.obs.probes`) -- read them back as ``tel.probes``.
    """
    global _ACTIVE
    previous = _ACTIVE
    telemetry = Telemetry(max_trace_events=max_trace_events, probes=probes)
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
