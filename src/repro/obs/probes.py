"""Sim-time protocol probes: segment lifecycle, swarm health, startup funnel.

Where :mod:`repro.obs.trace` answers "where does a period spend its
*wall-clock* time?", this module answers "what happened *inside the
protocol*?" -- in simulation time.  Three probes, all struct-of-arrays
ring buffers in the SMPyBandits preallocated-memory spirit (append-only
columns, bounded, dropped counter instead of unbounded growth):

* :class:`SegmentLifecycleProbe` -- one row per segment-lifecycle event
  (requested -> supplier-assigned -> scheduled -> delivered/dropped ->
  played/missed-deadline), with sim timestamps, peer/segment/supplier
  ids and a stage-specific value column;
* :class:`SwarmHealthProbe` -- one row per scheduling period: the
  buffer-fill distribution across peers (exact percentiles through a
  :class:`~repro.metrics.sketch.QuantileSketch`), pending-request depth,
  supplier utilisation and the period's request/failure/delivery tally;
* :class:`StartupFunnelProbe` -- set-once milestones per peer
  (joined -> first buffer map -> first new-stream segment -> playback),
  the funnel every "why is this switch slow?" question starts from.

The probes ride the telemetry switch: :class:`ProbeSet` hangs off
:class:`repro.obs.telemetry.Telemetry` when requested
(``telemetry_session(probes=True)``) and is otherwise the shared
:data:`NULL_PROBES`, whose every method is an allocation-free no-op.
Instrumented code guards bulk work behind ``probes.enabled`` exactly
like the metrics pattern, so the off cost is one attribute lookup.

Both engines emit through the same API and -- because every emission
site is either shared code or driven by bit-identical decision data --
a scalar and a vector run of the same config produce *identical* event
streams (pinned by the differential test).  The vector engine
accumulates its decide-phase rows in plain lists and batch-appends them
once per period via :meth:`SegmentLifecycleProbe.extend`, keeping the
array path array-native.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.sketch import DEFAULT_SKETCH_CAPACITY, QuantileSketch

__all__ = [
    "DEFAULT_MAX_LIFECYCLE_EVENTS",
    "DROP_REASONS",
    "FUNNEL_MILESTONES",
    "NULL_PROBES",
    "NullProbeSet",
    "ProbeSet",
    "SegmentLifecycleProbe",
    "StartupFunnelProbe",
    "SwarmHealthProbe",
    "STAGE_ASSIGNED",
    "STAGE_DELIVERED",
    "STAGE_DROPPED",
    "STAGE_MISSED",
    "STAGE_NAMES",
    "STAGE_PLAYED",
    "STAGE_REQUESTED",
    "STAGE_SCHEDULED",
]

#: Lifecycle ring-buffer capacity (events, not bytes); matches the
#: tracer's keep-first-N-then-count-drops policy.
DEFAULT_MAX_LIFECYCLE_EVENTS = 200_000

# -- lifecycle stage codes (the ``stage`` column) --------------------------- #
STAGE_REQUESTED = 0   #: peer put the segment on this period's request list
STAGE_ASSIGNED = 1    #: greedy assignment chose a supplier for it
STAGE_SCHEDULED = 2   #: request issued; value = expected receive time (s)
STAGE_DELIVERED = 3   #: segment arrived; value = transfer delay (s)
STAGE_DROPPED = 4     #: request failed; value = drop-reason code
STAGE_PLAYED = 5      #: playback advanced; value = segments played this period
STAGE_MISSED = 6      #: playback stalled on a missing segment (deadline miss)

#: ``stage`` code -> name, index-aligned with the codes above.
STAGE_NAMES: Tuple[str, ...] = (
    "requested", "assigned", "scheduled", "delivered", "dropped",
    "played", "missed_deadline",
)

#: ``value`` codes of :data:`STAGE_DROPPED` events.
DROP_REASONS: Tuple[str, ...] = ("supplier_gone", "no_budget", "net_loss")
DROP_SUPPLIER_GONE = 0
DROP_NO_BUDGET = 1
DROP_NET_LOSS = 2

#: Startup-funnel milestones, in funnel order.
FUNNEL_MILESTONES: Tuple[str, ...] = (
    "joined", "first_map", "first_segment", "playback",
)


class SegmentLifecycleProbe:
    """Bounded struct-of-arrays buffer of segment-lifecycle events.

    Columns (index-aligned): ``time`` (sim seconds), ``period`` (the
    scheduling round the event belongs to), ``peer``/``seg``/``supplier``
    (ids; supplier ``-1`` when not applicable) and ``value`` (stage
    specific, see the stage-code docs).  Keep-first-N: once ``capacity``
    events are held, further appends only increment :attr:`dropped`.
    """

    __slots__ = ("capacity", "times", "periods", "peers", "segs",
                 "stages", "suppliers", "values", "dropped")

    def __init__(self, capacity: int = DEFAULT_MAX_LIFECYCLE_EVENTS) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.times: List[float] = []
        self.periods: List[int] = []
        self.peers: List[int] = []
        self.segs: List[int] = []
        self.stages: List[int] = []
        self.suppliers: List[int] = []
        self.values: List[float] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, period: int, peer: int, seg: int,
               stage: int, supplier: int = -1, value: float = 0.0) -> None:
        """Record one event (or count it as dropped when full)."""
        if len(self.times) >= self.capacity:
            self.dropped += 1
            return
        self.times.append(float(time))
        self.periods.append(int(period))
        self.peers.append(int(peer))
        self.segs.append(int(seg))
        self.stages.append(int(stage))
        self.suppliers.append(int(supplier))
        self.values.append(float(value))

    def extend(self, rows: Iterable[Tuple[float, int, int, int, int, int, float]]) -> None:
        """Batch-append ``(time, period, peer, seg, stage, supplier, value)``
        rows -- the vector engine's once-per-period bulk path."""
        for row in rows:
            self.append(*row)

    def rows(self, *, peer: Optional[int] = None,
             seg: Optional[int] = None) -> List[Dict[str, Any]]:
        """Events as dicts (optionally filtered), in emission order."""
        out = []
        for i in range(len(self.times)):
            if peer is not None and self.peers[i] != peer:
                continue
            if seg is not None and self.segs[i] != seg:
                continue
            out.append({
                "time": self.times[i],
                "period": self.periods[i],
                "peer": self.peers[i],
                "seg": self.segs[i],
                "stage": STAGE_NAMES[self.stages[i]],
                "supplier": self.suppliers[i],
                "value": self.values[i],
            })
        return out

    def stage_counts(self) -> Dict[str, int]:
        """Recorded events per stage name (stages with zero events omitted)."""
        counts: Dict[str, int] = {}
        for code in self.stages:
            name = STAGE_NAMES[code]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def drop_reason_counts(self) -> Dict[str, int]:
        """DROPPED events per reason name."""
        counts: Dict[str, int] = {}
        for i, code in enumerate(self.stages):
            if code != STAGE_DROPPED:
                continue
            name = DROP_REASONS[int(self.values[i])]
            counts[name] = counts.get(name, 0) + 1
        return counts

    def snapshot(self) -> Dict[str, Any]:
        """The lifecycle summary embedded in the telemetry document."""
        return {
            "events": len(self.times),
            "dropped": self.dropped,
            "stages": self.stage_counts(),
            "drop_reasons": self.drop_reason_counts(),
        }


class SwarmHealthProbe:
    """One struct-of-arrays row per scheduling period.

    ``sample`` computes the buffer-fill percentiles through an exact
    (below-capacity) :class:`QuantileSketch`, merges the fills into a
    cumulative run-level sketch, and appends one row.  Bounded like the
    lifecycle buffer.
    """

    __slots__ = ("capacity", "sketch_capacity", "times", "labels", "peers",
                 "fill_p10", "fill_p50", "fill_p90", "fill_mean", "pending",
                 "utilisation", "requests", "failed", "delivered",
                 "fill_sketch", "dropped")

    def __init__(self, capacity: int = 100_000, *,
                 sketch_capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sketch_capacity = sketch_capacity
        self.times: List[float] = []
        self.labels: List[str] = []
        self.peers: List[int] = []
        self.fill_p10: List[float] = []
        self.fill_p50: List[float] = []
        self.fill_p90: List[float] = []
        self.fill_mean: List[float] = []
        self.pending: List[int] = []
        self.utilisation: List[float] = []
        self.requests: List[int] = []
        self.failed: List[int] = []
        self.delivered: List[int] = []
        self.fill_sketch = QuantileSketch(capacity=sketch_capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.times)

    def sample(self, time: float, label: str, buffer_fills: Sequence[int],
               *, pending: int, utilisation: float, requests: int,
               failed: int, delivered: int) -> None:
        """Record one period's swarm-health row."""
        if len(self.times) >= self.capacity:
            self.dropped += 1
            return
        sketch = QuantileSketch(capacity=self.sketch_capacity)
        sketch.extend(float(fill) for fill in buffer_fills)
        self.fill_sketch.merge(sketch)
        self.times.append(float(time))
        self.labels.append(str(label))
        self.peers.append(len(buffer_fills))
        if sketch.count:
            p10, p50, p90 = sketch.percentiles((10.0, 50.0, 90.0))
            mean = sketch.mean
        else:
            p10 = p50 = p90 = mean = 0.0
        self.fill_p10.append(p10)
        self.fill_p50.append(p50)
        self.fill_p90.append(p90)
        self.fill_mean.append(mean)
        self.pending.append(int(pending))
        self.utilisation.append(float(utilisation))
        self.requests.append(int(requests))
        self.failed.append(int(failed))
        self.delivered.append(int(delivered))

    def rows(self, *, label: Optional[str] = None) -> List[Dict[str, Any]]:
        """Health rows as dicts (optionally one session label only)."""
        out = []
        for i in range(len(self.times)):
            if label is not None and self.labels[i] != label:
                continue
            out.append({
                "time": self.times[i],
                "label": self.labels[i],
                "peers": self.peers[i],
                "fill_p10": self.fill_p10[i],
                "fill_p50": self.fill_p50[i],
                "fill_p90": self.fill_p90[i],
                "fill_mean": round(self.fill_mean[i], 4),
                "pending": self.pending[i],
                "utilisation": round(self.utilisation[i], 4),
                "requests": self.requests[i],
                "failed": self.failed[i],
                "delivered": self.delivered[i],
            })
        return out

    def snapshot(self) -> Dict[str, Any]:
        """The health series embedded in the telemetry document."""
        fill = {"count": self.fill_sketch.count}
        if self.fill_sketch.count:
            fill["mean"] = round(self.fill_sketch.mean, 4)
            for q in (10.0, 50.0, 90.0):
                fill[f"p{int(q)}"] = self.fill_sketch.percentile(q)
        return {
            "periods": len(self.times),
            "dropped": self.dropped,
            "buffer_fill": fill,
            "series": self.rows(),
        }


class StartupFunnelProbe:
    """Set-once per-peer milestones: joined -> first_map -> first_segment
    -> playback (all sim-time seconds)."""

    __slots__ = ("_marks",)

    def __init__(self) -> None:
        # (label, peer) -> {milestone: time}; insertion order = join order.
        self._marks: Dict[Tuple[str, int], Dict[str, float]] = {}

    def __len__(self) -> int:
        return len(self._marks)

    def mark(self, label: str, peer: int, milestone: str, time: float) -> None:
        """Record a milestone the first time it is reported (set-once)."""
        record = self._marks.setdefault((str(label), int(peer)), {})
        if milestone not in record:
            record[milestone] = float(time)

    def seen(self, label: str, peer: int, milestone: str) -> bool:
        """Whether the milestone is already recorded for the peer."""
        return milestone in self._marks.get((str(label), int(peer)), ())

    def peer_rows(self, *, label: Optional[str] = None) -> List[Dict[str, Any]]:
        """One row per peer with every recorded milestone time."""
        out = []
        for (row_label, peer), record in self._marks.items():
            if label is not None and row_label != label:
                continue
            row: Dict[str, Any] = {"label": row_label, "peer": peer}
            for milestone in FUNNEL_MILESTONES:
                row[milestone] = record.get(milestone)
            out.append(row)
        return out

    def funnel_rows(self) -> List[Dict[str, Any]]:
        """The aggregated funnel: per label, how many peers reached each
        milestone and the mean time-since-join to reach it."""
        by_label: Dict[str, List[Dict[str, float]]] = {}
        for (label, _peer), record in self._marks.items():
            by_label.setdefault(label, []).append(record)
        rows = []
        for label in sorted(by_label):
            records = by_label[label]
            row: Dict[str, Any] = {"label": label}
            for milestone in FUNNEL_MILESTONES:
                reached = [r for r in records if milestone in r]
                row[milestone] = len(reached)
                if milestone != "joined":
                    deltas = [r[milestone] - r["joined"] for r in reached
                              if "joined" in r]
                    row[f"{milestone}_mean_s"] = (
                        round(sum(deltas) / len(deltas), 4) if deltas else None
                    )
            rows.append(row)
        return rows

    def snapshot(self) -> Dict[str, Any]:
        return {"peers": len(self._marks), "rows": self.funnel_rows()}


class ProbeSet:
    """The live probe facade a :class:`~repro.obs.telemetry.Telemetry`
    carries when probes are requested."""

    enabled = True

    def __init__(self, *, max_lifecycle_events: int = DEFAULT_MAX_LIFECYCLE_EVENTS,
                 sketch_capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        self.lifecycle = SegmentLifecycleProbe(max_lifecycle_events)
        self.health = SwarmHealthProbe(sketch_capacity=sketch_capacity)
        self.funnel = StartupFunnelProbe()

    def snapshot(self) -> Dict[str, Any]:
        """The ``probes`` block of the telemetry document."""
        return {
            "enabled": True,
            "lifecycle": self.lifecycle.snapshot(),
            "health": self.health.snapshot(),
            "funnel": self.funnel.snapshot(),
        }


class _NullLifecycle:
    """No-op stand-ins so even unguarded probe calls cost nothing."""

    dropped = 0

    def __len__(self) -> int:
        return 0

    def append(self, *args: Any, **kwargs: Any) -> None:
        return None

    def extend(self, rows: Any) -> None:
        return None

    def rows(self, **kwargs: Any) -> List[Dict[str, Any]]:
        return []

    def stage_counts(self) -> Dict[str, int]:
        return {}

    def drop_reason_counts(self) -> Dict[str, int]:
        return {}

    def snapshot(self) -> Dict[str, Any]:
        return {"events": 0, "dropped": 0, "stages": {}, "drop_reasons": {}}


class _NullHealth:
    dropped = 0

    def __len__(self) -> int:
        return 0

    def sample(self, *args: Any, **kwargs: Any) -> None:
        return None

    def rows(self, **kwargs: Any) -> List[Dict[str, Any]]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {"periods": 0, "dropped": 0,
                "buffer_fill": {"count": 0}, "series": []}


class _NullFunnel:
    def __len__(self) -> int:
        return 0

    def mark(self, *args: Any, **kwargs: Any) -> None:
        return None

    def seen(self, *args: Any, **kwargs: Any) -> bool:
        return False

    def peer_rows(self, **kwargs: Any) -> List[Dict[str, Any]]:
        return []

    def funnel_rows(self) -> List[Dict[str, Any]]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {"peers": 0, "rows": []}


class NullProbeSet:
    """The disabled probe facade: every member is a no-op."""

    enabled = False
    lifecycle = _NullLifecycle()
    health = _NullHealth()
    funnel = _NullFunnel()

    def snapshot(self) -> Dict[str, Any]:
        return {"enabled": False}


#: The shared disabled probe set (probes' default state).
NULL_PROBES = NullProbeSet()
