"""Telemetry exporters: the JSON telemetry document and the Chrome trace.

Two consumers, two shapes:

* :func:`build_telemetry_document` -- the compact digest persisted beside
  run documents as a ``telemetry-*`` store document (counters, gauges,
  histogram summaries, the per-span-name phase profile, and one row per
  shard span) and rendered by the report's "Run telemetry" section;
* :func:`chrome_trace_payload` / :func:`write_chrome_trace` -- the full
  event buffer in Chrome trace-event JSON object form
  (``{"traceEvents": [...]}``), loadable directly in ``chrome://tracing``
  and https://ui.perfetto.dev.

This module deliberately imports nothing from the experiments layer; the
store-side helpers (``telemetry_fingerprint``/``persist_telemetry_document``)
live in :mod:`repro.experiments.store` next to the other fingerprints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.probes import NULL_PROBES
from repro.obs.telemetry import NullTelemetry, Telemetry

__all__ = [
    "build_telemetry_document",
    "chrome_trace_payload",
    "shard_span_rows",
    "write_chrome_trace",
]


def shard_span_rows(telemetry: "Telemetry | NullTelemetry") -> List[Dict[str, Any]]:
    """One row per recorded ``shard.execute`` span, in shard order."""
    if not telemetry.enabled:
        return []
    rows = []
    for event in telemetry.tracer.spans_named("shard.execute"):
        args = event.get("args", {})
        rows.append({
            "shard": args.get("shard"),
            "worker": event.get("tid"),
            "label": args.get("label", ""),
            "duration_s": round(float(event.get("dur", 0.0)) / 1e6, 6),
        })
    rows.sort(key=lambda row: (row["shard"] is None, row["shard"], row["worker"]))
    return rows


def build_telemetry_document(
    telemetry: "Telemetry | NullTelemetry",
    *,
    run: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The JSON digest a ``telemetry-*`` store document carries.

    ``run`` identifies what was measured (kind, name, seed, ...); it is
    echoed verbatim so the report can label the section, and it is the
    only input to the document's store key -- telemetry *content* never
    feeds a fingerprint.
    """
    snapshot = telemetry.snapshot()
    document: Dict[str, Any] = {
        "kind": "telemetry",
        "run": dict(run or {}),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "spans": snapshot["spans"],
        "shards": shard_span_rows(telemetry),
        "probes": getattr(telemetry, "probes", NULL_PROBES).snapshot(),
    }
    if telemetry.enabled:
        document["trace"] = {
            "events": len(telemetry.tracer.events()),
            "dropped": telemetry.tracer.dropped,
        }
    else:
        document["trace"] = {"events": 0, "dropped": 0}
    return document


def chrome_trace_payload(
    telemetry: "Telemetry | NullTelemetry",
    *,
    run: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The trace in Chrome trace-event JSON *object* form.

    The object form (rather than the bare array) carries
    ``displayTimeUnit`` and an ``otherData`` bag naming the run; both
    viewers accept it.
    """
    events = telemetry.tracer.events() if telemetry.enabled else []
    other: Dict[str, str] = {str(k): str(v) for k, v in sorted((run or {}).items())}
    if telemetry.enabled and telemetry.tracer.dropped:
        other["dropped_events"] = str(telemetry.tracer.dropped)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    telemetry: "Telemetry | NullTelemetry",
    path: "str | Path",
    *,
    run: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write the Chrome trace-event file; returns its path."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    payload = chrome_trace_payload(telemetry, run=run)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    return target
