"""Zero-overhead observability: metrics registry, span tracing, exporters.

The package is the answer to "where does a period spend its time?" without
ever taxing the answer's subject:

* :mod:`repro.obs.metrics` -- counters, gauges and sketch-backed
  histograms behind no-op-when-disabled handles;
* :mod:`repro.obs.trace` -- ``trace_span``-style spans feeding both a
  bounded Chrome trace-event buffer and a per-phase duration profile;
* :mod:`repro.obs.telemetry` -- the process-local on/off switchboard
  (:func:`get_telemetry` / :func:`telemetry_session`);
* :mod:`repro.obs.export` -- the ``telemetry-*`` store-document digest
  and the Perfetto-loadable Chrome trace file.

Telemetry is off by default and provably inert: store documents and
fingerprints are byte-identical with it on or off, and the disabled
handles cost one attribute lookup per call site.

Quick start::

    from repro.obs import telemetry_session, write_chrome_trace

    with telemetry_session() as tel:
        result = SwitchSession(config).run()
    print(tel.snapshot()["spans"])           # the phase profile
    write_chrome_trace(tel, "trace.json")    # open in ui.perfetto.dev
"""

from repro.obs.export import (
    build_telemetry_document,
    chrome_trace_payload,
    shard_span_rows,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.probes import (
    DROP_REASONS,
    FUNNEL_MILESTONES,
    NULL_PROBES,
    NullProbeSet,
    ProbeSet,
    SegmentLifecycleProbe,
    STAGE_NAMES,
    StartupFunnelProbe,
    SwarmHealthProbe,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    telemetry_session,
)
from repro.obs.trace import Span, Tracer


def trace_span(name: str, *, tid: int = 0, **args):
    """Time a block against the active telemetry (no-op when disabled).

    The module-level convenience for call sites without a handle::

        with trace_span("store.migrate", documents=n):
            ...
    """
    return get_telemetry().span(name, tid=tid, **args)


__all__ = [
    "Counter",
    "DROP_REASONS",
    "FUNNEL_MILESTONES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROBES",
    "NULL_TELEMETRY",
    "NullProbeSet",
    "NullTelemetry",
    "ProbeSet",
    "STAGE_NAMES",
    "SegmentLifecycleProbe",
    "Span",
    "StartupFunnelProbe",
    "SwarmHealthProbe",
    "Telemetry",
    "Tracer",
    "build_telemetry_document",
    "chrome_trace_payload",
    "disable_telemetry",
    "enable_telemetry",
    "get_telemetry",
    "shard_span_rows",
    "telemetry_session",
    "trace_span",
    "write_chrome_trace",
]
