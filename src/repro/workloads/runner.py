"""Execute workload specs: paired, store-backed and parallel over repetitions.

Execution model
---------------
One *repetition* of a workload runs every compiled switch segment twice --
once per switch algorithm, on identical random draws -- against a single
overlay built from the repetition's seed (every zap starts from the same
initial topology and re-draws sources, bandwidth and churn; each session
works on its own copy, so segments stay independent and paired).
Repetition ``k`` of base seed ``s`` uses seed ``s + k``, exactly like the
size-sweep machinery, so:

* repetitions are independent and deterministically seeded, which lets
  :class:`WorkloadRunner` fan them out over a process pool with results
  **bit-identical** to a serial run (same guarantee, same mechanism, as
  :class:`~repro.experiments.parallel.ParallelSweepRunner`);
* each repetition is one document in the persistent
  :class:`~repro.experiments.store.ResultStore`, keyed by a content hash
  of the full spec (dict round trip), the seed and the code version --
  re-running a named workload replays from disk without simulating.

What is stored/reported per repetition is a pair of
:class:`SwitchOutcome` sequences (one entry per switch segment and
algorithm): the paper's switch-time aggregates plus the workload QoE --
per-phase continuity/stalls and per-class switch-time percentiles.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.config import make_session_config
from repro.experiments.store import (
    SCHEMA_VERSION,
    ResultStore,
    code_version,
    persist_net_document,
    replay_or_execute,
    stable_hash,
)
from repro.churn.model import ChurnConfig
from repro.metrics.collectors import RoundSample
from repro.metrics.qoe import (
    ClassSwitchStats,
    PhaseQoE,
    continuity_index,
    per_class_switch_stats,
    phase_qoe,
)
from repro.metrics.report import mean_of, reduction_ratio
from repro.sim.rng import derive_seed
from repro.streaming.session import (
    SessionConfig,
    SessionResult,
    SwitchSession,
    build_session_overlay,
)
from repro.workloads.schedule import SegmentPlan, compile_workload
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "SwitchOutcome",
    "WorkloadRepResult",
    "WorkloadResult",
    "workload_fingerprint",
    "segment_config",
    "run_workload_rep",
    "WorkloadRunner",
    "run_workload",
]

#: Algorithms of one paired run, in execution order.
_PAIRED_ALGORITHMS = ("normal", "fast")


# --------------------------------------------------------------------------- #
# result records
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SwitchOutcome:
    """Summary of one switch segment under one algorithm.

    Times are seconds from the segment's switch instant; ``startup_delay``
    is the paper's playback-start time of the new source (switch time plus
    the finished-old-playback condition).
    """

    segment: int
    phase: str
    algorithm: str
    n_peers: int
    avg_finish_old: float
    avg_prepare_new: float
    avg_switch_time: float
    startup_delay: float
    unfinished: int
    overhead_ratio: float
    stall_periods: int
    continuity: float
    per_phase: Tuple[PhaseQoE, ...]
    per_class: Tuple[ClassSwitchStats, ...]


@dataclass(frozen=True)
class WorkloadRepResult:
    """Both algorithms' switch outcomes for one workload repetition."""

    workload: str
    seed: int
    n_nodes: int
    normal: Tuple[SwitchOutcome, ...]
    fast: Tuple[SwitchOutcome, ...]

    @property
    def n_switches(self) -> int:
        """Number of switch segments executed."""
        return len(self.fast)

    def reductions(self) -> List[float]:
        """Per-segment switch-time reduction of fast versus normal."""
        return [
            reduction_ratio(n.avg_switch_time, f.avg_switch_time)
            for n, f in zip(self.normal, self.fast)
        ]


@dataclass(frozen=True)
class WorkloadResult:
    """All repetitions of one workload, plus aggregation helpers."""

    spec: WorkloadSpec
    seed: int
    repetitions: int
    reps: Tuple[WorkloadRepResult, ...]
    replayed: int

    @property
    def simulated(self) -> int:
        """How many repetitions were freshly simulated (not replayed)."""
        return self.repetitions - self.replayed

    @property
    def mean_reduction(self) -> float:
        """Switch-time reduction averaged over every segment and repetition."""
        values = [r for rep in self.reps for r in rep.reductions()]
        return sum(values) / len(values) if values else 0.0

    # -- tables ---------------------------------------------------------- #
    def switch_rows(self) -> List[Dict[str, object]]:
        """One row per switch segment, averaged over repetitions."""
        rows: List[Dict[str, object]] = []
        for index in range(self.reps[0].n_switches if self.reps else 0):
            normals = [rep.normal[index] for rep in self.reps]
            fasts = [rep.fast[index] for rep in self.reps]
            rows.append(
                {
                    "switch": index + 1,
                    "phase": fasts[0].phase,
                    "normal_switch_time": mean_of([o.avg_switch_time for o in normals]),
                    "fast_switch_time": mean_of([o.avg_switch_time for o in fasts]),
                    "reduction": reduction_ratio(
                        mean_of([o.avg_switch_time for o in normals]),
                        mean_of([o.avg_switch_time for o in fasts]),
                    ),
                    "fast_startup_delay": mean_of([o.startup_delay for o in fasts]),
                    "fast_continuity": mean_of([o.continuity for o in fasts]),
                    "fast_stalls": mean_of([float(o.stall_periods) for o in fasts]),
                    "unfinished": mean_of([float(o.unfinished) for o in fasts]),
                }
            )
        return rows

    def class_rows(self) -> List[Dict[str, object]]:
        """One row per (switch, peer class), averaged over repetitions."""
        rows: List[Dict[str, object]] = []
        for index in range(self.reps[0].n_switches if self.reps else 0):
            # Union over repetitions: a rare class can draw zero peers in
            # some repetition without vanishing from the table.
            labels = sorted({
                stats.peer_class
                for rep in self.reps
                for stats in rep.fast[index].per_class
            })
            for label in labels:
                fast_stats = [_class_stats(rep.fast[index], label) for rep in self.reps]
                normal_stats = [_class_stats(rep.normal[index], label) for rep in self.reps]
                fast_stats = [s for s in fast_stats if s is not None]
                normal_stats = [s for s in normal_stats if s is not None]
                if not fast_stats or not normal_stats:
                    continue
                rows.append(
                    {
                        "switch": index + 1,
                        "class": label,
                        "peers": mean_of([float(s.peers) for s in fast_stats]),
                        "normal_p50": mean_of([s.p50 for s in normal_stats]),
                        "fast_p50": mean_of([s.p50 for s in fast_stats]),
                        "normal_p90": mean_of([s.p90 for s in normal_stats]),
                        "fast_p90": mean_of([s.p90 for s in fast_stats]),
                        "fast_p99": mean_of([s.p99 for s in fast_stats]),
                        "reduction": reduction_ratio(
                            mean_of([s.mean for s in normal_stats]),
                            mean_of([s.mean for s in fast_stats]),
                        ),
                    }
                )
        return rows

    def phase_rows(self) -> List[Dict[str, object]]:
        """One row per (switch, phase) with fast-algorithm QoE, averaged."""
        rows: List[Dict[str, object]] = []
        for index in range(self.reps[0].n_switches if self.reps else 0):
            phase_names = [q.phase for q in self.reps[0].fast[index].per_phase]
            for position, name in enumerate(phase_names):
                fast_q = [rep.fast[index].per_phase[position] for rep in self.reps]
                normal_q = [rep.normal[index].per_phase[position] for rep in self.reps]
                rows.append(
                    {
                        "switch": index + 1,
                        "phase": name,
                        "window": f"{fast_q[0].start:.0f}-{fast_q[0].end:.0f}s",
                        "normal_continuity": mean_of([q.continuity_index for q in normal_q]),
                        "fast_continuity": mean_of([q.continuity_index for q in fast_q]),
                        "fast_stalls": mean_of([float(q.stall_periods) for q in fast_q]),
                        "fast_switched": mean_of([q.fraction_switched for q in fast_q]),
                    }
                )
        return rows


def _class_stats(outcome: SwitchOutcome, label: str) -> Optional[ClassSwitchStats]:
    for stats in outcome.per_class:
        if stats.peer_class == label:
            return stats
    return None


# --------------------------------------------------------------------------- #
# fingerprints and serialisation
# --------------------------------------------------------------------------- #
def workload_fingerprint(
    spec: WorkloadSpec, seed: int, *, version: Optional[str] = None
) -> str:
    """Stable store key of one workload repetition.

    Covers the complete spec (dict round trip), the repetition seed, the
    schema and the code version -- any change to the script, the
    population, the simulator or the store layout rotates the key.
    """
    return "workload-" + stable_hash(
        {
            "kind": "workload",
            "schema": SCHEMA_VERSION,
            "code_version": version if version is not None else code_version(),
            "spec": spec.to_dict(),
            "seed": int(seed),
        }
    )


def switch_outcome_to_dict(outcome: SwitchOutcome) -> Dict[str, Any]:
    """JSON-friendly dictionary form of a :class:`SwitchOutcome`."""
    return asdict(outcome)


def switch_outcome_from_dict(payload: Mapping[str, Any]) -> SwitchOutcome:
    """Rebuild a :class:`SwitchOutcome` (exact float round trip)."""
    data = dict(payload)
    data["per_phase"] = tuple(PhaseQoE(**dict(q)) for q in data.get("per_phase", []))
    data["per_class"] = tuple(
        ClassSwitchStats(**dict(s)) for s in data.get("per_class", [])
    )
    return SwitchOutcome(**data)


def rep_to_dict(rep: WorkloadRepResult) -> Dict[str, Any]:
    """JSON-friendly dictionary form of a :class:`WorkloadRepResult`."""
    return {
        "workload": rep.workload,
        "seed": rep.seed,
        "n_nodes": rep.n_nodes,
        "normal": [switch_outcome_to_dict(o) for o in rep.normal],
        "fast": [switch_outcome_to_dict(o) for o in rep.fast],
    }


def rep_from_dict(payload: Mapping[str, Any]) -> WorkloadRepResult:
    """Rebuild a :class:`WorkloadRepResult` from :func:`rep_to_dict` output."""
    return WorkloadRepResult(
        workload=str(payload["workload"]),
        seed=int(payload["seed"]),
        n_nodes=int(payload["n_nodes"]),
        normal=tuple(switch_outcome_from_dict(o) for o in payload["normal"]),
        fast=tuple(switch_outcome_from_dict(o) for o in payload["fast"]),
    )


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def segment_config(
    spec: WorkloadSpec,
    segment: SegmentPlan,
    session_seed: int,
    *,
    algorithm: str = "fast",
    engine: Optional[str] = None,
) -> SessionConfig:
    """The session configuration of one switch segment of ``spec``.

    ``engine`` selects the simulation core (``"oracle"`` or ``"vector"``);
    ``None`` defers to a spec override or the session default.  The choice
    never enters fingerprints -- both engines are bit-identical.
    """
    base_churn = ChurnConfig(
        leave_fraction=spec.base_leave_fraction,
        join_fraction=spec.base_join_fraction,
        enabled=spec.base_leave_fraction > 0 or spec.base_join_fraction > 0,
    )
    overrides = spec.overrides_dict()
    overrides.setdefault("churn", base_churn)
    # Engine-controlled fields always win over spec overrides: the schedule
    # owns the timeline and the spec owns the population.
    overrides.update(
        tau=spec.tau,
        max_time=segment.duration,
        record_rounds=True,
        run_full_horizon=True,
        peer_classes=spec.peer_classes,
    )
    if engine is not None:
        overrides["engine"] = engine
    return make_session_config(
        spec.n_nodes,
        algorithm=algorithm,
        seed=int(session_seed),
        **overrides,
    )


def _segment_seed(rep_seed: int, segment_index: int) -> int:
    """Seed of one segment's sessions (both algorithms share it)."""
    if segment_index == 0:
        return int(rep_seed)
    return derive_seed(rep_seed, f"workload-segment-{segment_index}")


def _build_outcome(
    segment: SegmentPlan, algorithm: str, result: SessionResult
) -> SwitchOutcome:
    rounds: Sequence[RoundSample] = result.metrics.rounds
    measured = [sample for sample in rounds if sample.time > 0]
    peers = max((sample.tracked_peers for sample in measured), default=result.n_peers)
    # The phase windows partition the segment's periods, and phase_qoe owns
    # the subtle parts of stall accounting (warm-up baseline exclusion), so
    # the segment total is simply the sum over phases.
    per_phase = phase_qoe(rounds, segment.qoe_windows())
    stalls = sum(q.stall_periods for q in per_phase)
    return SwitchOutcome(
        segment=segment.index,
        phase=segment.switch_phase,
        algorithm=algorithm,
        n_peers=result.metrics.n_peers,
        avg_finish_old=result.metrics.avg_finish_old,
        avg_prepare_new=result.metrics.avg_prepare_new,
        avg_switch_time=result.metrics.avg_switch_time,
        startup_delay=result.metrics.avg_start_time,
        unfinished=result.metrics.unfinished,
        overhead_ratio=result.overhead_ratio,
        stall_periods=int(stalls),
        continuity=continuity_index(int(stalls), peers, len(measured)),
        per_phase=per_phase,
        per_class=per_class_switch_stats(
            result.metrics.outcomes, horizon=result.metrics.horizon
        ),
    )


def run_workload_rep(
    spec: WorkloadSpec, seed: int, *, engine: Optional[str] = None
) -> WorkloadRepResult:
    """Run one repetition of ``spec`` (every segment, both algorithms).

    The overlay is built once from ``seed`` and every session of the
    repetition starts from its own copy of it: each zap begins from the
    same initial topology while the channel -- sources, bandwidth draws,
    churn schedule -- is re-drawn per segment (churn from one segment does
    not carry into the next; that independence is what keeps segments
    replayable and paired).  Both algorithms of a segment run on the same
    session seed, so the comparison stays paired exactly as in the paper.
    """
    schedule = compile_workload(spec)
    first_config = segment_config(spec, schedule.segments[0], seed, engine=engine)
    overlay = build_session_overlay(
        spec.n_nodes,
        seed,
        min_degree=first_config.min_degree,
        trace_mean_degree=first_config.trace_mean_degree,
    )
    outcomes: Dict[str, List[SwitchOutcome]] = {alg: [] for alg in _PAIRED_ALGORITHMS}
    for segment in schedule.segments:
        session_seed = _segment_seed(seed, segment.index)
        config = segment_config(spec, segment, session_seed, engine=engine)
        for algorithm in _PAIRED_ALGORITHMS:
            session = SwitchSession(
                config.with_algorithm(algorithm),
                overlay=overlay,
                directives=segment.directive_map(),
            )
            outcomes[algorithm].append(
                _build_outcome(segment, algorithm, session.run())
            )
    return WorkloadRepResult(
        workload=spec.name,
        seed=int(seed),
        n_nodes=spec.n_nodes,
        normal=tuple(outcomes["normal"]),
        fast=tuple(outcomes["fast"]),
    )


def _execute_rep(
    payload: Tuple[Dict[str, Any], int, Optional[str]]
) -> WorkloadRepResult:
    """Worker entry point (module-level so it pickles)."""
    spec_dict, seed, engine = payload
    return run_workload_rep(WorkloadSpec.from_dict(spec_dict), seed, engine=engine)


class WorkloadRunner:
    """Executes workload repetitions, optionally in parallel and via a store.

    Parameters
    ----------
    workers:
        Maximum worker processes; ``1`` runs serially in-process.  Results
        are bit-identical for any value (independently seeded repetitions,
        deterministic aggregation order).
    store:
        Optional persistent result store; repetitions found there are
        replayed, missing ones are simulated and persisted.  A replay-only
        store raises :class:`~repro.experiments.store.MissingResultError`
        instead of simulating.
    engine:
        Simulation core used for fresh repetitions (``"oracle"`` or
        ``"vector"``; ``None`` defers to spec/session defaults).  Engines
        are bit-identical, so the choice does not rotate store keys and
        replays stay valid either way.
    """

    def __init__(
        self,
        workers: int = 1,
        store: Optional[ResultStore] = None,
        engine: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.store = store
        self.engine = engine

    def run(
        self,
        spec: WorkloadSpec,
        *,
        seed: int = 0,
        repetitions: int = 1,
    ) -> WorkloadResult:
        """Run (or replay) ``repetitions`` independent runs of ``spec``."""
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        rep_seeds = [seed + rep for rep in range(repetitions)]
        keys = [workload_fingerprint(spec, rep_seed) for rep_seed in rep_seeds]

        def _load(key: str) -> Optional[WorkloadRepResult]:
            document = self.store.load_workload(key)
            return None if document is None else rep_from_dict(document["rep"])

        # The topology is fixed per spec: persist its net-* document (and
        # hash it) at most once per run, on the first fresh repetition.
        net_key_memo: List[Optional[str]] = []

        def _save(key: str, index: int, rep: WorkloadRepResult) -> None:
            if not net_key_memo:
                net_key_memo.append(persist_net_document(
                    self.store, str(spec.overrides_dict().get("topology", ""))
                ))
            document = {
                "workload": spec.name,
                "seed": rep_seeds[index],
                "n_nodes": spec.n_nodes,
                "spec": spec.to_dict(),
                "rep": rep_to_dict(rep),
            }
            if net_key_memo[0] is not None:
                document["net_key"] = net_key_memo[0]
            self.store.save_workload(key, document)

        reps, replayed = replay_or_execute(
            self.store,
            keys,
            load=_load,
            execute=lambda pending: self._execute(
                spec, [rep_seeds[i] for i in pending]
            ),
            save=_save,
        )
        return WorkloadResult(
            spec=spec,
            seed=int(seed),
            repetitions=int(repetitions),
            reps=tuple(reps),
            replayed=replayed,
        )

    # ------------------------------------------------------------------ #
    def _execute(
        self, spec: WorkloadSpec, seeds: Sequence[int]
    ) -> Iterator[WorkloadRepResult]:
        if not seeds:
            return
        if self.workers == 1 or len(seeds) == 1:
            for rep_seed in seeds:
                yield run_workload_rep(spec, rep_seed, engine=self.engine)
            return
        payloads = [(spec.to_dict(), rep_seed, self.engine) for rep_seed in seeds]
        with ProcessPoolExecutor(max_workers=min(self.workers, len(seeds))) as pool:
            yield from pool.map(_execute_rep, payloads)


def run_workload(
    spec: WorkloadSpec,
    *,
    seed: int = 0,
    repetitions: int = 1,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    engine: Optional[str] = None,
) -> WorkloadResult:
    """Convenience wrapper: build a :class:`WorkloadRunner` and run ``spec``."""
    return WorkloadRunner(workers=workers, store=store, engine=engine).run(
        spec, seed=seed, repetitions=repetitions
    )
