"""The registry of named, ready-to-run workloads.

Six workloads ship with the engine, spanning the scenario space the paper
motivates but never evaluates (its evaluation is a single S1->S2 switch
under static or uniform 5 %/5 % membership):

``zapping``
    A channel-zapping viewer population: four source switches in a row
    over a heterogeneous ADSL/cable/fiber population with light ambient
    churn.  The headline multi-switch workload.
``flash-crowd``
    A premiere: one switch followed by a joining rush of 30 % per period,
    then a settling window.
``evening-peak``
    Two zaps with an evening congestion window in between -- upload
    budgets drop to 60 % while churn doubles.
``correlated-failure``
    A switch followed by a correlated neighbourhood outage (15 % of peers
    fail together) plus elevated departures, then a recovery join wave.
``bandwidth-degradation``
    One switch whose aftermath runs through stepwise congestion (100 % ->
    70 % -> 45 % -> 100 % upload capacity), stressing playback continuity.
``paper-baseline``
    The paper's dynamic experiment as a workload: one switch, uniform
    5 %/5 % churn, homogeneous bandwidth.  The regression anchor linking
    the engine back to the reproduced figures.

All sizes are laptop/CI friendly; use
:meth:`~repro.workloads.spec.WorkloadSpec.scaled_to` (or the CLI's
``--n-nodes``) for larger populations.

The library also registers the named **multi-channel universes**
(:data:`UNIVERSES`): whole-lineup zapping simulations built on
:mod:`repro.channels`, headlined by ``lineup-zipf`` -- a 20-channel Zipf
lineup with 1000 surfing/loyal viewers -- and ``lineup-global``, the same
idea spread over the ``transcontinental`` network topology
(:mod:`repro.net.library`) with lossy last miles and locality-biased
overlays.  Any universe can be moved onto a topology with
``repro universe run NAME --topology transcontinental``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.channels.universe import UniverseSpec
from repro.workloads.spec import PeerClass, Phase, WorkloadSpec

__all__ = [
    "IPTV_CLASSES",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "UNIVERSES",
    "get_universe",
    "universe_names",
]


#: A standard heterogeneous access-class mix (rates in segments/second,
#: play rate is 10).  ADSL sits barely above the stream rate, cable is
#: comfortable, fiber is far from being the bottleneck.
IPTV_CLASSES = (
    PeerClass(
        name="adsl", fraction=0.4,
        inbound_low=10.0, inbound_high=16.0, inbound_mean=12.0,
        outbound_low=10.0, outbound_high=16.0, outbound_mean=12.0,
    ),
    PeerClass(
        name="cable", fraction=0.4,
        inbound_low=12.0, inbound_high=24.0, inbound_mean=16.0,
        outbound_low=12.0, outbound_high=24.0, outbound_mean=16.0,
    ),
    PeerClass(
        name="fiber", fraction=0.2,
        inbound_low=20.0, inbound_high=33.0, inbound_mean=26.0,
        outbound_low=20.0, outbound_high=33.0, outbound_mean=26.0,
    ),
)


WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="zapping",
            description=(
                "Channel-zapping viewers: four source switches in a row over "
                "an ADSL/cable/fiber population with light ambient churn."
            ),
            n_nodes=120,
            peer_classes=IPTV_CLASSES,
            base_leave_fraction=0.01,
            base_join_fraction=0.01,
            phases=(
                Phase("zap-1", 35.0, switch=True),
                Phase("zap-2", 35.0, switch=True),
                Phase("zap-3", 35.0, switch=True),
                Phase("zap-4", 35.0, switch=True),
            ),
        ),
        WorkloadSpec(
            name="flash-crowd",
            description=(
                "A premiere: one switch, then a joining rush of 30% of the "
                "population per period, then a settling window."
            ),
            n_nodes=150,
            peer_classes=IPTV_CLASSES,
            phases=(
                Phase("premiere", 30.0, switch=True),
                Phase("rush", 10.0, join_fraction=0.3),
                Phase("settle", 20.0),
            ),
        ),
        WorkloadSpec(
            name="evening-peak",
            description=(
                "Two zaps separated by an evening congestion window: upload "
                "budgets drop to 60% while churn doubles."
            ),
            n_nodes=150,
            peer_classes=IPTV_CLASSES,
            base_leave_fraction=0.02,
            base_join_fraction=0.02,
            phases=(
                Phase("news", 30.0, switch=True),
                Phase(
                    "peak-congestion", 20.0,
                    bandwidth_scale=0.6, leave_fraction=0.04, join_fraction=0.04,
                ),
                Phase("movie", 35.0, switch=True, bandwidth_scale=0.8),
            ),
        ),
        WorkloadSpec(
            name="correlated-failure",
            description=(
                "A switch followed by a correlated neighbourhood outage (15% "
                "of peers fail together) and a recovery join wave."
            ),
            n_nodes=150,
            phases=(
                Phase("handover", 30.0, switch=True),
                Phase("outage", 15.0, fail_fraction=0.15, leave_fraction=0.05),
                Phase("recovery", 20.0, join_fraction=0.1),
            ),
        ),
        WorkloadSpec(
            name="bandwidth-degradation",
            description=(
                "One switch riding through stepwise congestion: 100% -> 70% "
                "-> 45% -> 100% upload capacity."
            ),
            n_nodes=120,
            peer_classes=IPTV_CLASSES,
            phases=(
                Phase("kickoff", 25.0, switch=True),
                Phase("squeeze", 20.0, bandwidth_scale=0.7),
                Phase("crunch", 20.0, bandwidth_scale=0.45),
                Phase("relief", 15.0),
            ),
        ),
        WorkloadSpec(
            name="paper-baseline",
            description=(
                "The paper's dynamic experiment as a workload: one switch "
                "under uniform 5%/5% churn, homogeneous bandwidth."
            ),
            n_nodes=200,
            base_leave_fraction=0.05,
            base_join_fraction=0.05,
            phases=(Phase("s1-to-s2", 60.0, switch=True),),
        ),
    )
}


def workload_names() -> List[str]:
    """Registered workload names, sorted."""
    return sorted(WORKLOADS)


def get_workload(name: str) -> WorkloadSpec:
    """The named workload spec (``KeyError`` with a hint otherwise)."""
    try:
        return WORKLOADS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; available: {workload_names()}"
        ) from exc


#: Named multi-channel universes (see :mod:`repro.channels`).  The headline
#: entry is ``lineup-zipf``: the paper's switch measured across a whole
#: 20-channel Zipf lineup with a thousand surfing/loyal viewers.
UNIVERSES: Dict[str, UniverseSpec] = {
    spec.name: spec
    for spec in (
        UniverseSpec(
            name="lineup-zipf",
            description=(
                "A 20-channel Zipf lineup shared by 1000 viewers; 30% "
                "surfers hop channels at 15%/period while loyal viewers "
                "stay put, and every channel runs the paired fast-vs-"
                "normal switch."
            ),
            n_channels=20,
            n_viewers=1000,
            zipf_exponent=1.0,
            surfer_fraction=0.3,
            surfer_zap_rate=0.15,
            loyal_zap_rate=0.01,
            duration=50.0,
        ),
        UniverseSpec(
            name="prime-time",
            description=(
                "A steeper lineup (exponent 1.4) under heavy surfing: half "
                "the viewers zap at 25%/period -- the stress case for "
                "directory-backed membership repair."
            ),
            n_channels=12,
            n_viewers=600,
            zipf_exponent=1.4,
            surfer_fraction=0.5,
            surfer_zap_rate=0.25,
            loyal_zap_rate=0.02,
            duration=45.0,
        ),
        UniverseSpec(
            name="lineup-global",
            description=(
                "A transcontinental lineup: 8 channels, 400 viewers spread "
                "over NA-East/NA-West/Europe/Asia with lossy last miles and "
                "locality-biased overlays -- the geography stress case."
            ),
            n_channels=8,
            n_viewers=400,
            zipf_exponent=1.1,
            surfer_fraction=0.3,
            surfer_zap_rate=0.12,
            loyal_zap_rate=0.01,
            duration=45.0,
            topology="transcontinental",
        ),
        UniverseSpec(
            name="lineup-mini",
            description=(
                "A CI/laptop-sized universe: 6 channels, 90 viewers, "
                "moderate surfing.  The smoke-test entry."
            ),
            n_channels=6,
            n_viewers=90,
            zipf_exponent=1.0,
            min_audience=8,
            surfer_fraction=0.3,
            surfer_zap_rate=0.1,
            loyal_zap_rate=0.01,
            duration=25.0,
        ),
    )
}


def universe_names() -> List[str]:
    """Registered universe names, sorted."""
    return sorted(UNIVERSES)


def get_universe(name: str) -> UniverseSpec:
    """The named universe spec (``KeyError`` with a hint otherwise)."""
    try:
        return UNIVERSES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown universe {name!r}; available: {universe_names()}"
        ) from exc
