"""Compile a workload spec into deterministic per-period directives.

A :class:`~repro.workloads.spec.WorkloadSpec` is a list of phases; the
simulator executes *switch segments* -- one
:class:`~repro.streaming.session.SwitchSession` per switch phase, covering
that phase plus every following non-switch phase.  :func:`compile_workload`
performs that grouping and turns each phase's environment knobs into a map
``period index -> PeriodDirective`` that the session consumes verbatim
(see ``SwitchSession(..., directives=...)``).

Compilation is pure arithmetic: the same spec always compiles to the same
schedule, which (together with the deterministically seeded sessions) is
what makes whole workloads replayable and bit-identical under parallel
execution.

Examples
--------
>>> from repro.workloads.spec import Phase, WorkloadSpec
>>> spec = WorkloadSpec(
...     name="demo", description="", n_nodes=60,
...     phases=(Phase("zap", 10.0, switch=True),
...             Phase("burst", 5.0, leave_fraction=0.2)))
>>> schedule = compile_workload(spec)
>>> len(schedule.segments)
1
>>> schedule.segments[0].n_periods
15
>>> sorted(schedule.segments[0].directive_map())
[11, 12, 13, 14, 15]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.clock import round_half_up
from repro.streaming.session import PeriodDirective
from repro.workloads.spec import Phase, WorkloadSpec

__all__ = ["PhaseWindow", "SegmentPlan", "WorkloadSchedule", "compile_workload"]


@dataclass(frozen=True)
class PhaseWindow:
    """Where one phase sits inside its segment's timeline.

    Periods are 1-based; period ``k`` covers ``((k-1)*tau, k*tau]`` and the
    window spans ``first_period .. last_period`` inclusive.  ``start`` and
    ``end`` are the corresponding times in seconds from the segment's
    switch instant.
    """

    name: str
    first_period: int
    last_period: int
    start: float
    end: float


@dataclass(frozen=True)
class SegmentPlan:
    """One switch segment: a switch phase plus its trailing environment phases."""

    index: int
    switch_phase: str
    n_periods: int
    duration: float
    windows: Tuple[PhaseWindow, ...]
    directives: Tuple[Tuple[int, PeriodDirective], ...]

    def directive_map(self) -> Dict[int, PeriodDirective]:
        """The directives as the mapping :class:`SwitchSession` expects."""
        return dict(self.directives)

    def qoe_windows(self) -> List[Tuple[str, float, float]]:
        """``(phase, start, end)`` triples for :func:`repro.metrics.qoe.phase_qoe`."""
        return [(w.name, w.start, w.end) for w in self.windows]


@dataclass(frozen=True)
class WorkloadSchedule:
    """The compiled form of a workload: an ordered tuple of switch segments."""

    workload: str
    tau: float
    segments: Tuple[SegmentPlan, ...]

    @property
    def n_switches(self) -> int:
        """One switch per segment."""
        return len(self.segments)

    @property
    def total_periods(self) -> int:
        """Scheduling periods across all segments."""
        return sum(segment.n_periods for segment in self.segments)


def _phase_periods(phase: Phase, tau: float) -> int:
    """Whole scheduling periods a phase covers (at least one)."""
    return max(1, round_half_up(phase.duration / tau))


def _phase_directive(phase: Phase, *, first_period_of_phase: bool) -> PeriodDirective:
    return PeriodDirective(
        leave_fraction=phase.leave_fraction,
        join_fraction=phase.join_fraction,
        bandwidth_scale=phase.bandwidth_scale,
        fail_fraction=phase.fail_fraction if first_period_of_phase else 0.0,
        phase=phase.name,
    )


def compile_workload(spec: WorkloadSpec) -> WorkloadSchedule:
    """Compile ``spec`` into its deterministic :class:`WorkloadSchedule`.

    Grouping: every ``switch=True`` phase opens a new segment; the
    following non-switch phases ride in the same session (their churn
    bursts and congestion windows hit the mesh while it is still absorbing
    the switch).  Directives are emitted only for periods whose environment
    differs from the base (override fractions, a non-unit bandwidth scale,
    or a correlated failure in the phase's first period), keeping the maps
    small.
    """
    segments: List[SegmentPlan] = []
    groups: List[List[Phase]] = []
    for phase in spec.phases:
        if phase.switch:
            groups.append([phase])
        else:
            # spec validation guarantees the first phase switches
            groups[-1].append(phase)

    for index, group in enumerate(groups):
        windows: List[PhaseWindow] = []
        directives: List[Tuple[int, PeriodDirective]] = []
        period = 0
        for phase in group:
            n_periods = _phase_periods(phase, spec.tau)
            first = period + 1
            last = period + n_periods
            windows.append(
                PhaseWindow(
                    name=phase.name,
                    first_period=first,
                    last_period=last,
                    start=(first - 1) * spec.tau,
                    end=last * spec.tau,
                )
            )
            if not phase.is_default_environment:
                for p in range(first, last + 1):
                    directive = _phase_directive(
                        phase, first_period_of_phase=(p == first)
                    )
                    if directive.is_neutral:
                        # e.g. a fail-only phase: periods after the first
                        # carry no environment change.
                        continue
                    directives.append((p, directive))
            period = last
        segments.append(
            SegmentPlan(
                index=index,
                switch_phase=group[0].name,
                n_periods=period,
                duration=period * spec.tau,
                windows=tuple(windows),
                directives=tuple(directives),
            )
        )
    return WorkloadSchedule(workload=spec.name, tau=spec.tau, segments=tuple(segments))
