"""Declarative workload specifications.

A :class:`WorkloadSpec` scripts a whole viewing session as an ordered list
of :class:`Phase` objects.  Each phase lasts a fixed duration and can

* trigger a **source switch** at its start (``switch=True``) -- repeated
  switch phases model channel zapping, far beyond the paper's single
  S1->S2 event;
* override the **churn intensity** for its duration (flash-crowd join
  bursts, mass departures);
* inject a one-shot **correlated failure** (a random peer and its overlay
  vicinity fail together);
* shift the **bandwidth regime** (a scale factor on upload budgets,
  modelling evening-peak congestion).

The population itself can be heterogeneous: ``peer_classes`` declares
bandwidth classes (ADSL/cable/fiber ...) that peers are drawn from, and the
workload reports carry per-class switch-time percentiles.

Specs are frozen, hashable and round-trip exactly through ``to_dict`` /
``from_dict`` -- that round trip is what the persistent result store
fingerprints, so a changed spec can never replay a stale result.

Examples
--------
>>> spec = WorkloadSpec(
...     name="mini-zap",
...     description="two quick zaps",
...     n_nodes=60,
...     phases=(Phase("zap-1", 20.0, switch=True),
...             Phase("zap-2", 20.0, switch=True)),
... )
>>> spec.n_switches
2
>>> WorkloadSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.streaming.bandwidth import PeerClass

__all__ = ["Phase", "PeerClass", "WorkloadSpec"]


@dataclass(frozen=True)
class Phase:
    """One scripted time window of a workload.

    Attributes
    ----------
    name:
        Phase label (appears in per-phase QoE reports).
    duration:
        Length of the phase in seconds (rounded to whole scheduling
        periods when compiled).
    switch:
        Whether a source switch fires at the start of this phase.  The
        first phase of every workload must switch (it is what starts the
        measurement timeline).
    leave_fraction / join_fraction:
        Churn intensities during this phase, overriding the workload's
        base intensities; ``None`` keeps the base.
    bandwidth_scale:
        Outbound-budget multiplier during this phase (1.0 = nominal).
    fail_fraction:
        Fraction of peers removed by a correlated failure in the phase's
        first period (0 = none).
    """

    name: str
    duration: float
    switch: bool = False
    leave_fraction: Optional[float] = None
    join_fraction: Optional[float] = None
    bandwidth_scale: float = 1.0
    fail_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase needs a non-empty name")
        if self.duration <= 0:
            raise ValueError(f"phase duration must be positive, got {self.duration}")
        for attr in ("leave_fraction", "join_fraction"):
            value = getattr(self, attr)
            if value is not None and not (0.0 <= value <= 1.0):
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.bandwidth_scale <= 0:
            raise ValueError(
                f"bandwidth_scale must be positive, got {self.bandwidth_scale}"
            )
        if not (0.0 <= self.fail_fraction <= 1.0):
            raise ValueError(f"fail_fraction must be in [0, 1], got {self.fail_fraction}")

    @property
    def is_default_environment(self) -> bool:
        """Whether this phase changes nothing beyond the base environment."""
        return (
            self.leave_fraction is None
            and self.join_fraction is None
            and self.bandwidth_scale == 1.0
            and self.fail_fraction == 0.0
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete, self-contained description of one scripted workload.

    Attributes
    ----------
    name / description:
        Identification (the library registers specs by name).
    n_nodes:
        Overlay size, including the sources of each switch.
    phases:
        The script; at least one phase, the first with ``switch=True``.
    peer_classes:
        Optional heterogeneous bandwidth classes; empty keeps the paper's
        homogeneous skewed distribution.
    tau:
        Scheduling period in seconds (phase durations are multiples of it
        after compilation).
    base_leave_fraction / base_join_fraction:
        Churn intensities that apply wherever a phase does not override
        them (0/0 = static membership, the paper's default).
    session_overrides:
        Extra :class:`~repro.streaming.session.SessionConfig` fields for
        every switch segment, as a sorted tuple of ``(field, value)`` pairs
        so the spec stays hashable (use :meth:`with_overrides` to build).
    """

    name: str
    description: str
    n_nodes: int
    phases: Tuple[Phase, ...]
    peer_classes: Tuple[PeerClass, ...] = ()
    tau: float = 1.0
    base_leave_fraction: float = 0.0
    base_join_fraction: float = 0.0
    session_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload needs a non-empty name")
        if not isinstance(self.phases, tuple):
            object.__setattr__(self, "phases", tuple(self.phases))
        if not isinstance(self.peer_classes, tuple):
            object.__setattr__(self, "peer_classes", tuple(self.peer_classes))
        # Normalise the overrides to a sorted tuple of pairs whatever the
        # caller passed (dict, list of pairs, unsorted tuple).
        object.__setattr__(
            self,
            "session_overrides",
            tuple(sorted((str(k), v) for k, v in dict(self.session_overrides).items())),
        )
        if not self.phases:
            raise ValueError("workload needs at least one phase")
        if not self.phases[0].switch:
            raise ValueError("the first phase of a workload must trigger a switch")
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"phase names must be unique, got {names}")
        if self.tau <= 0:
            raise ValueError(f"tau must be positive, got {self.tau}")
        for attr in ("base_leave_fraction", "base_join_fraction"):
            value = getattr(self, attr)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{attr} must be in [0, 1], got {value}")

    # ------------------------------------------------------------------ #
    @property
    def n_switches(self) -> int:
        """How many source switches the workload scripts."""
        return sum(1 for phase in self.phases if phase.switch)

    @property
    def total_duration(self) -> float:
        """Scripted wall-clock length of the workload in seconds."""
        return float(sum(phase.duration for phase in self.phases))

    def overrides_dict(self) -> Dict[str, Any]:
        """The session-config overrides as a plain dictionary."""
        return dict(self.session_overrides)

    def with_overrides(self, **overrides: Any) -> "WorkloadSpec":
        """A copy of this spec with extra session-config overrides merged in."""
        merged = self.overrides_dict()
        merged.update(overrides)
        return replace(
            self,
            session_overrides=tuple(sorted(merged.items())),
        )

    def scaled_to(self, n_nodes: int) -> "WorkloadSpec":
        """A copy of this spec at a different overlay size."""
        return replace(self, n_nodes=int(n_nodes))

    # ------------------------------------------------------------------ #
    # dict round trip (store fingerprinting)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dictionary form; see :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "n_nodes": self.n_nodes,
            "phases": [asdict(phase) for phase in self.phases],
            "peer_classes": [asdict(cls) for cls in self.peer_classes],
            "tau": self.tau,
            "base_leave_fraction": self.base_leave_fraction,
            "base_join_fraction": self.base_join_fraction,
            "session_overrides": {k: v for k, v in self.session_overrides},
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output (exact round trip)."""
        return WorkloadSpec(
            name=str(payload["name"]),
            description=str(payload["description"]),
            n_nodes=int(payload["n_nodes"]),
            phases=tuple(Phase(**dict(phase)) for phase in payload["phases"]),
            peer_classes=tuple(
                PeerClass(**dict(cls)) for cls in payload.get("peer_classes", [])
            ),
            tau=float(payload.get("tau", 1.0)),
            base_leave_fraction=float(payload.get("base_leave_fraction", 0.0)),
            base_join_fraction=float(payload.get("base_join_fraction", 0.0)),
            session_overrides=tuple(
                sorted(dict(payload.get("session_overrides", {})).items())
            ),
        )
