"""Time-scripted workload engine.

The paper evaluates one event: a single S1->S2 source switch under static
or uniform 5 %/5 % churn.  This subpackage generalises the evaluation into
declarative, replayable **workloads** -- scripts of phases that zap between
sources repeatedly, fire churn bursts and correlated failures, shift
bandwidth regimes and draw peers from heterogeneous access classes.

Modules
-------
:mod:`repro.workloads.spec`
    Frozen :class:`WorkloadSpec`/:class:`Phase`/:class:`PeerClass`
    dataclasses with an exact dict round trip (what the store
    fingerprints).
:mod:`repro.workloads.schedule`
    Compiles a spec into deterministic per-period
    :class:`~repro.streaming.session.PeriodDirective` maps, one switch
    segment per ``switch=True`` phase.
:mod:`repro.workloads.runner`
    Paired (fast vs normal) execution of compiled workloads: store-backed,
    parallel over repetitions, bit-identical to serial.
:mod:`repro.workloads.library`
    The registry of named workloads (``zapping``, ``flash-crowd``,
    ``evening-peak``, ``correlated-failure``, ``bandwidth-degradation``,
    ``paper-baseline``) and of named multi-channel universes
    (``lineup-zipf``, ``prime-time``, ``lineup-mini``; see
    :mod:`repro.channels`).

Quickstart
----------
>>> from repro.workloads import get_workload, run_workload
>>> result = run_workload(get_workload("zapping"))      # doctest: +SKIP
>>> result.mean_reduction > 0                           # doctest: +SKIP
True
"""

from repro.workloads.library import (
    IPTV_CLASSES,
    UNIVERSES,
    WORKLOADS,
    get_universe,
    get_workload,
    universe_names,
    workload_names,
)
from repro.workloads.runner import (
    SwitchOutcome,
    WorkloadRepResult,
    WorkloadResult,
    WorkloadRunner,
    run_workload,
    run_workload_rep,
    workload_fingerprint,
)
from repro.workloads.schedule import (
    PhaseWindow,
    SegmentPlan,
    WorkloadSchedule,
    compile_workload,
)
from repro.workloads.spec import PeerClass, Phase, WorkloadSpec

__all__ = [
    "WorkloadSpec",
    "Phase",
    "PeerClass",
    "compile_workload",
    "WorkloadSchedule",
    "SegmentPlan",
    "PhaseWindow",
    "WorkloadRunner",
    "WorkloadResult",
    "WorkloadRepResult",
    "SwitchOutcome",
    "run_workload",
    "run_workload_rep",
    "workload_fingerprint",
    "WORKLOADS",
    "IPTV_CLASSES",
    "get_workload",
    "workload_names",
    "UNIVERSES",
    "get_universe",
    "universe_names",
]
