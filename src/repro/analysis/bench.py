"""Benchmark-trajectory analysis over ``BENCH_<sha>.json`` summaries.

Every commit's benchmark run leaves a ``BENCH_<git-sha>.json`` summary at
the repository root (written by ``benchmarks/run_benchmarks.py``; format
documented in ``docs/architecture.md``).  This module turns that pile of
per-commit snapshots into a *trajectory*: one row per (commit, benchmark)
with the fractional mean-time change against the previous commit that ran
the same benchmark -- what ``repro bench trend`` prints.

Summaries are ordered by the ``created`` timestamp embedded in each file
(ties broken by filename), never by file mtime, matching the discovery
rule of ``run_benchmarks.py --check`` so the trend and the regression
gate always agree on what "previous" means.  Summaries *without* a
``created`` timestamp are skipped entirely -- under the old string sort
they collapsed to ``""`` (oldest), so one malformed file silently became
the ``--check`` comparison baseline; the gate applies the same skip.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["load_bench_summaries", "bench_trend_rows"]


def load_bench_summaries(bench_dir: "str | Path") -> List[Dict[str, Any]]:
    """All parsable ``BENCH_*.json`` summaries, oldest first.

    Ordered by each summary's embedded ``created`` timestamp (ties broken
    by filename).  Unreadable files, JSON without a ``benchmarks`` list
    and summaries without a ``created`` timestamp are skipped -- the
    directory may hold unrelated files, and a summary that cannot be
    placed on the timeline must never become anyone's baseline.
    """
    candidates: List[Any] = []
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                summary = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(summary, dict) or not isinstance(summary.get("benchmarks"), list):
            continue
        created = str(summary.get("created", "") or "")
        if not created:
            continue
        summary = dict(summary)
        summary["file"] = path.name
        candidates.append((created, path.name, summary))
    candidates.sort(key=lambda item: (item[0], item[1]))
    return [summary for _, _, summary in candidates]


def bench_trend_rows(summaries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One trajectory row per (summary, benchmark), oldest summary first.

    ``change`` is the signed fractional mean-time change against the most
    recent *earlier* summary that ran the same benchmark and recorded a
    finite, positive mean (``None`` for a benchmark's first appearance,
    or when either mean is unusable) -- so a benchmark added mid-history
    baselines at its introduction, commits that skipped a benchmark do
    not break its chain, and a summary with a missing/zero ``mean_s``
    (a failed run coerced to ``0.0``) never becomes the baseline that
    suppresses the next real run's change.
    """
    previous_mean: Dict[str, float] = {}
    rows: List[Dict[str, Any]] = []
    for summary in summaries:
        sha = str(summary.get("git_sha", "?"))
        created = str(summary.get("created", ""))
        for bench in summary["benchmarks"]:
            name = str(bench.get("name", "?"))
            try:
                mean = float(bench.get("mean_s", 0.0))
            except (TypeError, ValueError):
                mean = 0.0
            usable = math.isfinite(mean) and mean > 0.0
            before: Optional[float] = previous_mean.get(name)
            change: Optional[float] = None
            if usable and before is not None:
                change = (mean - before) / before
            rows.append(
                {
                    "git_sha": sha,
                    "created": created,
                    "benchmark": name,
                    "mean_s": mean,
                    "change": change,
                }
            )
            if usable:
                previous_mean[name] = mean
    return rows
