"""Result analysis utilities.

Small, dependency-light helpers used by the experiment harness, the CLI and
the examples:

* :mod:`repro.analysis.stats` -- summary statistics for repeated runs
  (mean, standard deviation, confidence intervals) and paired comparison of
  two algorithms across seeds (mean reduction with a sign test), so sweep
  results can be reported with error bars instead of single draws;
* :mod:`repro.analysis.charts` -- plain-text (ASCII) line and bar charts
  used to render the paper's figures in a terminal without matplotlib.
"""

from repro.analysis.charts import ascii_bar_chart, ascii_line_chart, sparkline
from repro.analysis.stats import (
    PairedComparison,
    SummaryStats,
    paired_comparison,
    summarize,
)

__all__ = [
    "SummaryStats",
    "summarize",
    "PairedComparison",
    "paired_comparison",
    "ascii_line_chart",
    "ascii_bar_chart",
    "sparkline",
]
