"""Summary statistics and paired comparisons over repeated runs.

The paper reports point estimates from its 30 traces; a careful
reproduction should quantify run-to-run variability, because at small
overlay sizes a single seed can swing the measured reduction ratio by
several percentage points.  These helpers are used by the scaling example
and by EXPERIMENTS.md's methodology notes.

Only ``numpy`` is required; the normal-approximation confidence interval is
adequate for the handful of repetitions typically run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SummaryStats", "summarize", "PairedComparison", "paired_comparison"]

#: two-sided z-scores for the confidence levels supported without SciPy
_Z_SCORES = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and confidence half-width of a sample of run results."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_half_width: float
    confidence: float

    @property
    def ci_low(self) -> float:
        """Lower end of the confidence interval."""
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        """Upper end of the confidence interval."""
        return self.mean + self.ci_half_width

    def format(self, unit: str = "") -> str:
        """Human-readable ``mean ± half-width`` rendering."""
        suffix = f" {unit}" if unit else ""
        return f"{self.mean:.3f} ± {self.ci_half_width:.3f}{suffix} (n={self.n})"


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> SummaryStats:
    """Summarise a sample of per-run measurements.

    Parameters
    ----------
    values:
        One measurement per independent run (e.g. the switch time of each
        repetition).  Must be non-empty.
    confidence:
        Two-sided confidence level; one of 0.80, 0.90, 0.95, 0.99.
    """
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    if confidence not in _Z_SCORES:
        raise ValueError(f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}")
    data = np.asarray(list(values), dtype=float)
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    half_width = _Z_SCORES[confidence] * std / math.sqrt(data.size) if data.size > 1 else 0.0
    return SummaryStats(
        n=int(data.size),
        mean=float(data.mean()),
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci_half_width=half_width,
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired comparison of a baseline and a treatment across seeds.

    Attributes
    ----------
    baseline / treatment:
        Summary statistics of the two samples.
    mean_reduction:
        Mean of the per-pair relative reductions
        ``(baseline_i - treatment_i) / baseline_i``.
    wins / losses / ties:
        Sign counts of the per-pair differences (a "win" means the treatment
        was strictly smaller, i.e. better for a time metric).
    """

    baseline: SummaryStats
    treatment: SummaryStats
    mean_reduction: float
    wins: int
    losses: int
    ties: int

    @property
    def n(self) -> int:
        """Number of pairs."""
        return self.wins + self.losses + self.ties

    @property
    def win_rate(self) -> float:
        """Fraction of pairs the treatment won (ties count as half)."""
        if self.n == 0:
            return 0.0
        return (self.wins + 0.5 * self.ties) / self.n


def paired_comparison(
    baseline_values: Sequence[float],
    treatment_values: Sequence[float],
    *,
    confidence: float = 0.95,
) -> PairedComparison:
    """Compare paired per-seed results of two algorithms.

    ``baseline_values[i]`` and ``treatment_values[i]`` must come from the
    same seed (the paired design of :func:`repro.experiments.runner.run_pair`).
    """
    if len(baseline_values) != len(treatment_values):
        raise ValueError(
            f"paired samples must have equal length, got "
            f"{len(baseline_values)} and {len(treatment_values)}"
        )
    if len(baseline_values) == 0:
        raise ValueError("cannot compare empty samples")
    base = np.asarray(list(baseline_values), dtype=float)
    treat = np.asarray(list(treatment_values), dtype=float)
    reductions = np.where(base > 0, (base - treat) / np.where(base > 0, base, 1.0), 0.0)
    diffs = base - treat
    wins = int(np.sum(diffs > 0))
    losses = int(np.sum(diffs < 0))
    ties = int(np.sum(diffs == 0))
    return PairedComparison(
        baseline=summarize(base, confidence=confidence),
        treatment=summarize(treat, confidence=confidence),
        mean_reduction=float(reductions.mean()),
        wins=wins,
        losses=losses,
        ties=ties,
    )
