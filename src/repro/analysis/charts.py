"""Plain-text and SVG charts without a plotting dependency.

The benchmark harness and the CLI print the figures' data as tables; these
helpers additionally render them as ASCII charts so the *shape* of a figure
(the Figure 5 crossover, the Figure 7 trend) is visible at a glance without
matplotlib, which is not a dependency of this package.  The SVG variants
serve the same purpose for the HTML report (``repro report``): pure-string
generation, deterministic output (fixed-precision coordinates, stable
iteration order), no external library.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

__all__ = [
    "sparkline",
    "ascii_line_chart",
    "ascii_bar_chart",
    "svg_line_chart",
    "svg_bar_chart",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of ``values`` (empty string for no data)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def ascii_line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 15,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Render one or more ``(x, y)`` series on a shared ASCII grid.

    Each series gets a distinct marker character; overlapping points show
    the marker of the last series drawn.  Intended for the monotone ratio
    curves of Figures 5/9, so no axis ticks beyond the extremes are drawn.
    """
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")
    all_points = [(x, y) for values in series.values() for x, y in values]
    if not all_points:
        return "(no data)"
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    lo = min(ys) if y_min is None else y_min
    hi = max(ys) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} {name}")
        for x, y in values:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - lo) / (hi - lo) * (height - 1))
            row = height - 1 - max(0, min(height - 1, row))
            grid[row][max(0, min(width - 1, col))] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:8.3f} ┐")
    for row in grid:
        lines.append("         │" + "".join(row))
    lines.append(f"{lo:8.3f} └" + "─" * width)
    lines.append(f"          x: {x_lo:g} … {x_hi:g}")
    lines.extend(f"          {entry}" for entry in legend)
    return "\n".join(lines)


def ascii_bar_chart(
    rows: Sequence[Tuple[str, float]],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars (used for Figure 6-style data)."""
    if not rows:
        return "(no data)"
    max_value = max(value for _, value in rows)
    if max_value <= 0:
        max_value = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        bar = "█" * int(round(max(0.0, value) / max_value * width))
        lines.append(f"{label.ljust(label_width)} │{bar} {value:g}{unit}")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# SVG variants (for the HTML report)
# --------------------------------------------------------------------------- #
#: Line colours cycled by series index -- a small colour-blind-safe palette.
_SVG_PALETTE = ("#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9")

_SVG_MARGIN = 45.0


def _svg_coord(value: float) -> str:
    """Fixed-precision coordinate: identical strings on every platform."""
    return f"{value:.2f}"


def svg_line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 520,
    height: int = 260,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render ``(x, y)`` series as a self-contained SVG string.

    Deterministic by construction: coordinates are formatted at fixed
    precision and series draw in mapping order, so the same data always
    yields byte-identical markup (what the report's determinism test
    relies on).
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="40"><text x="4" y="24" font-size="13">(no data)</text></svg>'
        )
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    plot_w = width - 2 * _SVG_MARGIN
    plot_h = height - 2 * _SVG_MARGIN

    def px(x: float) -> str:
        return _svg_coord(_SVG_MARGIN + (x - x_lo) / (x_hi - x_lo) * plot_w)

    def py(y: float) -> str:
        return _svg_coord(height - _SVG_MARGIN - (y - y_lo) / (y_hi - y_lo) * plot_h)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif">',
        f'<rect x="{_svg_coord(_SVG_MARGIN)}" y="{_svg_coord(_SVG_MARGIN)}" '
        f'width="{_svg_coord(plot_w)}" height="{_svg_coord(plot_h)}" '
        f'fill="none" stroke="#999"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_svg_coord(width / 2)}" y="20" text-anchor="middle" '
            f'font-size="14">{escape(title)}</text>'
        )
    # Extremal axis labels only -- enough to read scale without tick logic.
    parts.append(
        f'<text x="{_svg_coord(_SVG_MARGIN)}" y="{_svg_coord(height - 28.0)}" '
        f'font-size="11">{x_lo:g}</text>'
    )
    parts.append(
        f'<text x="{_svg_coord(width - _SVG_MARGIN)}" '
        f'y="{_svg_coord(height - 28.0)}" text-anchor="end" '
        f'font-size="11">{x_hi:g}</text>'
    )
    parts.append(
        f'<text x="{_svg_coord(_SVG_MARGIN - 5.0)}" '
        f'y="{_svg_coord(height - _SVG_MARGIN)}" text-anchor="end" '
        f'font-size="11">{y_lo:g}</text>'
    )
    parts.append(
        f'<text x="{_svg_coord(_SVG_MARGIN - 5.0)}" '
        f'y="{_svg_coord(_SVG_MARGIN + 4.0)}" text-anchor="end" '
        f'font-size="11">{y_hi:g}</text>'
    )
    if x_label:
        parts.append(
            f'<text x="{_svg_coord(width / 2)}" y="{_svg_coord(height - 8.0)}" '
            f'text-anchor="middle" font-size="12">{escape(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{_svg_coord(height / 2)}" text-anchor="middle" '
            f'font-size="12" transform="rotate(-90 14 {_svg_coord(height / 2)})">'
            f"{escape(y_label)}</text>"
        )
    legend_y = _SVG_MARGIN + 14.0
    for index, (name, values) in enumerate(series.items()):
        if not values:
            continue
        colour = _SVG_PALETTE[index % len(_SVG_PALETTE)]
        coords = " ".join(f"{px(x)},{py(y)}" for x, y in values)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="1.5"/>'
        )
        for x, y in values:
            parts.append(f'<circle cx="{px(x)}" cy="{py(y)}" r="2.5" fill="{colour}"/>')
        parts.append(
            f'<text x="{_svg_coord(_SVG_MARGIN + 8.0)}" '
            f'y="{_svg_coord(legend_y)}" font-size="11" '
            f'fill="{colour}">{escape(str(name))}</text>'
        )
        legend_y += 14.0
    parts.append("</svg>")
    return "".join(parts)


def svg_bar_chart(
    rows: Sequence[Tuple[str, float]],
    *,
    width: int = 520,
    bar_height: int = 18,
    title: str = "",
) -> str:
    """Render labelled values as horizontal SVG bars (deterministic string)."""
    if not rows:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="40"><text x="4" y="24" font-size="13">(no data)</text></svg>'
        )
    max_value = max(value for _, value in rows)
    if max_value <= 0:
        max_value = 1.0
    label_w = 150.0
    top = 30.0 if title else 8.0
    height = top + len(rows) * (bar_height + 6) + 8
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{_svg_coord(height)}" font-family="sans-serif">'
    ]
    if title:
        parts.append(
            f'<text x="{_svg_coord(width / 2)}" y="20" text-anchor="middle" '
            f'font-size="14">{escape(title)}</text>'
        )
    for index, (label, value) in enumerate(rows):
        y = top + index * (bar_height + 6)
        bar_w = max(0.0, value) / max_value * (width - label_w - 70.0)
        colour = _SVG_PALETTE[index % len(_SVG_PALETTE)]
        parts.append(
            f'<text x="{_svg_coord(label_w - 6.0)}" '
            f'y="{_svg_coord(y + bar_height * 0.72)}" text-anchor="end" '
            f'font-size="11">{escape(str(label))}</text>'
        )
        parts.append(
            f'<rect x="{_svg_coord(label_w)}" y="{_svg_coord(y)}" '
            f'width="{_svg_coord(bar_w)}" height="{bar_height}" fill="{colour}"/>'
        )
        parts.append(
            f'<text x="{_svg_coord(label_w + bar_w + 5.0)}" '
            f'y="{_svg_coord(y + bar_height * 0.72)}" '
            f'font-size="11">{value:g}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
