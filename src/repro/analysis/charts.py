"""Plain-text charts for terminals.

The benchmark harness and the CLI print the figures' data as tables; these
helpers additionally render them as ASCII charts so the *shape* of a figure
(the Figure 5 crossover, the Figure 7 trend) is visible at a glance without
matplotlib, which is not a dependency of this package.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

__all__ = ["sparkline", "ascii_line_chart", "ascii_bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of ``values`` (empty string for no data)."""
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def ascii_line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 15,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Render one or more ``(x, y)`` series on a shared ASCII grid.

    Each series gets a distinct marker character; overlapping points show
    the marker of the last series drawn.  Intended for the monotone ratio
    curves of Figures 5/9, so no axis ticks beyond the extremes are drawn.
    """
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")
    all_points = [(x, y) for values in series.values() for x, y in values]
    if not all_points:
        return "(no data)"
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    lo = min(ys) if y_min is None else y_min
    hi = max(ys) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} {name}")
        for x, y in values:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - lo) / (hi - lo) * (height - 1))
            row = height - 1 - max(0, min(height - 1, row))
            grid[row][max(0, min(width - 1, col))] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:8.3f} ┐")
    for row in grid:
        lines.append("         │" + "".join(row))
    lines.append(f"{lo:8.3f} └" + "─" * width)
    lines.append(f"          x: {x_lo:g} … {x_hi:g}")
    lines.extend(f"          {entry}" for entry in legend)
    return "\n".join(lines)


def ascii_bar_chart(
    rows: Sequence[Tuple[str, float]],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars (used for Figure 6-style data)."""
    if not rows:
        return "(no data)"
    max_value = max(value for _, value in rows)
    if max_value <= 0:
        max_value = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        bar = "█" * int(round(max(0.0, value) / max_value * width))
        lines.append(f"{label.ljust(label_width)} │{bar} {value:g}{unit}")
    return "\n".join(lines)
