"""Registry entries for the nine classic paper figures.

Each entry wraps the corresponding generator in
:mod:`repro.experiments.figures` unchanged -- same defaults, same store
semantics -- and declares the exact keyword surface the generator
accepts, so :func:`repro.figures.registry.render_figure` can feed every
figure from one uniform kwargs set.
"""

from __future__ import annotations

from repro.experiments import figures as _fig
from repro.figures.registry import FigureSpec, register_figure

__all__ = ["register_paper_figures"]

#: Parameter surfaces shared by the generator families.
_TRACK_PARAMS = ("n_nodes", "seed", "paper_scale", "max_time", "store")
_SWEEP_PARAMS = ("sizes", "seed", "repetitions", "paper_scale", "store", "workers")


def register_paper_figures() -> None:
    """Register figures 2 and 5-12 (called once on package import)."""
    register_figure(FigureSpec(
        name="fig2-ordering",
        title="Request ordering example (Figure 2)",
        kind="static",
        builder=_fig.figure2,
        figure_id="2",
        description="The illustrative normal-vs-fast request-ordering "
                    "walkthrough; pure arithmetic, no simulation.",
        params=(),
    ))
    register_figure(FigureSpec(
        name="fig5-ratio-static",
        title="Prepared-segment ratio over time, static network (Figure 5)",
        kind="track",
        builder=_fig.figure5,
        figure_id="5",
        description="Ratio track of one switching peer in a static mesh.",
        params=_TRACK_PARAMS,
    ))
    register_figure(FigureSpec(
        name="fig6-times-static",
        title="Finishing/preparing times vs size, static (Figure 6)",
        kind="sweep",
        builder=_fig.figure6,
        figure_id="6",
        description="Average finishing and preparing times across network "
                    "sizes in static meshes.",
        params=_SWEEP_PARAMS,
    ))
    register_figure(FigureSpec(
        name="fig7-switch-static",
        title="Switch time vs size, static (Figure 7)",
        kind="sweep",
        builder=_fig.figure7,
        figure_id="7",
        description="Mean source-switch latency across network sizes in "
                    "static meshes.",
        params=_SWEEP_PARAMS,
    ))
    register_figure(FigureSpec(
        name="fig8-overhead-static",
        title="Control overhead vs size, static (Figure 8)",
        kind="sweep",
        builder=_fig.figure8,
        figure_id="8",
        description="Control-message overhead across network sizes in "
                    "static meshes.",
        params=_SWEEP_PARAMS,
    ))
    register_figure(FigureSpec(
        name="fig9-ratio-dynamic",
        title="Prepared-segment ratio over time, dynamic network (Figure 9)",
        kind="track",
        builder=_fig.figure9,
        figure_id="9",
        description="Ratio track of one switching peer in a churning mesh.",
        params=_TRACK_PARAMS,
    ))
    register_figure(FigureSpec(
        name="fig10-times-dynamic",
        title="Finishing/preparing times vs size, dynamic (Figure 10)",
        kind="sweep",
        builder=_fig.figure10,
        figure_id="10",
        description="Average finishing and preparing times across network "
                    "sizes under churn.",
        params=_SWEEP_PARAMS,
    ))
    register_figure(FigureSpec(
        name="fig11-switch-dynamic",
        title="Switch time vs size, dynamic (Figure 11)",
        kind="sweep",
        builder=_fig.figure11,
        figure_id="11",
        description="Mean source-switch latency across network sizes under "
                    "churn.",
        params=_SWEEP_PARAMS,
    ))
    register_figure(FigureSpec(
        name="fig12-overhead-dynamic",
        title="Control overhead vs size, dynamic (Figure 12)",
        kind="sweep",
        builder=_fig.figure12,
        figure_id="12",
        description="Control-message overhead across network sizes under "
                    "churn.",
        params=_SWEEP_PARAMS,
    ))
