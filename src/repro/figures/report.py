"""Render a whole results store into a self-contained HTML report.

``repro report`` walks the complete figure registry
(:func:`repro.figures.registry.figure_names`), renders every figure it
can from the given store, and writes:

* ``<out>/report.html`` -- one self-contained page (inline CSS, inline
  SVG charts, no external assets): a figure index, the benchmark
  trajectory table (when a bench directory is given), one section per
  rendered figure with its chart and data table, and a store inventory;
* ``<out>/data/<name>.json`` -- each rendered figure's data as
  sorted-key JSON, the machine-readable companion the CI smoke job (and
  the determinism tests) diff.

Figures that cannot render -- universe figures over a store with no
universe documents, simulation figures against a replay-only store
missing their keys -- are *skipped* and listed with their reason, never
fatal.  Rendering from a warm store replays everything from disk, so the
same store always produces byte-identical output (no timestamps are
embedded anywhere).
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.bench import bench_trend_rows, load_bench_summaries
from repro.analysis.charts import svg_bar_chart, svg_line_chart
from repro.experiments.figures import FigureResult
from repro.experiments.store import BaseResultStore, MissingResultError
from repro.figures.registry import (
    FigureUnavailable,
    figure_names,
    get_figure,
    render_figure,
)

__all__ = ["ReportSummary", "render_report"]


@dataclass
class ReportSummary:
    """What :func:`render_report` produced (what ``repro report`` prints)."""

    out_dir: Path
    html_path: Path
    rendered: List[str] = field(default_factory=list)
    skipped: Dict[str, str] = field(default_factory=dict)
    data_files: List[Path] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for ``repro report --json``."""
        return {
            "out_dir": str(self.out_dir),
            "html": str(self.html_path),
            "rendered": list(self.rendered),
            "skipped": dict(self.skipped),
            "data_files": [str(path) for path in self.data_files],
        }


def render_report(
    store: BaseResultStore,
    out_dir: "str | Path",
    *,
    title: str = "Reproduction report",
    bench_dir: Optional["str | Path"] = None,
    seed: int = 0,
    sizes: Optional[Sequence[int]] = None,
    n_nodes: Optional[int] = None,
    repetitions: int = 1,
    workers: int = 1,
    universe: Optional[str] = None,
) -> ReportSummary:
    """Render every registered figure from ``store`` into ``out_dir``.

    One uniform parameter set feeds the whole registry;
    :func:`~repro.figures.registry.render_figure` routes each figure the
    subset it declares.  ``sizes``/``n_nodes`` left as ``None`` means the
    figure generators' own defaults (CI passes the miniature scales).
    """
    out = Path(out_dir)
    data_dir = out / "data"
    data_dir.mkdir(parents=True, exist_ok=True)

    kwargs: Dict[str, Any] = {
        "store": store,
        "seed": seed,
        "sizes": None if sizes is None else [int(s) for s in sizes],
        "n_nodes": n_nodes,
        "repetitions": repetitions,
        "workers": workers,
        "universe": universe,
    }
    summary = ReportSummary(out_dir=out, html_path=out / "report.html")
    figures: List[Tuple[str, FigureResult]] = []
    for name in figure_names():
        try:
            figures.append((name, render_figure(name, **kwargs)))
        except (FigureUnavailable, MissingResultError) as exc:
            summary.skipped[name] = str(exc)
            continue
        summary.rendered.append(name)

    for name, figure in figures:
        data_path = data_dir / f"{name}.json"
        payload = {
            "name": name,
            "figure_id": figure.figure_id,
            "title": figure.title,
            "rows": figure.rows,
            "series": {key: list(map(list, val)) for key, val in figure.series.items()},
            "notes": figure.notes,
            "meta": figure.meta,
        }
        with data_path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        summary.data_files.append(data_path)

    bench_rows = (
        bench_trend_rows(load_bench_summaries(bench_dir))
        if bench_dir is not None
        else []
    )
    document = _render_html(
        title=title,
        figures=figures,
        skipped=summary.skipped,
        bench_rows=bench_rows,
        store=store,
    )
    with summary.html_path.open("w", encoding="utf-8") as handle:
        handle.write(document)
    return summary


# --------------------------------------------------------------------------- #
# HTML assembly
# --------------------------------------------------------------------------- #
_CSS = """
body { font-family: sans-serif; margin: 2em auto; max-width: 64em;
       color: #222; line-height: 1.45; }
h1 { border-bottom: 2px solid #0072b2; padding-bottom: 0.2em; }
h2 { margin-top: 2em; border-bottom: 1px solid #ccc; padding-bottom: 0.15em; }
table { border-collapse: collapse; margin: 0.8em 0; font-size: 0.9em; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: right; }
th { background: #eef3f7; }
td:first-child, th:first-child { text-align: left; }
.meta { color: #666; font-size: 0.85em; }
.skipped { color: #884400; }
.figure-block { margin-bottom: 2.5em; }
"""


def _format_cell(value: Any) -> str:
    """One table cell: floats at a readable fixed precision, rest verbatim."""
    if isinstance(value, bool) or value is None:
        return html.escape(str(value))
    if isinstance(value, float):
        return f"{value:.4g}"
    return html.escape(str(value))


def _html_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Rows of dicts to an HTML table (columns in first-seen order)."""
    if not rows:
        return "<p class=\"meta\">(no rows)</p>"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    parts = ["<table>", "<tr>"]
    parts.extend(f"<th>{html.escape(str(col))}</th>" for col in columns)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(f"<td>{_format_cell(row.get(col, ''))}</td>" for col in columns)
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _figure_chart(figure: FigureResult) -> str:
    """The figure's inline SVG: line chart for curves, bars for single points."""
    series = {name: list(values) for name, values in figure.series.items() if values}
    if not series:
        return ""
    if max(len(values) for values in series.values()) > 1:
        return svg_line_chart(series, title=figure.title)
    bars = [(name, float(values[0][1])) for name, values in series.items()]
    return svg_bar_chart(bars, title=figure.title)


def _telemetry_section(store: BaseResultStore) -> List[str]:
    """The "Run telemetry" section: one block per ``telemetry-*`` document.

    Each block shows the run's period-phase timing profile (span
    durations, bar chart + table), its per-shard execution spans when the
    run went through the sharded runtime, and the counter snapshot.
    Stores without telemetry documents render nothing -- the section only
    appears for instrumented runs (``--telemetry``).
    """
    entries = store.entries(kind="telemetry")
    if not entries:
        return []
    parts = ["<h2>Run telemetry</h2>"]
    for entry in entries:
        document = store.load_telemetry(entry.key)
        if document is None:
            continue
        run = document.get("run", {})
        label = ", ".join(
            f"{key}={run[key]}" for key in sorted(run) if key != "kind"
        ) or entry.key
        parts.append('<div class="figure-block">')
        parts.append(f"<h3>{html.escape(str(run.get('kind', 'run')))}: "
                     f"{html.escape(label)}</h3>")
        spans = document.get("spans", {})
        if spans:
            bars = [
                (name, float(stat.get("total_s", 0.0)))
                for name, stat in sorted(spans.items())
            ]
            parts.append(svg_bar_chart(bars, title="Span time (total seconds)"))
            parts.append(_html_table([
                {
                    "span": name,
                    "count": stat.get("count", 0),
                    "total_s": stat.get("total_s", 0.0),
                    "mean_s": stat.get("mean_s", 0.0),
                    "p95_s": stat.get("p95_s", 0.0),
                }
                for name, stat in sorted(spans.items())
            ]))
        shards = document.get("shards", [])
        if shards:
            parts.append("<h4>Per-shard execution</h4>")
            bars = [
                (f"shard {row.get('shard')} (w{row.get('worker')})",
                 float(row.get("duration_s", 0.0)))
                for row in shards
            ]
            parts.append(svg_bar_chart(bars, title="Shard wall time (seconds)"))
            parts.append(_html_table(shards))
        counters = document.get("counters", {})
        if counters:
            parts.append(_html_table([
                {"counter": name, "value": value}
                for name, value in sorted(counters.items())
            ]))
        trace = document.get("trace", {})
        parts.append(
            f'<p class="meta">trace events: {int(trace.get("events", 0))}'
            f' (dropped {int(trace.get("dropped", 0))})</p>'
        )
        parts.append("</div>")
    return parts


def _probe_section(store: BaseResultStore) -> List[str]:
    """The "Protocol health" section: one block per probe-bearing document.

    Complements the probe *figures* (swarm-health timeline, startup
    funnel) with the numbers behind them: the lifecycle stage/drop-reason
    tallies, the run-level buffer-fill distribution and the funnel table.
    Only ``--probes`` runs produce the data; plain ``--telemetry``
    documents (probes disabled) render nothing here.
    """
    blocks: List[str] = []
    for entry in store.entries(kind="telemetry"):
        document = store.load_telemetry(entry.key)
        if document is None:
            continue
        probes = document.get("probes")
        if not isinstance(probes, dict) or not probes.get("enabled"):
            continue
        run = document.get("run", {})
        label = ", ".join(
            f"{key}={run[key]}" for key in sorted(run) if key != "kind"
        ) or entry.key
        blocks.append('<div class="figure-block">')
        blocks.append(f"<h3>{html.escape(str(run.get('kind', 'run')))}: "
                      f"{html.escape(label)}</h3>")
        lifecycle = probes.get("lifecycle", {})
        stages = lifecycle.get("stages", {})
        if stages:
            blocks.append("<h4>Segment lifecycle</h4>")
            blocks.append(_html_table([
                {"stage": name, "events": count}
                for name, count in sorted(stages.items())
            ]))
        drops = lifecycle.get("drop_reasons", {})
        if drops:
            blocks.append(_html_table([
                {"drop reason": name, "events": count}
                for name, count in sorted(drops.items())
            ]))
        health = probes.get("health", {})
        fill = health.get("buffer_fill", {})
        if fill.get("count"):
            blocks.append(
                '<p class="meta">buffer fill over '
                f'{int(health.get("periods", 0))} periods: '
                f'mean {fill.get("mean", 0)}, p10 {fill.get("p10", 0)}, '
                f'p50 {fill.get("p50", 0)}, p90 {fill.get("p90", 0)}</p>'
            )
        funnel = probes.get("funnel", {})
        if funnel.get("rows"):
            blocks.append("<h4>Startup funnel</h4>")
            blocks.append(_html_table(funnel["rows"]))
        if lifecycle.get("dropped"):
            blocks.append(
                f'<p class="meta">lifecycle buffer overflowed: '
                f'{int(lifecycle["dropped"])} events dropped</p>'
            )
        blocks.append("</div>")
    if not blocks:
        return []
    return ["<h2>Protocol health</h2>"] + blocks


def _render_html(
    *,
    title: str,
    figures: List[Tuple[str, FigureResult]],
    skipped: Dict[str, str],
    bench_rows: List[Dict[str, Any]],
    store: BaseResultStore,
) -> str:
    parts = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\"/>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]

    # -- figure index ------------------------------------------------------ #
    parts.append("<h2>Figures</h2><ul>")
    for name, figure in figures:
        parts.append(
            f'<li><a href="#{html.escape(name)}">{html.escape(name)}</a> '
            f"&mdash; {html.escape(figure.title)}</li>"
        )
    for name in skipped:
        spec = get_figure(name)
        parts.append(
            f'<li class="skipped">{html.escape(name)} &mdash; '
            f"{html.escape(spec.title)} (skipped)</li>"
        )
    parts.append("</ul>")

    # -- benchmark trajectory ---------------------------------------------- #
    if bench_rows:
        parts.append("<h2>Benchmark trajectory</h2>")
        table_rows = [
            {
                "commit": row["git_sha"],
                "benchmark": row["benchmark"],
                "mean_s": row["mean_s"],
                "change": "" if row["change"] is None else f"{row['change']:+.1%}",
            }
            for row in bench_rows
        ]
        parts.append(_html_table(table_rows))

    # -- one section per figure -------------------------------------------- #
    for name, figure in figures:
        parts.append(f'<div class="figure-block" id="{html.escape(name)}">')
        parts.append(
            f"<h2>{html.escape(name)}: {html.escape(figure.title)}</h2>"
        )
        spec = get_figure(name)
        if spec.description:
            parts.append(f"<p>{html.escape(spec.description)}</p>")
        if figure.meta:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(figure.meta.items()))
            parts.append(f'<p class="meta">{html.escape(meta)}</p>')
        chart = _figure_chart(figure)
        if chart:
            parts.append(chart)
        parts.append(_html_table(figure.rows))
        if figure.notes:
            parts.append(f'<p class="meta">{html.escape(figure.notes)}</p>')
        parts.append("</div>")

    # -- run telemetry ------------------------------------------------------ #
    parts.extend(_telemetry_section(store))

    # -- protocol health (probe-bearing runs only) --------------------------- #
    parts.extend(_probe_section(store))

    # -- skipped figures, with reasons -------------------------------------- #
    if skipped:
        parts.append("<h2>Skipped figures</h2><ul>")
        for name, reason in skipped.items():
            parts.append(
                f'<li class="skipped"><b>{html.escape(name)}</b>: '
                f"{html.escape(reason)}</li>"
            )
        parts.append("</ul>")

    # -- store inventory (counts only: no timestamps, keeps output stable) -- #
    counts: Dict[str, int] = {}
    for entry in store.entries():
        counts[entry.kind] = counts.get(entry.kind, 0) + 1
    parts.append("<h2>Store inventory</h2>")
    parts.append(
        _html_table(
            [{"kind": kind, "documents": counts[kind]} for kind in sorted(counts)]
        )
    )
    parts.append("</body></html>")
    return "\n".join(parts)
