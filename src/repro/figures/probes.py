"""Probe-backed figures: swarm health timelines and the startup funnel.

These figures read the ``probes`` block that a ``--probes`` run exports
into its ``telemetry-*`` store document (see :mod:`repro.obs.probes` and
:func:`repro.obs.export.build_telemetry_document`): the per-period swarm
health series (buffer-fill percentiles, pending-request depth, supplier
utilisation, request/failure/delivery tallies) and the aggregated
startup funnel (joined -> first_map -> first_segment -> playback).

Telemetry documents without probe data -- ``--telemetry`` runs where
probes stayed off -- are skipped; when no document carries probes the
figures raise :class:`~repro.figures.registry.FigureUnavailable`, which
the report renderer treats as "skip this figure", exactly like the
universe figures on an empty store.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.figures import FigureResult
from repro.experiments.store import BaseResultStore
from repro.figures.registry import FigureSpec, FigureUnavailable, register_figure
from repro.obs.probes import FUNNEL_MILESTONES

__all__ = [
    "probe_swarm_health",
    "probe_startup_funnel",
    "register_probe_figures",
]


def _probe_documents(
    store: Optional[BaseResultStore],
) -> List[Tuple[str, Dict[str, Any]]]:
    """Every telemetry document carrying an enabled probes block.

    Returned as ``(key, document)`` sorted by key -- deterministic
    regardless of store layout.  Raises :class:`FigureUnavailable` with
    actionable guidance when the store has telemetry but no probe data
    (or no telemetry at all).
    """
    if store is None:
        raise FigureUnavailable(
            "probe figures need a results store; pass store=... "
            "(e.g. --results-dir on the CLI)"
        )
    probed: List[Tuple[str, Dict[str, Any]]] = []
    plain = 0
    for entry in store.entries(kind="telemetry"):
        document = store.load_telemetry(entry.key)
        if document is None:
            continue
        probes = document.get("probes")
        if isinstance(probes, dict) and probes.get("enabled"):
            probed.append((entry.key, document))
        else:
            plain += 1
    if not probed:
        if plain:
            raise FigureUnavailable(
                f"found {plain} telemetry document(s) but none with probe "
                "data; re-run with --probes to record the protocol series"
            )
        raise FigureUnavailable(
            "the store holds no telemetry documents with probe data; "
            "run e.g. `repro run --probes` against this store first"
        )
    probed.sort(key=lambda item: item[0])
    return probed


def _run_label(document: Dict[str, Any]) -> str:
    """Short identity of the run a telemetry document measured."""
    run = document.get("run", {})
    parts = [str(run[field]) for field in ("kind", "name", "algorithm", "seed")
             if field in run and run[field] is not None]
    return "/".join(parts) if parts else "run"


def probe_swarm_health(
    *,
    store: Optional[BaseResultStore] = None,
) -> FigureResult:
    """Per-period swarm health from the probes' health series."""
    documents = _probe_documents(store)
    rows: List[Dict[str, object]] = []
    series: Dict[str, List[Tuple[float, float]]] = {}
    multiple = len(documents) > 1
    for key, document in documents:
        health = document["probes"].get("health", {})
        run = _run_label(document)
        for sample in health.get("series", []):
            row: Dict[str, object] = {}
            if multiple:
                row["run"] = run
            row.update(sample)
            rows.append(row)
        suffix = f" ({run})" if multiple else ""
        points = health.get("series", [])
        if points:
            series[f"fill_p50{suffix}"] = [
                (float(p["time"]), float(p["fill_p50"])) for p in points
            ]
            series[f"pending{suffix}"] = [
                (float(p["time"]), float(p["pending"])) for p in points
            ]
            series[f"utilisation{suffix}"] = [
                (float(p["time"]), float(p["utilisation"])) for p in points
            ]
    if not rows:
        raise FigureUnavailable(
            "the probe-bearing telemetry documents carry no health series; "
            "the probed run recorded zero scheduling periods"
        )
    return FigureResult(
        figure_id="P-health",
        title="Swarm health timeline (protocol probes)",
        rows=rows,
        series=series,
        notes="Per-period buffer-fill percentiles, pending-request depth and "
              "supplier utilisation from the swarm-health probe.",
        meta={"documents": len(documents), "source": "probes"},
    )


def probe_startup_funnel(
    *,
    store: Optional[BaseResultStore] = None,
) -> FigureResult:
    """The aggregated startup funnel across probed runs."""
    documents = _probe_documents(store)
    rows: List[Dict[str, object]] = []
    series: Dict[str, List[Tuple[float, float]]] = {}
    multiple = len(documents) > 1
    for key, document in documents:
        funnel = document["probes"].get("funnel", {})
        run = _run_label(document)
        for funnel_row in funnel.get("rows", []):
            row: Dict[str, object] = {}
            if multiple:
                row["run"] = run
            row.update(funnel_row)
            rows.append(row)
            label = str(funnel_row.get("label", ""))
            name = f"{label} ({run})" if multiple else label
            series[name] = [
                (float(i), float(funnel_row.get(milestone, 0) or 0))
                for i, milestone in enumerate(FUNNEL_MILESTONES)
            ]
    if not rows:
        raise FigureUnavailable(
            "the probe-bearing telemetry documents carry no funnel rows; "
            "the probed run created no peers"
        )
    return FigureResult(
        figure_id="P-funnel",
        title="Startup funnel (protocol probes)",
        rows=rows,
        series=series,
        notes="Peers reaching each milestone (joined -> first_map -> "
              "first_segment -> playback) and mean seconds since join.",
        meta={"documents": len(documents), "source": "probes"},
    )


def register_probe_figures() -> None:
    """Register the probe-backed figures (called once on package import)."""
    register_figure(FigureSpec(
        name="probe-swarm-health",
        title="Swarm health timeline",
        kind="universe",
        builder=probe_swarm_health,
        figure_id="P-health",
        description="Per-period buffer-fill distribution, pending-request "
                    "depth and supplier utilisation from the swarm-health "
                    "probe of --probes runs.",
        params=("store",),
    ))
    register_figure(FigureSpec(
        name="probe-startup-funnel",
        title="Startup funnel",
        kind="universe",
        builder=probe_startup_funnel,
        figure_id="P-funnel",
        description="How many peers reached each startup milestone and how "
                    "fast, from the startup-funnel probe of --probes runs.",
        params=("store",),
    ))
