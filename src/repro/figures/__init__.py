"""Declarative figure registry and the store-backed HTML report.

Importing this package populates the registry: the nine classic paper
figures (:mod:`repro.figures.paper`) followed by the universe-scale
sketch-backed figures (:mod:`repro.figures.universe`).  Render any of
them by name with :func:`render_figure`, or the whole registry into one
HTML report with :func:`render_report` (the ``repro report`` command).
"""

from __future__ import annotations

from repro.figures.paper import register_paper_figures
from repro.figures.registry import (
    FIGURES,
    FigureSpec,
    FigureUnavailable,
    figure_names,
    get_figure,
    register_figure,
    render_figure,
)
from repro.figures.probes import register_probe_figures
from repro.figures.universe import register_universe_figures

register_paper_figures()
register_universe_figures()
register_probe_figures()

from repro.figures.report import ReportSummary, render_report  # noqa: E402

__all__ = [
    "FIGURES",
    "FigureSpec",
    "FigureUnavailable",
    "register_figure",
    "figure_names",
    "get_figure",
    "render_figure",
    "ReportSummary",
    "render_report",
]
