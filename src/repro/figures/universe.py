"""Universe-scale figures rendered purely from persisted sketch aggregates.

These figures read the ``aggregates`` block that every freshly simulated
universe repetition stores *next to* its raw outcome table (see
:mod:`repro.channels.aggregates`): per algorithm a
:class:`~repro.metrics.sketch.QuantileSketch` plus a
:class:`~repro.metrics.sketch.StreamAccumulator` over all pooled per-peer
zap-time samples, and the same pair per popularity decile.  They never
touch ``document["rep"]`` -- the raw per-peer outcome data -- which the
registry tests pin by poisoning that key and rendering anyway.  Cost is
therefore O(channels x percentiles) regardless of viewer count: a
million-viewer universe renders from a few kilobytes of sketch state.

Repetition blocks merge in ascending seed order (the canonical order --
merging compressed sketches is order-sensitive), and multiple universes
in one store each contribute their own rows, tagged by universe name.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.channels.aggregates import AlgorithmAggregate, merge_rep_aggregates
from repro.experiments.figures import FigureResult
from repro.experiments.store import BaseResultStore
from repro.figures.registry import FigureSpec, FigureUnavailable, register_figure

__all__ = [
    "universe_deciles",
    "universe_percentiles",
    "universe_summary",
    "register_universe_figures",
]

#: The percentile grid of the percentile-curve figure.
PERCENTILE_GRID = (1, 5, 10, 25, 50, 75, 90, 95, 99)

#: The two paired algorithms every universe document carries.
_ALGORITHMS = ("normal", "fast")


def _universe_documents(
    store: Optional[BaseResultStore], universe: Optional[str] = None
) -> List[Dict[str, Any]]:
    """All usable universe documents, sorted by ``(universe, seed, key)``.

    Usable means: a ``universe-*`` key, ``kind == "universe"`` and an
    ``aggregates`` block.  Documents predating the aggregate block are
    counted so the error message can say "re-run to upgrade" rather than
    "no data".  Only the document's identity fields and its ``aggregates``
    block are ever read -- never ``document["rep"]``.
    """
    if store is None:
        raise FigureUnavailable(
            "universe figures need a results store; pass store=... "
            "(e.g. --results-dir on the CLI)"
        )
    usable: List[Tuple[str, int, str, Dict[str, Any]]] = []
    legacy = 0
    for key in store.keys():
        if not key.startswith("universe-"):
            continue
        document = store.load(key)
        if not isinstance(document, dict) or document.get("kind") != "universe":
            continue
        name = str(document.get("universe", ""))
        if universe is not None and name != universe:
            continue
        if "aggregates" not in document:
            legacy += 1
            continue
        usable.append((name, int(document.get("seed", 0)), key, document))
    if not usable:
        if legacy:
            raise FigureUnavailable(
                f"found {legacy} universe document(s) without an aggregates "
                "block (written by an older version); re-run the universe "
                "to regenerate them"
            )
        scope = f" for universe {universe!r}" if universe else ""
        raise FigureUnavailable(
            f"the store holds no universe documents{scope}; "
            "run `repro universe run <name>` first"
        )
    usable.sort(key=lambda item: (item[0], item[1], item[2]))
    return [item[3] for item in usable]


def _merged_by_universe(
    documents: List[Dict[str, Any]],
) -> List[Tuple[str, Dict[str, Any], Dict[str, AlgorithmAggregate]]]:
    """Per universe: its name, a representative document and merged aggregates."""
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for document in documents:
        grouped.setdefault(str(document.get("universe", "")), []).append(document)
    merged: List[Tuple[str, Dict[str, Any], Dict[str, AlgorithmAggregate]]] = []
    for name in sorted(grouped):
        docs = grouped[name]
        merged.append(
            (name, docs[0], merge_rep_aggregates([d["aggregates"] for d in docs]))
        )
    return merged


def _tag(rows: List[Dict[str, object]], name: str, multiple: bool) -> None:
    """Prefix each row with the universe name when several are present."""
    if multiple:
        for row in rows:
            row_items = list(row.items())
            row.clear()
            row["universe"] = name
            row.update(row_items)


def universe_deciles(
    *,
    store: Optional[BaseResultStore] = None,
    universe: Optional[str] = None,
) -> FigureResult:
    """Per-popularity-decile zap times, reconstructed from decile sketches."""
    documents = _universe_documents(store, universe)
    merged = _merged_by_universe(documents)
    rows: List[Dict[str, object]] = []
    series: Dict[str, List[Tuple[float, float]]] = {}
    for name, _doc, algorithms in merged:
        normal = algorithms.get("normal")
        fast = algorithms.get("fast")
        if normal is None or fast is None:
            continue
        suffix = f" ({name})" if len(merged) > 1 else ""
        local: List[Dict[str, object]] = []
        for decile in sorted(set(normal.deciles) | set(fast.deciles)):
            n = normal.deciles.get(decile)
            f = fast.deciles.get(decile)
            if n is None or f is None or n.stats.count == 0:
                continue
            reduction = (
                1.0 - f.stats.mean / n.stats.mean if n.stats.mean > 0 else 0.0
            )
            local.append({
                "decile": decile,
                "viewers": n.stats.count,
                "normal_zap_time": n.stats.mean,
                "fast_zap_time": f.stats.mean,
                "fast_p90": f.sketch.percentile(90.0),
                "reduction": reduction,
            })
        _tag(local, name, len(merged) > 1)
        rows.extend(local)
        series[f"normal{suffix}"] = [
            (float(r["decile"]), float(r["normal_zap_time"])) for r in local
        ]
        series[f"fast{suffix}"] = [
            (float(r["decile"]), float(r["fast_zap_time"])) for r in local
        ]
    return FigureResult(
        figure_id="U-deciles",
        title="Zap time by channel-popularity decile (sketch aggregates)",
        rows=rows,
        series=series,
        notes="Reconstructed from per-decile quantile sketches; "
              "raw per-peer outcomes were never read.",
        meta=_meta(documents, universe),
    )


def universe_percentiles(
    *,
    store: Optional[BaseResultStore] = None,
    universe: Optional[str] = None,
) -> FigureResult:
    """Zap-time percentile curves per algorithm, from the pooled sketches."""
    documents = _universe_documents(store, universe)
    merged = _merged_by_universe(documents)
    rows: List[Dict[str, object]] = []
    series: Dict[str, List[Tuple[float, float]]] = {}
    for name, _doc, algorithms in merged:
        suffix = f" ({name})" if len(merged) > 1 else ""
        local: List[Dict[str, object]] = []
        for q in PERCENTILE_GRID:
            row: Dict[str, object] = {"percentile": q}
            for algorithm in _ALGORITHMS:
                aggregate = algorithms.get(algorithm)
                if aggregate is not None and aggregate.sketch.count:
                    row[algorithm] = aggregate.sketch.percentile(float(q))
            local.append(row)
        for algorithm in _ALGORITHMS:
            aggregate = algorithms.get(algorithm)
            if aggregate is not None and aggregate.sketch.count:
                series[f"{algorithm}{suffix}"] = [
                    (float(q), aggregate.sketch.percentile(float(q)))
                    for q in PERCENTILE_GRID
                ]
        _tag(local, name, len(merged) > 1)
        rows.extend(local)
    return FigureResult(
        figure_id="U-percentiles",
        title="Zap-time percentile curves (sketch aggregates)",
        rows=rows,
        series=series,
        notes="Percentiles interpolated from the pooled quantile sketches; "
              "exact up to the sketch capacity, bounded-error beyond it.",
        meta=_meta(documents, universe),
    )


def universe_summary(
    *,
    store: Optional[BaseResultStore] = None,
    universe: Optional[str] = None,
) -> FigureResult:
    """One summary row per universe: counts, means, tail percentiles."""
    documents = _universe_documents(store, universe)
    merged = _merged_by_universe(documents)
    rows: List[Dict[str, object]] = []
    for name, doc, algorithms in merged:
        normal = algorithms.get("normal")
        fast = algorithms.get("fast")
        if normal is None or fast is None:
            continue
        reps = sum(1 for d in documents if str(d.get("universe", "")) == name)
        reduction = (
            1.0 - fast.stats.mean / normal.stats.mean
            if normal.stats.mean > 0
            else 0.0
        )
        rows.append({
            "universe": name,
            "channels": int(doc.get("n_channels", 0)),
            "viewers": int(doc.get("n_viewers", 0)),
            "reps": reps,
            "samples": normal.stats.count,
            "normal_mean": normal.stats.mean,
            "fast_mean": fast.stats.mean,
            "normal_p50": normal.sketch.percentile(50.0),
            "fast_p50": fast.sketch.percentile(50.0),
            "normal_p90": normal.sketch.percentile(90.0),
            "fast_p90": fast.sketch.percentile(90.0),
            "normal_p99": normal.sketch.percentile(99.0),
            "fast_p99": fast.sketch.percentile(99.0),
            "reduction": reduction,
            "unfinished": normal.unfinished + fast.unfinished,
        })
    series = {
        "reduction": [
            (float(i), float(row["reduction"])) for i, row in enumerate(rows)
        ]
    }
    return FigureResult(
        figure_id="U-summary",
        title="Universe summary (sketch aggregates)",
        rows=rows,
        series=series,
        notes="One row per stored universe; all statistics come from the "
              "merged streaming aggregates.",
        meta=_meta(documents, universe),
    )


def register_universe_figures() -> None:
    """Register the sketch-backed figures (called once on package import)."""
    register_figure(FigureSpec(
        name="universe-deciles",
        title="Zap time by channel-popularity decile",
        kind="universe",
        builder=universe_deciles,
        figure_id="U-deciles",
        description="Per-decile normal/fast zap-time means, fast p90 and "
                    "reduction, read purely from persisted decile sketches.",
        params=("store", "universe"),
    ))
    register_figure(FigureSpec(
        name="universe-percentiles",
        title="Zap-time percentile curves",
        kind="universe",
        builder=universe_percentiles,
        figure_id="U-percentiles",
        description="Normal/fast zap-time percentile curves from the pooled "
                    "quantile sketches.",
        params=("store", "universe"),
    ))
    register_figure(FigureSpec(
        name="universe-summary",
        title="Universe summary",
        kind="universe",
        builder=universe_summary,
        figure_id="U-summary",
        description="One row per stored universe: sample counts, means, "
                    "tail percentiles and the fast-switch reduction.",
        params=("store", "universe"),
    ))


def _meta(
    documents: List[Dict[str, Any]], universe: Optional[str]
) -> Dict[str, object]:
    """Shared meta block: what was read, never when (keeps reports stable)."""
    names = sorted({str(d.get("universe", "")) for d in documents})
    meta: Dict[str, object] = {
        "documents": len(documents),
        "universes": ",".join(names),
        "source": "sketch-aggregates",
    }
    if universe is not None:
        meta["filter"] = universe
    return meta
