"""Declarative figure registry: names to generator specs.

Every figure the repository can render -- the nine classic paper figures
(:mod:`repro.figures.paper`) and the universe-scale sketch-backed figures
(:mod:`repro.figures.universe`) -- registers a :class:`FigureSpec` here
under a stable name.  Callers render by name through
:func:`render_figure`, which filters the caller's keyword soup down to
the parameters the figure actually declares; the report renderer
(:mod:`repro.figures.report`) iterates :func:`figure_names` to cover the
whole registry without knowing any figure individually.

Registration happens at import time of the ``repro.figures`` package;
importing this module alone yields an empty registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.experiments.figures import FigureResult

__all__ = [
    "FigureSpec",
    "FigureUnavailable",
    "register_figure",
    "figure_names",
    "get_figure",
    "render_figure",
]

#: The figure kinds the registry understands.  ``static`` figures need no
#: simulation, ``track``/``sweep`` figures simulate (or replay) meshes,
#: ``universe`` figures read only persisted sketch aggregates.
FIGURE_KINDS = ("static", "track", "sweep", "universe")


class FigureUnavailable(RuntimeError):
    """A registered figure cannot render from the data it was given.

    Raised by universe figures when the store holds no usable universe
    documents; the report renderer treats it as "skip this figure", not
    as an error.
    """


@dataclass(frozen=True)
class FigureSpec:
    """One renderable figure: identity, provenance and parameter surface.

    Attributes
    ----------
    name:
        Stable registry key (e.g. ``"fig7-switch-static"``).
    title:
        Human-readable one-liner, shown in the report index.
    kind:
        One of :data:`FIGURE_KINDS`.
    builder:
        Callable producing a :class:`FigureResult`; accepts (a subset of)
        ``params`` as keyword arguments.
    figure_id:
        Paper figure number for paper figures, a short slug otherwise.
    description:
        What the figure shows and where its data comes from.
    params:
        The keyword arguments the builder accepts -- the filter
        :func:`render_figure` applies to caller kwargs.
    """

    name: str
    title: str
    kind: str
    builder: Callable[..., FigureResult]
    figure_id: str
    description: str = ""
    params: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in FIGURE_KINDS:
            raise ValueError(
                f"unknown figure kind {self.kind!r}; expected one of {FIGURE_KINDS}"
            )


#: The registry proper.  Insertion order is the report's presentation
#: order, so modules register their figures in reading order.
FIGURES: Dict[str, FigureSpec] = {}


def register_figure(spec: FigureSpec) -> FigureSpec:
    """Add ``spec`` to the registry; duplicate names are a programming error."""
    if spec.name in FIGURES:
        raise ValueError(f"figure {spec.name!r} is already registered")
    FIGURES[spec.name] = spec
    return spec


def figure_names() -> Tuple[str, ...]:
    """All registered figure names, in registration (presentation) order."""
    return tuple(FIGURES)


def get_figure(name: str) -> FigureSpec:
    """Look up one spec; unknown names raise ``KeyError`` with guidance."""
    try:
        return FIGURES[name]
    except KeyError:
        known = ", ".join(sorted(FIGURES)) or "<none registered>"
        raise KeyError(f"unknown figure {name!r}; registered figures: {known}") from None


def render_figure(name: str, **kwargs: Any) -> FigureResult:
    """Render one registered figure.

    ``kwargs`` may carry parameters for *any* figure (the report passes
    one uniform set to every spec); only the keys the spec declares in
    ``params`` reach the builder, and ``None`` values are dropped so the
    builder's own defaults apply.
    """
    spec = get_figure(name)
    accepted: Mapping[str, Any] = {
        key: value
        for key, value in kwargs.items()
        if key in spec.params and value is not None
    }
    return spec.builder(**accepted)
