"""Per-repetition streaming aggregates of universe zap times.

Every freshly simulated universe repetition now persists, next to its
per-channel outcome table, an ``aggregates`` block: per algorithm, a
:class:`~repro.metrics.sketch.QuantileSketch` and a
:class:`~repro.metrics.sketch.StreamAccumulator` over the *pooled*
per-peer zap-time samples of the whole lineup, plus the same pair per
popularity decile and the count of peers that never finished.  The block
is what the universe-scale figures (:mod:`repro.figures.universe`) read:
they reconstruct percentiles and means in O(channels x percentiles)
without ever touching the raw per-peer outcome data.

Bit-identity contract
---------------------
All three execution paths (serial shared-engine, per-channel worker
fan-out, sharded runtime) build the block the same way:

1. per channel and algorithm, a *unit* aggregate
   (:func:`unit_aggregate`) over that mesh's zap-time samples
   (:func:`repro.metrics.universe.zap_time_values`) at the default sketch
   capacity -- a pure function of the sample multiset;
2. the units folded into the repetition block in ascending channel order
   (:class:`RepAggregator`).

Identical samples plus an identical merge order make the resulting JSON
byte-identical across paths, which the figure-registry tests pin
(serial vs ``--shards 2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Sequence

from repro.metrics.sketch import (
    DEFAULT_SKETCH_CAPACITY,
    QuantileSketch,
    StreamAccumulator,
    sketch_of,
)

__all__ = [
    "unit_aggregate",
    "AlgorithmAggregate",
    "RepAggregator",
    "merge_rep_aggregates",
]


def unit_aggregate(
    samples: Iterable[float],
    unfinished: int,
    *,
    capacity: int = DEFAULT_SKETCH_CAPACITY,
) -> Dict[str, Any]:
    """One channel mesh's aggregate under one algorithm, in JSON form.

    Built in one shot from the mesh's zap-time samples, so the result is a
    pure function of the sample multiset -- the property that keeps the
    serial, parallel and sharded paths byte-identical.
    """
    stats = StreamAccumulator()
    values = [float(v) for v in samples]
    for value in values:
        stats.add(value)
    return {
        "sketch": sketch_of(values, capacity=capacity).to_dict(),
        "stats": stats.to_dict(),
        "unfinished": int(unfinished),
    }


@dataclass
class AlgorithmAggregate:
    """One algorithm's pooled zap-time aggregates (plus per-decile buckets)."""

    sketch: QuantileSketch
    stats: StreamAccumulator
    unfinished: int = 0
    deciles: Dict[int, "AlgorithmAggregate"] = field(default_factory=dict)

    @staticmethod
    def empty(capacity: int = DEFAULT_SKETCH_CAPACITY) -> "AlgorithmAggregate":
        """A fresh, sample-free aggregate."""
        return AlgorithmAggregate(
            sketch=QuantileSketch(capacity=int(capacity)),
            stats=StreamAccumulator(),
        )

    def fold_unit(self, decile: int, unit: Mapping[str, Any]) -> None:
        """Fold one channel's :func:`unit_aggregate` into the pool + its decile."""
        self._fold(unit)
        bucket = self.deciles.get(int(decile))
        if bucket is None:
            bucket = AlgorithmAggregate.empty(self.sketch.capacity)
            self.deciles[int(decile)] = bucket
        bucket._fold(unit)

    def _fold(self, unit: Mapping[str, Any]) -> None:
        self.sketch.merge(QuantileSketch.from_dict(unit["sketch"]))
        self.stats.merge(StreamAccumulator.from_dict(unit["stats"]))
        self.unfinished += int(unit["unfinished"])

    def merge(self, other: "AlgorithmAggregate") -> None:
        """Fold a whole other aggregate in (deciles matched by number).

        Merge order matters once sketches have compressed; callers must
        merge in a canonical order (the figures merge repetitions in
        ascending seed order).
        """
        self.sketch.merge(other.sketch)
        self.stats.merge(other.stats)
        self.unfinished += other.unfinished
        for decile in sorted(other.deciles):
            bucket = self.deciles.get(decile)
            if bucket is None:
                # Rebuild through the dict form: an exact copy that never
                # aliases the other aggregate's mutable sketch state.
                self.deciles[decile] = AlgorithmAggregate.from_dict(
                    other.deciles[decile].to_dict()
                )
            else:
                bucket.merge(other.deciles[decile])

    def to_dict(self, *, with_deciles: bool = True) -> Dict[str, Any]:
        """JSON form (decile keys become strings; exact float round trip)."""
        payload: Dict[str, Any] = {
            "sketch": self.sketch.to_dict(),
            "stats": self.stats.to_dict(),
            "unfinished": self.unfinished,
        }
        if with_deciles:
            payload["deciles"] = {
                str(decile): self.deciles[decile].to_dict(with_deciles=False)
                for decile in sorted(self.deciles)
            }
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "AlgorithmAggregate":
        """Rebuild from :meth:`to_dict` output (exact round trip)."""
        return AlgorithmAggregate(
            sketch=QuantileSketch.from_dict(payload["sketch"]),
            stats=StreamAccumulator.from_dict(payload["stats"]),
            unfinished=int(payload["unfinished"]),
            deciles={
                int(decile): AlgorithmAggregate.from_dict(sub)
                for decile, sub in dict(payload.get("deciles", {})).items()
            },
        )


class RepAggregator:
    """Folds per-channel unit aggregates into one repetition's block.

    Call :meth:`fold_unit` once per (algorithm, channel) **in ascending
    channel order** -- the canonical merge order every execution path
    follows, making the resulting block identical whichever path ran the
    channels.
    """

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._algorithms: Dict[str, AlgorithmAggregate] = {}

    def fold_unit(
        self, algorithm: str, decile: int, unit: Mapping[str, Any]
    ) -> None:
        """Fold one channel's :func:`unit_aggregate` under ``algorithm``."""
        aggregate = self._algorithms.get(algorithm)
        if aggregate is None:
            aggregate = AlgorithmAggregate.empty(self.capacity)
            self._algorithms[algorithm] = aggregate
        aggregate.fold_unit(decile, unit)

    def to_dict(self) -> Dict[str, Any]:
        """The repetition's ``aggregates`` block (what the store persists)."""
        payload: Dict[str, Any] = {"capacity": self.capacity}
        for name in sorted(self._algorithms):
            payload[name] = self._algorithms[name].to_dict()
        return payload


def merge_rep_aggregates(
    payloads: Sequence[Mapping[str, Any]],
) -> Dict[str, AlgorithmAggregate]:
    """Merge repetition ``aggregates`` blocks into per-algorithm aggregates.

    ``payloads`` must come in a canonical order (the figures sort by
    repetition seed): merging compressed sketches is deterministic only
    given a fixed order.  Returns ``{algorithm: AlgorithmAggregate}``.
    """
    merged: Dict[str, AlgorithmAggregate] = {}
    for payload in payloads:
        for name in sorted(payload):
            if name == "capacity":
                continue
            sub = payload[name]
            aggregate = AlgorithmAggregate.from_dict(sub)
            if name in merged:
                merged[name].merge(aggregate)
            else:
                merged[name] = aggregate
    return merged
