"""The multi-channel universe: channel directory, Zipf lineups, zapping.

This package promotes the single S1 -> S2 switch of the paper into an
N-channel IPTV ecosystem:

:mod:`repro.channels.lineup`
    :class:`ChannelLineup` -- N channels with Zipf-skewed popularity and a
    deterministic audience apportionment.
:mod:`repro.channels.directory`
    :class:`Directory` -- the tracker: which viewer watches what, and
    per-channel membership services that hand joining/zapping peers ``M``
    alive neighbours on their target channel.
:mod:`repro.channels.zapping`
    :class:`ZappingProcess` -- surfing vs. loyal viewers hopping channels,
    compiled into per-channel arrival/departure schedules.
:mod:`repro.channels.universe`
    :class:`UniverseSpec` / :class:`UniverseSession` -- every channel mesh,
    both switch algorithms, on one shared engine and clock; each channel
    change is exactly the paper's fast/normal switch, measured across the
    whole lineup.
:mod:`repro.channels.runner`
    :class:`UniverseRunner` -- store-backed execution, bit-identical
    between the serial shared-engine path and per-channel worker processes.
"""

from repro.channels.directory import Directory
from repro.channels.lineup import Channel, ChannelLineup, zipf_weights
from repro.channels.runner import (
    UniverseResult,
    UniverseRunner,
    run_universe,
    universe_fingerprint,
)
from repro.channels.universe import (
    ChannelOutcome,
    UniverseRepResult,
    UniverseSession,
    UniverseSpec,
    plan_universe,
    run_universe_channel,
    run_universe_rep,
)
from repro.channels.zapping import ZapEvent, ZapPlan, ZappingProcess

__all__ = [
    "Channel",
    "ChannelLineup",
    "zipf_weights",
    "Directory",
    "ZapEvent",
    "ZapPlan",
    "ZappingProcess",
    "UniverseSpec",
    "UniverseSession",
    "UniverseRepResult",
    "ChannelOutcome",
    "plan_universe",
    "run_universe_rep",
    "run_universe_channel",
    "UniverseResult",
    "UniverseRunner",
    "run_universe",
    "universe_fingerprint",
]
