"""Channel lineups: N channels under Zipf-skewed popularity.

IPTV measurement studies consistently find channel popularity to be highly
skewed -- a few head channels hold most of the audience while a long tail
shares the rest -- and model it with a Zipf law over the popularity rank.
:func:`zipf_weights` produces that distribution, and
:class:`ChannelLineup` turns it into a concrete lineup: one
:class:`Channel` per rank with a normalised popularity weight and an
initial integer audience apportioned from the viewer population.

Everything here is *deterministic*: the weights are a pure function of the
lineup size and exponent, and the audience apportionment uses the
largest-remainder method (with a minimum-audience floor so every channel
can sustain a gossip mesh of minimum degree ``M``).  Randomness enters the
universe only through the zapping process and the per-channel meshes, which
keeps lineups identical across repetitions, workers and machines.

The popularity *rank* also defines the popularity **decile** used by the
reporting layer (:func:`repro.metrics.universe.decile_of`): decile 0 holds
the most popular tenth of the lineup, decile 9 the least popular.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from repro.metrics.universe import decile_of

__all__ = ["zipf_weights", "Channel", "ChannelLineup"]


def zipf_weights(n_channels: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf popularity weights for ranks ``1..n_channels``.

    ``weights[i]`` is proportional to ``(i + 1) ** -exponent`` and the
    vector sums to 1 exactly (up to float rounding).

    Examples
    --------
    >>> w = zipf_weights(4, 1.0)
    >>> bool(abs(w.sum() - 1.0) < 1e-12)
    True
    >>> bool(w[0] > w[1] > w[2] > w[3])
    True
    """
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, n_channels + 1, dtype=float)
    raw = ranks ** -float(exponent)
    return raw / raw.sum()


@dataclass(frozen=True)
class Channel:
    """One channel of the lineup.

    Attributes
    ----------
    index:
        Popularity rank, 0-based (0 = most popular).
    name:
        Human-readable channel name (``ch-01`` is the most popular).
    popularity:
        Normalised popularity weight (the lineup's weights sum to 1).
    audience:
        Initial number of viewers apportioned to this channel.
    """

    index: int
    name: str
    popularity: float
    audience: int


@dataclass(frozen=True)
class ChannelLineup:
    """An ordered lineup of channels, most popular first."""

    channels: Tuple[Channel, ...]

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("a lineup needs at least one channel")
        if not isinstance(self.channels, tuple):
            object.__setattr__(self, "channels", tuple(self.channels))

    # ------------------------------------------------------------------ #
    @property
    def n_channels(self) -> int:
        """Number of channels in the lineup."""
        return len(self.channels)

    @property
    def total_audience(self) -> int:
        """Total viewers across the lineup (the universe's population)."""
        return sum(channel.audience for channel in self.channels)

    def popularity_array(self) -> np.ndarray:
        """The channels' popularity weights as a float array."""
        return np.asarray([c.popularity for c in self.channels], dtype=float)

    def audiences(self) -> Tuple[int, ...]:
        """The channels' initial audiences, in lineup order."""
        return tuple(c.audience for c in self.channels)

    def decile(self, index: int) -> int:
        """Popularity decile (0 = most popular tenth) of channel ``index``."""
        return decile_of(index, self.n_channels)

    # ------------------------------------------------------------------ #
    @staticmethod
    def build(
        n_channels: int,
        n_viewers: int,
        *,
        exponent: float = 1.0,
        min_audience: int = 8,
    ) -> "ChannelLineup":
        """Build a lineup of ``n_channels`` sharing ``n_viewers`` viewers.

        The audience apportionment is the largest-remainder method over the
        Zipf weights: every channel first receives the floor of its exact
        quota, leftover viewers go to the largest fractional remainders
        (ties to the more popular channel), and finally channels below
        ``min_audience`` are topped up by taking single viewers from the
        currently largest channels -- all deterministic, and the total is
        exactly ``n_viewers``.
        """
        if min_audience < 1:
            raise ValueError(f"min_audience must be >= 1, got {min_audience}")
        if n_viewers < n_channels * min_audience:
            raise ValueError(
                f"need at least n_channels * min_audience = "
                f"{n_channels * min_audience} viewers, got {n_viewers}"
            )
        weights = zipf_weights(n_channels, exponent)
        quotas = weights * n_viewers
        audiences: List[int] = [int(q) for q in np.floor(quotas)]
        leftovers = n_viewers - sum(audiences)
        by_remainder = sorted(
            range(n_channels), key=lambda i: (-(quotas[i] - audiences[i]), i)
        )
        for i in by_remainder[:leftovers]:
            audiences[i] += 1
        # Enforce the floor: lift deficient channels one viewer at a time,
        # taken from the currently largest channel (ties to the more
        # popular one), which can never push the donor below the floor
        # because the total is at least n_channels * min_audience.
        for i in range(n_channels):
            while audiences[i] < min_audience:
                donor = min(
                    range(n_channels),
                    key=lambda j: (-audiences[j], j),
                )
                audiences[donor] -= 1
                audiences[i] += 1
        channels = tuple(
            Channel(
                index=i,
                name=f"ch-{i + 1:02d}",
                popularity=float(weights[i]),
                audience=audiences[i],
            )
            for i in range(n_channels)
        )
        return ChannelLineup(channels=channels)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dictionary form (reports and documentation)."""
        return {"channels": [asdict(channel) for channel in self.channels]}

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ChannelLineup":
        """Rebuild a lineup from :meth:`to_dict` output."""
        return ChannelLineup(
            channels=tuple(Channel(**dict(c)) for c in payload["channels"])
        )
