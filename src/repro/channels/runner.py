"""Execute universes: paired, store-backed and parallel over channels.

Execution model
---------------
One *repetition* of a universe is fully determined by ``(spec, seed)`` --
the plan (lineup, per-channel seeds, zap script) is a pure function of the
two, and every channel mesh is causally independent given the plan.  The
runner exploits that at two granularities:

* ``workers == 1`` runs each repetition through
  :class:`~repro.channels.universe.UniverseSession`: every mesh of the
  lineup interleaved on **one shared engine** (the canonical semantics).
* ``workers > 1`` fans the *channels* of all pending repetitions out over
  a process pool (:func:`~repro.channels.universe.run_universe_channel`),
  then reassembles repetitions in deterministic channel order.  Results
  are **bit-identical** to the serial path -- the property the acceptance
  tests pin down.

Each repetition persists as one ``universe-*`` document in the
:class:`~repro.experiments.store.ResultStore`, keyed by a content hash of
the full spec (dict round trip), the repetition seed and the code version;
re-running a named universe replays from disk without simulating.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.channels.aggregates import RepAggregator, unit_aggregate
from repro.channels.universe import (
    PAIRED_ALGORITHMS,
    ChannelOutcome,
    UniversePlan,
    UniverseRepResult,
    UniverseSpec,
    plan_universe,
    run_planned_channel_detailed,
    run_universe_rep,
)
from repro.experiments.store import (
    SCHEMA_VERSION,
    BaseResultStore,
    code_version,
    persist_net_document,
    replay_or_execute,
    stable_hash,
)
from repro.metrics.report import mean_of, reduction_ratio
from repro.metrics.universe import weighted_mean

__all__ = [
    "UniverseResult",
    "universe_fingerprint",
    "rep_to_dict",
    "rep_from_dict",
    "UniverseRunner",
    "run_universe",
]


# --------------------------------------------------------------------------- #
# fingerprints and serialisation
# --------------------------------------------------------------------------- #
def universe_fingerprint(
    spec: UniverseSpec, seed: int, *, version: Optional[str] = None
) -> str:
    """Stable store key of one universe repetition.

    Covers the complete spec (dict round trip), the repetition seed, the
    schema and the code version -- any change to the lineup, the viewer
    mix, the simulator or the store layout rotates the key.
    """
    return "universe-" + stable_hash(
        {
            "kind": "universe",
            "schema": SCHEMA_VERSION,
            "code_version": version if version is not None else code_version(),
            "spec": spec.to_dict(),
            "seed": int(seed),
        }
    )


def rep_to_dict(rep: UniverseRepResult) -> Dict[str, Any]:
    """JSON-friendly dictionary form of a :class:`UniverseRepResult`.

    Deliberately excludes the ``aggregates`` block: the store document
    carries it as a top-level sibling of ``rep`` (see the runner's save
    path), so aggregate-only consumers never deserialise -- or even
    parse past -- the raw per-channel outcome table.
    """
    return {
        "universe": rep.universe,
        "seed": rep.seed,
        "n_channels": rep.n_channels,
        "n_viewers": rep.n_viewers,
        "n_zaps": rep.n_zaps,
        "surfers": rep.surfers,
        "normal": [asdict(outcome) for outcome in rep.normal],
        "fast": [asdict(outcome) for outcome in rep.fast],
    }


def rep_from_dict(payload: Mapping[str, Any]) -> UniverseRepResult:
    """Rebuild a :class:`UniverseRepResult` (exact float round trip)."""
    return UniverseRepResult(
        universe=str(payload["universe"]),
        seed=int(payload["seed"]),
        n_channels=int(payload["n_channels"]),
        n_viewers=int(payload["n_viewers"]),
        n_zaps=int(payload["n_zaps"]),
        surfers=int(payload["surfers"]),
        normal=tuple(ChannelOutcome(**dict(o)) for o in payload["normal"]),
        fast=tuple(ChannelOutcome(**dict(o)) for o in payload["fast"]),
    )


# --------------------------------------------------------------------------- #
# aggregated result
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class UniverseResult:
    """All repetitions of one universe, plus aggregation helpers."""

    spec: UniverseSpec
    seed: int
    repetitions: int
    reps: Tuple[UniverseRepResult, ...]
    replayed: int

    @property
    def simulated(self) -> int:
        """How many repetitions were freshly simulated (not replayed)."""
        return self.repetitions - self.replayed

    @property
    def n_zaps(self) -> int:
        """Total scripted zap events across all repetitions."""
        return sum(rep.n_zaps for rep in self.reps)

    @property
    def mean_reduction(self) -> float:
        """Zap-time reduction of fast vs. normal over the whole lineup.

        Computed from the peer-weighted mean zap time of each algorithm,
        pooled over every channel and repetition.
        """
        normal = weighted_mean(
            [(o.mean_zap_time, o.n_peers) for rep in self.reps for o in rep.normal]
        )
        fast = weighted_mean(
            [(o.mean_zap_time, o.n_peers) for rep in self.reps for o in rep.fast]
        )
        return reduction_ratio(normal, fast)

    # -- tables ---------------------------------------------------------- #
    def channel_rows(self) -> List[Dict[str, object]]:
        """One row per channel, averaged over repetitions."""
        rows: List[Dict[str, object]] = []
        for index in range(self.reps[0].n_channels if self.reps else 0):
            normals = [rep.normal[index] for rep in self.reps]
            fasts = [rep.fast[index] for rep in self.reps]
            first = fasts[0]
            normal_mean = mean_of([o.mean_zap_time for o in normals])
            fast_mean = mean_of([o.mean_zap_time for o in fasts])
            rows.append(
                {
                    "channel": first.name,
                    "decile": first.decile,
                    "popularity": round(first.popularity, 4),
                    "audience": first.audience,
                    "arrivals": mean_of([float(o.arrivals) for o in fasts]),
                    "departures": mean_of([float(o.departures) for o in fasts]),
                    "normal_zap_time": normal_mean,
                    "fast_zap_time": fast_mean,
                    "reduction": reduction_ratio(normal_mean, fast_mean),
                    "fast_p90": mean_of([o.p90 for o in fasts]),
                    "fast_continuity": mean_of([o.continuity for o in fasts]),
                    "unfinished": mean_of([float(o.unfinished) for o in fasts]),
                }
            )
        return rows

    def decile_rows(self) -> List[Dict[str, object]]:
        """One row per populated popularity decile, averaged over repetitions.

        A decile's zap time is the peer-weighted mean over every peer of
        its channels (exact pooling, not a mean of channel means).
        """
        deciles = sorted(
            {outcome.decile for rep in self.reps for outcome in rep.fast}
        )
        rows: List[Dict[str, object]] = []
        for decile in deciles:
            normal_pairs = [
                (o.mean_zap_time, o.n_peers)
                for rep in self.reps
                for o in rep.normal
                if o.decile == decile
            ]
            fast_pairs = [
                (o.mean_zap_time, o.n_peers)
                for rep in self.reps
                for o in rep.fast
                if o.decile == decile
            ]
            channels = {
                o.channel for rep in self.reps for o in rep.fast if o.decile == decile
            }
            normal_mean = weighted_mean(normal_pairs)
            fast_mean = weighted_mean(fast_pairs)
            rows.append(
                {
                    "decile": decile,
                    "channels": len(channels),
                    "peers": sum(n for _, n in fast_pairs) // max(1, len(self.reps)),
                    "normal_zap_time": normal_mean,
                    "fast_zap_time": fast_mean,
                    "reduction": reduction_ratio(normal_mean, fast_mean),
                }
            )
        return rows


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def _execute_channel(
    payload: Tuple[UniversePlan, int, Optional[str]]
) -> Tuple[Tuple[ChannelOutcome, ChannelOutcome], Dict[str, Dict[str, Any]]]:
    """Worker entry point (module-level so it pickles).

    Receives the repetition's already-expanded plan -- planned once in the
    parent -- so workers never re-derive the zap script per channel.
    Returns the paired outcomes plus the channel's per-algorithm unit
    aggregates (built worker-side from the raw zap samples, which never
    leave the worker).
    """
    plan, channel_index, compute_engine = payload
    (normal, fast), (normal_values, fast_values) = run_planned_channel_detailed(
        plan, channel_index, compute_engine=compute_engine
    )
    units = {
        "normal": unit_aggregate(normal_values, normal.unfinished),
        "fast": unit_aggregate(fast_values, fast.unfinished),
    }
    return (normal, fast), units


class UniverseRunner:
    """Executes universe repetitions, optionally in parallel and via a store.

    Parameters
    ----------
    workers:
        Maximum worker processes.  ``1`` runs each repetition on one shared
        engine in-process; ``> 1`` fans out per channel.  Results are
        bit-identical for any value.
    store:
        Optional persistent result store; repetitions found there are
        replayed, missing ones are simulated and persisted.  A replay-only
        store raises :class:`~repro.experiments.store.MissingResultError`
        instead of simulating.
    compute_engine:
        Simulation core for fresh repetitions (``"oracle"``/``"vector"``;
        ``None`` keeps the session default).  Bit-identical by contract,
        so store keys and replays are engine-agnostic.
    shards:
        ``None`` keeps the classic paths above.  An integer routes fresh
        repetitions through the sharded runtime (:mod:`repro.dist`): the
        run's ``repetitions x channels`` units are partitioned into that
        many shards, executed on a long-lived crash-tolerant worker pool,
        checkpoint-journaled against the store, and reduced into streaming
        aggregates (exposed as :attr:`last_aggregates`).  Still
        bit-identical to the serial path at store-document level.
    max_retries / fault_hook / after_shard:
        Sharded-path knobs, forwarded to
        :class:`~repro.dist.runner.ShardedExecutor` (bounded retry,
        fault injection, post-shard callback).  Ignored when ``shards``
        is ``None``.
    progress:
        ``True`` prints a live status line (shards done/total, ETA,
        per-worker heartbeat age) to stderr while the sharded path runs;
        a :class:`~repro.dist.progress.ProgressReporter` instance is
        used as-is (the test seam).  Ignored when ``shards`` is ``None``
        or when every repetition replays from the store.
    """

    def __init__(
        self,
        workers: int = 1,
        store: Optional[BaseResultStore] = None,
        compute_engine: Optional[str] = None,
        shards: Optional[int] = None,
        max_retries: int = 1,
        fault_hook: Optional[Any] = None,
        after_shard: Optional[Any] = None,
        progress: Any = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.workers = int(workers)
        self.store = store
        self.compute_engine = compute_engine
        self.shards = None if shards is None else int(shards)
        self.max_retries = int(max_retries)
        self.fault_hook = fault_hook
        self.after_shard = after_shard
        self.progress = progress
        #: Merged per-algorithm streaming aggregates of the last sharded
        #: run (``None`` on the classic paths or before any run).
        self.last_aggregates: Optional[Dict[str, Any]] = None
        #: Journal shards replayed by the last sharded run.
        self.journal_replayed: int = 0

    def run(
        self,
        spec: UniverseSpec,
        *,
        seed: int = 0,
        repetitions: int = 1,
    ) -> UniverseResult:
        """Run (or replay) ``repetitions`` independent runs of ``spec``."""
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        rep_seeds = [seed + rep for rep in range(repetitions)]
        keys = [universe_fingerprint(spec, rep_seed) for rep_seed in rep_seeds]

        def _load(key: str) -> Optional[UniverseRepResult]:
            document = self.store.load_universe(key)
            if document is None:
                return None
            rep = rep_from_dict(document["rep"])
            # Replays are faithful: re-attach the streaming-aggregate block
            # persisted next to the raw outcome table.  Documents written
            # before the block existed replay with ``aggregates=None``.
            aggregates = document.get("aggregates")
            if aggregates is not None:
                rep = replace(rep, aggregates=aggregates)
            return rep

        # The topology is fixed per spec: persist its net-* document (and
        # hash it) at most once per run, on the first fresh repetition.
        net_key_memo: List[Optional[str]] = []

        def _save(key: str, index: int, rep: UniverseRepResult) -> None:
            if not net_key_memo:
                net_key_memo.append(persist_net_document(self.store, spec.topology))
            document = {
                "universe": spec.name,
                "seed": rep_seeds[index],
                "n_channels": spec.n_channels,
                "n_viewers": spec.n_viewers,
                "spec": spec.to_dict(),
                "rep": rep_to_dict(rep),
            }
            if rep.aggregates is not None:
                # The streaming-aggregate block sits NEXT TO the raw
                # outcome table, never inside it: universe-scale figures
                # read only this key (plus the identification fields), so
                # they stay O(channels), not O(viewers).
                document["aggregates"] = rep.aggregates
            if net_key_memo[0] is not None:
                document["net_key"] = net_key_memo[0]
            self.store.save_universe(key, document)

        if self.shards is not None:
            # Sharded runtime: the plan spans ALL repetition seeds (never
            # just the pending subset) so shard ids -- and the checkpoint
            # journal keyed off the plan fingerprint -- stay stable no
            # matter how many repetitions already persisted.
            from repro.dist import ProgressReporter, ShardedExecutor, ShardPlan

            shard_plan = ShardPlan.build(spec, rep_seeds, self.shards)
            journal_root = None
            if self.store is not None and not self.store.replay_only:
                journal_root = self.store.root / "journal"
            reporter: Optional[ProgressReporter]
            if isinstance(self.progress, ProgressReporter):
                reporter = self.progress
            elif self.progress:
                reporter = ProgressReporter()
            else:
                reporter = None
            executor = ShardedExecutor(
                shard_plan,
                workers=self.workers,
                compute_engine=self.compute_engine,
                journal_root=journal_root,
                max_retries=self.max_retries,
                fault_hook=self.fault_hook,
                after_shard=self.after_shard,
                progress=reporter,
            )
            execute = lambda pending: executor.execute(  # noqa: E731
                [rep_seeds[i] for i in pending]
            )
        else:
            executor = None
            execute = lambda pending: self._execute(  # noqa: E731
                spec, [rep_seeds[i] for i in pending]
            )

        reps, replayed = replay_or_execute(
            self.store,
            keys,
            load=_load,
            execute=execute,
            save=_save,
        )
        if executor is not None:
            # Populated just before the executor yields its last result,
            # so it is final by the time replay_or_execute returns (and
            # stays None when every repetition replayed from the store).
            self.last_aggregates = executor.aggregates
            self.journal_replayed = executor.journal_replayed
        return UniverseResult(
            spec=spec,
            seed=int(seed),
            repetitions=int(repetitions),
            reps=tuple(reps),
            replayed=replayed,
        )

    # ------------------------------------------------------------------ #
    def _execute(
        self, spec: UniverseSpec, seeds: Sequence[int]
    ) -> Iterator[UniverseRepResult]:
        if not seeds:
            return
        if self.workers == 1:
            # The canonical path: all channel meshes of a repetition on one
            # shared engine and clock.
            for rep_seed in seeds:
                yield run_universe_rep(
                    spec, rep_seed, compute_engine=self.compute_engine
                )
            return
        # Parallel path: plan each repetition once, then fan its channels
        # out as per-channel tasks, reassembled in deterministic
        # (seed, channel) order.
        plans = [plan_universe(spec, rep_seed) for rep_seed in seeds]
        payloads = [
            (plan, channel, self.compute_engine)
            for plan in plans
            for channel in range(spec.n_channels)
        ]
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(payloads))
        ) as pool:
            results = list(pool.map(_execute_channel, payloads))
        for rep_index, plan in enumerate(plans):
            offset = rep_index * spec.n_channels
            channel_results = results[offset : offset + spec.n_channels]
            # Ascending channel order: the canonical aggregate fold order
            # shared with the serial and sharded paths.
            aggregator = RepAggregator()
            for pair, units in channel_results:
                for algorithm in PAIRED_ALGORITHMS:
                    aggregator.fold_unit(
                        algorithm, pair[0].decile, units[algorithm]
                    )
            yield UniverseRepResult(
                universe=spec.name,
                seed=plan.seed,
                n_channels=spec.n_channels,
                n_viewers=spec.n_viewers,
                n_zaps=plan.zap_plan.n_zaps,
                surfers=plan.zap_plan.surfers,
                normal=tuple(pair[0] for pair, _ in channel_results),
                fast=tuple(pair[1] for pair, _ in channel_results),
                aggregates=aggregator.to_dict(),
            )


def run_universe(
    spec: UniverseSpec,
    *,
    seed: int = 0,
    repetitions: int = 1,
    workers: int = 1,
    store: Optional[BaseResultStore] = None,
    compute_engine: Optional[str] = None,
    shards: Optional[int] = None,
    progress: Any = False,
) -> UniverseResult:
    """Convenience wrapper: build a :class:`UniverseRunner` and run ``spec``."""
    return UniverseRunner(
        workers=workers,
        store=store,
        compute_engine=compute_engine,
        shards=shards,
        progress=progress,
    ).run(spec, seed=seed, repetitions=repetitions)
