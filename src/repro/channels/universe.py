"""The multi-channel universe: N channel meshes, one clock, scripted zapping.

This module promotes the single-switch session into an ecosystem
simulation.  A :class:`UniverseSpec` declares the lineup (how many
channels, how skewed, how many viewers) and the viewer mix (surfers vs.
loyal); :func:`plan_universe` expands it deterministically into a
:class:`UniversePlan` -- the Zipf lineup, per-channel spawned seeds and the
compiled zapping script; and :class:`UniverseSession` executes every
channel mesh, **both switch algorithms, all channels, against one shared
discrete-event engine and clock**.

Execution model
---------------
Each channel runs the paper's S1 -> S2 source switch over its apportioned
audience: the switch *is* the zap as experienced by every viewer tuned to
(or arriving at) that channel, so one universe run measures the paper's
experiment across a whole lineup at once.  The scripted zap plan drives
each mesh's membership churn -- departures are viewers tuning away
mid-switch, arrivals are viewers zapping in and obtaining neighbours from
the channel :class:`~repro.channels.directory.Directory`.

Channel meshes are causally independent (a mesh never reads another mesh's
state; cross-channel coupling lives entirely in the precomputed plan) and
stochastically independent (per-channel seeds come from
:func:`repro.sim.rng.sequence_seeds`).  Interleaving them on the shared
engine is therefore observationally identical to running each mesh on its
own engine -- which is exactly what :func:`run_universe_channel` does, and
what the parallel runner (:mod:`repro.channels.runner`) fans out over
worker processes.  Same seed, any worker count: bit-identical results.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.channels.directory import Directory
from repro.channels.lineup import Channel, ChannelLineup
from repro.channels.zapping import ZapPlan, ZappingProcess
from repro.churn.model import ChurnConfig
from repro.experiments.config import make_session_config
from repro.metrics.qoe import phase_qoe
from repro.metrics.universe import zap_time_stats
from repro.net.library import topology_names
from repro.sim.clock import round_half_up
from repro.sim.engine import SimulationEngine
from repro.sim.rng import sequence_seeds
from repro.streaming.session import (
    SessionConfig,
    SessionResult,
    SwitchSession,
    build_session_overlay,
)

__all__ = [
    "UniverseSpec",
    "UniversePlan",
    "ChannelOutcome",
    "UniverseRepResult",
    "UniverseSession",
    "plan_universe",
    "channel_mesh_config",
    "run_universe_rep",
    "run_planned_channel",
    "run_planned_channel_detailed",
    "run_universe_channel",
]

#: Algorithms of one paired universe run, in execution order.
PAIRED_ALGORITHMS: Tuple[str, ...] = ("normal", "fast")

#: Session-config fields the universe engine owns; spec overrides must not
#: name them (the plan controls the timeline, population and churn).
_RESERVED_OVERRIDES = frozenset(
    {
        "seed",
        "n_nodes",
        "algorithm",
        "tau",
        "max_time",
        "run_full_horizon",
        "record_rounds",
        "churn",
        "warmup",
        "peer_classes",
        "topology",
        # The compute engine (oracle/vector) is bit-identical by contract
        # and must never rotate spec fingerprints; select it via the
        # runner/CLI ``compute_engine`` parameter instead.
        "engine",
    }
)


@dataclass(frozen=True)
class UniverseSpec:
    """A complete, self-contained description of one channel universe.

    Attributes
    ----------
    name / description:
        Identification (the library registers universes by name).
    n_channels:
        Lineup size.
    n_viewers:
        Total viewer population shared by the lineup (each channel also
        gets its own pair of sources on top).
    zipf_exponent:
        Skew of the popularity distribution (1.0 is the classic Zipf law).
    min_audience:
        Smallest initial audience any channel may receive; must be at
        least the mesh minimum degree so every channel can sustain a
        gossip overlay.
    surfer_fraction:
        Probability that a viewer is a channel surfer.
    surfer_zap_rate / loyal_zap_rate:
        Per-period zap probability of surfers / loyal viewers.
    duration:
        Simulated horizon in seconds (rounded to whole periods).
    tau:
        Scheduling period of every mesh, in seconds.
    topology:
        Name of a library network topology (:mod:`repro.net.library`)
        every channel mesh runs over; empty keeps the paper's ideal
        zero-latency network.  Each mesh gets its own latency fabric
        seeded from its channel seed, so universes stay bit-identical
        between the serial shared-engine path and worker fan-out.
    session_overrides:
        Extra :class:`~repro.streaming.session.SessionConfig` fields
        applied to every channel mesh, as a sorted tuple of pairs (JSON
        primitives only, so specs fingerprint exactly).
    """

    name: str
    description: str = ""
    n_channels: int = 20
    n_viewers: int = 1000
    zipf_exponent: float = 1.0
    min_audience: int = 8
    surfer_fraction: float = 0.3
    surfer_zap_rate: float = 0.15
    loyal_zap_rate: float = 0.01
    duration: float = 50.0
    tau: float = 1.0
    topology: str = ""
    session_overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("universe needs a non-empty name")
        if self.topology and self.topology not in topology_names():
            raise ValueError(
                f"unknown topology {self.topology!r}; known: {topology_names()}"
            )
        if self.n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {self.n_channels}")
        if self.duration <= 0 or self.tau <= 0:
            raise ValueError("duration and tau must be positive")
        for attr in ("surfer_fraction", "surfer_zap_rate", "loyal_zap_rate"):
            value = getattr(self, attr)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        object.__setattr__(
            self,
            "session_overrides",
            tuple(sorted((str(k), v) for k, v in dict(self.session_overrides).items())),
        )
        for key, value in self.session_overrides:
            if key in _RESERVED_OVERRIDES:
                raise ValueError(
                    f"session override {key!r} is owned by the universe engine"
                )
            if value is not None and not isinstance(value, (bool, int, float, str)):
                raise ValueError(
                    f"session override {key!r} must be a JSON primitive, "
                    f"got {type(value).__name__}"
                )
        if self.min_audience < self.min_degree:
            raise ValueError(
                f"min_audience must be at least the mesh min_degree "
                f"({self.min_degree}), got {self.min_audience}"
            )
        if self.n_viewers < self.n_channels * self.min_audience:
            raise ValueError(
                f"need at least n_channels * min_audience = "
                f"{self.n_channels * self.min_audience} viewers, got {self.n_viewers}"
            )

    # ------------------------------------------------------------------ #
    @property
    def min_degree(self) -> int:
        """The mesh minimum degree ``M`` the channel meshes will run with."""
        return int(dict(self.session_overrides).get("min_degree", 5))

    @property
    def n_periods(self) -> int:
        """Whole scheduling periods the universe simulates."""
        return max(1, round_half_up(self.duration / self.tau))

    @property
    def horizon(self) -> float:
        """Effective simulated horizon (``n_periods * tau``) in seconds."""
        return self.n_periods * self.tau

    def overrides_dict(self) -> Dict[str, Any]:
        """The session-config overrides as a plain dictionary."""
        return dict(self.session_overrides)

    def scaled_to(
        self, *, n_channels: Optional[int] = None, n_viewers: Optional[int] = None
    ) -> "UniverseSpec":
        """A copy of this spec at a different lineup/population size."""
        return replace(
            self,
            n_channels=int(n_channels) if n_channels is not None else self.n_channels,
            n_viewers=int(n_viewers) if n_viewers is not None else self.n_viewers,
        )

    def with_topology(self, topology: str) -> "UniverseSpec":
        """A copy of this spec running over a different network topology."""
        return replace(self, topology=str(topology))

    # ------------------------------------------------------------------ #
    # dict round trip (store fingerprinting)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dictionary form; see :meth:`from_dict`."""
        return {
            "name": self.name,
            "description": self.description,
            "n_channels": self.n_channels,
            "n_viewers": self.n_viewers,
            "zipf_exponent": self.zipf_exponent,
            "min_audience": self.min_audience,
            "surfer_fraction": self.surfer_fraction,
            "surfer_zap_rate": self.surfer_zap_rate,
            "loyal_zap_rate": self.loyal_zap_rate,
            "duration": self.duration,
            "tau": self.tau,
            "topology": self.topology,
            "session_overrides": {k: v for k, v in self.session_overrides},
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "UniverseSpec":
        """Rebuild a spec from :meth:`to_dict` output (exact round trip)."""
        return UniverseSpec(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            n_channels=int(payload["n_channels"]),
            n_viewers=int(payload["n_viewers"]),
            zipf_exponent=float(payload["zipf_exponent"]),
            min_audience=int(payload["min_audience"]),
            surfer_fraction=float(payload["surfer_fraction"]),
            surfer_zap_rate=float(payload["surfer_zap_rate"]),
            loyal_zap_rate=float(payload["loyal_zap_rate"]),
            duration=float(payload["duration"]),
            tau=float(payload["tau"]),
            topology=str(payload.get("topology", "")),
            session_overrides=tuple(
                sorted(dict(payload.get("session_overrides", {})).items())
            ),
        )


@dataclass(frozen=True)
class UniversePlan:
    """The deterministic expansion of ``(spec, seed)``.

    ``channel_seeds[c]`` seeds everything stochastic about channel ``c``
    (its overlay, bandwidth draws, membership and churn selection);
    ``zap_plan`` scripts the cross-channel traffic.  The plan is a pure
    function of the spec and the repetition seed, so any process --
    the serial universe session or an isolated channel worker -- derives
    the identical plan locally instead of shipping state around.
    """

    spec: UniverseSpec
    seed: int
    lineup: ChannelLineup
    channel_seeds: Tuple[int, ...]
    zap_plan: ZapPlan
    directory: Directory

    @property
    def n_channels(self) -> int:
        """Lineup size."""
        return self.lineup.n_channels


def plan_universe(spec: UniverseSpec, seed: int) -> UniversePlan:
    """Expand ``spec`` under ``seed`` into its :class:`UniversePlan`."""
    seeds = sequence_seeds(seed, spec.n_channels + 1)
    universe_seed, channel_seeds = seeds[0], tuple(seeds[1:])
    lineup = ChannelLineup.build(
        spec.n_channels,
        spec.n_viewers,
        exponent=spec.zipf_exponent,
        min_audience=spec.min_audience,
    )
    directory = Directory(
        lineup, min_degree=spec.min_degree, channel_seeds=channel_seeds
    )
    zapping = ZappingProcess(
        lineup,
        directory,
        surfer_fraction=spec.surfer_fraction,
        surfer_zap_rate=spec.surfer_zap_rate,
        loyal_zap_rate=spec.loyal_zap_rate,
        rng=np.random.default_rng(universe_seed),
    )
    zap_plan = zapping.generate(spec.n_periods)
    return UniversePlan(
        spec=spec,
        seed=int(seed),
        lineup=lineup,
        channel_seeds=channel_seeds,
        zap_plan=zap_plan,
        directory=directory,
    )


def channel_mesh_config(
    spec: UniverseSpec,
    channel: Channel,
    channel_seed: int,
    algorithm: str,
    *,
    compute_engine: Optional[str] = None,
) -> SessionConfig:
    """The session configuration of one channel's mesh.

    The mesh holds the channel's audience plus its two sources; base churn
    is disabled because the zap plan scripts membership changes as exact
    per-period counts.  ``compute_engine`` picks the simulation core
    (``"oracle"``/``"vector"``; ``None`` keeps the session default) -- not
    to be confused with the shared :class:`SimulationEngine` clock.
    """
    overrides = spec.overrides_dict()
    overrides.update(
        tau=spec.tau,
        max_time=spec.horizon,
        record_rounds=True,
        run_full_horizon=True,
        churn=ChurnConfig.disabled(),
        topology=spec.topology,
    )
    if compute_engine is not None:
        overrides["engine"] = compute_engine
    return make_session_config(
        channel.audience + 2,
        algorithm=algorithm,
        seed=int(channel_seed),
        **overrides,
    )


def _build_channel_sessions(
    plan: UniversePlan,
    channel_index: int,
    *,
    engine: Optional[SimulationEngine] = None,
    directory: Optional[Directory] = None,
    compute_engine: Optional[str] = None,
) -> Dict[str, SwitchSession]:
    """Both algorithms' mesh sessions for one channel (paired on one overlay)."""
    spec = plan.spec
    channel = plan.lineup.channels[channel_index]
    channel_seed = plan.channel_seeds[channel_index]
    directory = directory if directory is not None else plan.directory
    first = channel_mesh_config(
        spec, channel, channel_seed, PAIRED_ALGORITHMS[0],
        compute_engine=compute_engine,
    )
    overlay = build_session_overlay(
        first.n_nodes,
        channel_seed,
        min_degree=first.min_degree,
        trace_mean_degree=first.trace_mean_degree,
    )
    directives = plan.zap_plan.channel_directives(channel_index)
    sessions: Dict[str, SwitchSession] = {}
    for algorithm in PAIRED_ALGORITHMS:
        config = channel_mesh_config(
            spec, channel, channel_seed, algorithm, compute_engine=compute_engine
        )
        sessions[algorithm] = SwitchSession(
            config,
            overlay=overlay,
            directives=directives,
            engine=engine,
            label=channel.name,
            membership_factory=directory.membership_factory(channel_index, algorithm),
        )
    return sessions


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChannelOutcome:
    """One channel mesh's zap-time and QoE summary under one algorithm.

    Times are seconds from the switch instant (the zap, for the viewers on
    the channel); ``mean_zap_time`` and the percentiles are over per-peer
    switch *completion* times -- the moment the new stream's playback
    starts, which is what a zapping viewer perceives.
    """

    channel: int
    name: str
    popularity: float
    decile: int
    algorithm: str
    audience: int
    n_peers: int
    arrivals: int
    departures: int
    mean_zap_time: float
    p50: float
    p90: float
    p99: float
    unfinished: int
    stall_periods: int
    continuity: float
    overhead_ratio: float


@dataclass(frozen=True)
class UniverseRepResult:
    """Both algorithms' channel outcomes for one universe repetition.

    ``aggregates`` is the repetition's streaming-aggregate block
    (:mod:`repro.channels.aggregates`): per algorithm, a quantile sketch
    and a stream accumulator over the pooled per-peer zap times, overall
    and per popularity decile.  Freshly simulated repetitions always carry
    it (every execution path folds it identically); repetitions replayed
    from the store leave it ``None`` -- figure generation reads the block
    straight off the store document instead.
    """

    universe: str
    seed: int
    n_channels: int
    n_viewers: int
    n_zaps: int
    surfers: int
    normal: Tuple[ChannelOutcome, ...]
    fast: Tuple[ChannelOutcome, ...]
    aggregates: Optional[Dict[str, Any]] = None

    def outcomes(self, algorithm: str) -> Tuple[ChannelOutcome, ...]:
        """The per-channel outcomes of one algorithm."""
        if algorithm == "normal":
            return self.normal
        if algorithm == "fast":
            return self.fast
        raise KeyError(f"unknown algorithm {algorithm!r}")


def _channel_outcome(
    plan: UniversePlan,
    channel_index: int,
    algorithm: str,
    result: SessionResult,
) -> ChannelOutcome:
    channel = plan.lineup.channels[channel_index]
    stats = zap_time_stats(result.metrics.outcomes, horizon=result.metrics.horizon)
    qoe = phase_qoe(
        result.metrics.rounds, [("zapping", 0.0, plan.spec.horizon)]
    )[0]
    return ChannelOutcome(
        channel=channel.index,
        name=channel.name,
        popularity=channel.popularity,
        decile=plan.lineup.decile(channel.index),
        algorithm=algorithm,
        audience=channel.audience,
        n_peers=stats.peers,
        arrivals=sum(count for _, count in plan.zap_plan.arrivals[channel_index]),
        departures=sum(count for _, count in plan.zap_plan.departures[channel_index]),
        mean_zap_time=stats.mean,
        p50=stats.p50,
        p90=stats.p90,
        p99=stats.p99,
        unfinished=stats.unfinished,
        stall_periods=qoe.stall_periods,
        continuity=qoe.continuity_index,
        overhead_ratio=result.overhead_ratio,
    )


def _rep_result(
    plan: UniversePlan,
    outcomes: Dict[str, List[ChannelOutcome]],
    aggregates: Optional[Dict[str, Any]] = None,
) -> UniverseRepResult:
    return UniverseRepResult(
        universe=plan.spec.name,
        seed=plan.seed,
        n_channels=plan.n_channels,
        n_viewers=plan.spec.n_viewers,
        n_zaps=plan.zap_plan.n_zaps,
        surfers=plan.zap_plan.surfers,
        normal=tuple(outcomes["normal"]),
        fast=tuple(outcomes["fast"]),
        aggregates=aggregates,
    )


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
class UniverseSession:
    """One universe repetition on a single shared engine (see module docstring).

    All ``2 * n_channels`` mesh sessions (both algorithms of every channel)
    are attached to one :class:`~repro.sim.engine.SimulationEngine`; running
    it interleaves every mesh's scheduling rounds on one clock.  Finished
    meshes retire their periodic processes individually, so a small channel
    completing its switch early never stalls -- or stops -- the rest of the
    lineup.
    """

    def __init__(
        self,
        spec: UniverseSpec,
        seed: int = 0,
        *,
        compute_engine: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.seed = int(seed)
        self.plan = plan_universe(spec, seed)
        self.engine = SimulationEngine()
        self.directory = self.plan.directory
        self.sessions: Dict[Tuple[int, str], SwitchSession] = {}
        for channel_index in range(self.plan.n_channels):
            built = _build_channel_sessions(
                self.plan, channel_index, engine=self.engine,
                directory=self.directory, compute_engine=compute_engine,
            )
            for algorithm, session in built.items():
                self.sessions[(channel_index, algorithm)] = session
        self.wallclock_seconds = 0.0

    def run(self) -> UniverseRepResult:
        """Drive every mesh to the horizon and summarise per channel."""
        from repro.channels.aggregates import RepAggregator, unit_aggregate
        from repro.metrics.universe import zap_time_values

        started = _wallclock.perf_counter()
        self.engine.run_until(self.spec.horizon + self.spec.tau)
        self.wallclock_seconds = _wallclock.perf_counter() - started
        outcomes: Dict[str, List[ChannelOutcome]] = {a: [] for a in PAIRED_ALGORITHMS}
        # Ascending channel order -- the canonical fold order every
        # execution path shares (see repro.channels.aggregates).
        aggregator = RepAggregator()
        for channel_index in range(self.plan.n_channels):
            for algorithm in PAIRED_ALGORITHMS:
                session = self.sessions[(channel_index, algorithm)]
                result = session.finalize()
                outcome = _channel_outcome(
                    self.plan, channel_index, algorithm, result
                )
                outcomes[algorithm].append(outcome)
                samples, _ = zap_time_values(
                    result.metrics.outcomes, horizon=result.metrics.horizon
                )
                aggregator.fold_unit(
                    algorithm, outcome.decile, unit_aggregate(samples, outcome.unfinished)
                )
        return _rep_result(self.plan, outcomes, aggregates=aggregator.to_dict())


def run_universe_rep(
    spec: UniverseSpec, seed: int, *, compute_engine: Optional[str] = None
) -> UniverseRepResult:
    """Run one repetition of ``spec`` on a shared engine (the serial path)."""
    return UniverseSession(spec, seed, compute_engine=compute_engine).run()


def run_planned_channel(
    plan: UniversePlan,
    channel_index: int,
    *,
    compute_engine: Optional[str] = None,
) -> Tuple[ChannelOutcome, ChannelOutcome]:
    """Run one channel of an already-expanded plan in isolation.

    Builds only this channel's meshes (each on its own engine) and returns
    the paired ``(normal, fast)`` outcomes -- bit-identical to the
    corresponding entries of :func:`run_universe_rep`.  The parallel runner
    plans once per repetition and ships the (small, picklable) plan to
    each worker instead of re-deriving it per channel.
    """
    outcomes, _ = run_planned_channel_detailed(
        plan, channel_index, compute_engine=compute_engine
    )
    return outcomes


def run_planned_channel_detailed(
    plan: UniversePlan,
    channel_index: int,
    *,
    compute_engine: Optional[str] = None,
) -> Tuple[
    Tuple[ChannelOutcome, ChannelOutcome], Tuple[List[float], List[float]]
]:
    """One planned channel's paired outcomes *plus* the raw zap samples.

    Returns ``((normal, fast), (normal_values, fast_values))`` where the
    value lists are the per-peer zap-time samples the outcomes' statistics
    were computed from (:func:`~repro.metrics.universe.zap_time_values`).
    The sharded runtime (:mod:`repro.dist`) folds those samples into
    mergeable per-shard sketches instead of shipping them upstream, so the
    parent's memory stays O(shard).
    """
    from repro.metrics.universe import zap_time_values

    sessions = _build_channel_sessions(
        plan, channel_index, compute_engine=compute_engine
    )
    outcomes: List[ChannelOutcome] = []
    values: List[List[float]] = []
    for algorithm in PAIRED_ALGORITHMS:
        result = sessions[algorithm].run()
        outcomes.append(_channel_outcome(plan, channel_index, algorithm, result))
        samples, _ = zap_time_values(
            result.metrics.outcomes, horizon=result.metrics.horizon
        )
        values.append(samples)
    return (outcomes[0], outcomes[1]), (values[0], values[1])


def run_universe_channel(
    spec: UniverseSpec,
    seed: int,
    channel_index: int,
    *,
    compute_engine: Optional[str] = None,
) -> Tuple[ChannelOutcome, ChannelOutcome]:
    """Run one channel of one repetition in isolation (plan + execute)."""
    return run_planned_channel(
        plan_universe(spec, seed), channel_index, compute_engine=compute_engine
    )
