"""The channel directory: the universe's tracker service.

Real gossip streaming deployments bootstrap through a tracker: a joining
(or zapping) client asks the tracker for the channel it wants, and the
tracker answers with a handful of alive members of *that channel's*
overlay.  The single-switch reproduction never needed one -- there was only
one overlay, so :class:`~repro.overlay.membership.MembershipService` could
assume "the" overlay implicitly.  A multi-channel universe breaks that
assumption: partner selection must be scoped to the target channel, and
somebody has to know which viewer watches what.

:class:`Directory` is that somebody.  It keeps two registries:

* the **viewer registry** -- which logical viewer is tuned to which
  channel (maintained by the :class:`~repro.channels.zapping.ZappingProcess`
  as it scripts tune-away events), and
* the **mesh registry** -- one per-channel
  :class:`~repro.overlay.membership.MembershipService` per running mesh,
  created through :meth:`membership_factory` and handed to the channel's
  :class:`~repro.streaming.session.SwitchSession`.  Joining and zapping
  peers thereby obtain their ``M`` alive neighbours *on their target
  channel*, and neighbour-set repair after departures draws partners from
  the same channel-scoped pool (directory-backed repair).

Determinism: each channel's membership randomness is seeded from that
channel's spawned seed (see :func:`repro.sim.rng.sequence_seeds`), and the
factory derives identical generators no matter which process builds the
mesh -- the property that makes the universe bit-identical between the
shared-engine serial path and per-channel worker processes.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.channels.lineup import ChannelLineup
from repro.overlay.membership import MembershipService
from repro.overlay.topology import Overlay
from repro.sim.rng import derive_seed

__all__ = ["Directory"]


class Directory:
    """Tracker of a multi-channel universe (see module docstring).

    Parameters
    ----------
    lineup:
        The channel lineup being served.
    min_degree:
        Target neighbour count ``M`` for every channel mesh.
    channel_seeds:
        One spawned seed per channel (``sequence_seeds``); membership
        randomness for channel ``c`` derives from ``channel_seeds[c]``.
    """

    def __init__(
        self,
        lineup: ChannelLineup,
        *,
        min_degree: int,
        channel_seeds: Sequence[int],
    ) -> None:
        if len(channel_seeds) != lineup.n_channels:
            raise ValueError(
                f"need one seed per channel: {lineup.n_channels} channels, "
                f"{len(channel_seeds)} seeds"
            )
        self.lineup = lineup
        self.min_degree = int(min_degree)
        self.channel_seeds = tuple(int(s) for s in channel_seeds)
        self._channel_of: Dict[int, int] = {}
        self._audiences: List[int] = [0] * lineup.n_channels
        #: per-(channel, algorithm) membership services of running meshes
        self.services: Dict[Tuple[int, str], MembershipService] = {}
        #: cumulative tune-away events recorded through :meth:`tune`
        self.zaps = 0

    # ------------------------------------------------------------------ #
    # viewer registry
    # ------------------------------------------------------------------ #
    def register_viewer(self, viewer_id: int, channel_index: int) -> None:
        """Register a viewer as initially tuned to ``channel_index``."""
        self._check_channel(channel_index)
        if viewer_id in self._channel_of:
            raise ValueError(f"viewer {viewer_id} is already registered")
        self._channel_of[viewer_id] = int(channel_index)
        self._audiences[channel_index] += 1

    def channel_of(self, viewer_id: int) -> int:
        """The channel a registered viewer is currently tuned to."""
        return self._channel_of[viewer_id]

    def tune(self, viewer_id: int, to_channel: int) -> int:
        """Retune a viewer to ``to_channel``; returns the channel it left."""
        self._check_channel(to_channel)
        from_channel = self._channel_of[viewer_id]
        if from_channel == to_channel:
            return from_channel
        self._channel_of[viewer_id] = int(to_channel)
        self._audiences[from_channel] -= 1
        self._audiences[to_channel] += 1
        self.zaps += 1
        return from_channel

    def audience(self, channel_index: int) -> int:
        """Current number of registered viewers tuned to a channel."""
        self._check_channel(channel_index)
        return self._audiences[channel_index]

    def audiences(self) -> Tuple[int, ...]:
        """Current audiences of every channel, in lineup order."""
        return tuple(self._audiences)

    # ------------------------------------------------------------------ #
    # mesh registry
    # ------------------------------------------------------------------ #
    def membership_factory(
        self, channel_index: int, algorithm: str
    ) -> Callable[[Overlay, FrozenSet[int]], MembershipService]:
        """A membership-service factory for one channel mesh.

        The returned callable matches the ``membership_factory`` hook of
        :class:`~repro.streaming.session.SwitchSession`: called with the
        session's overlay and protected source ids, it creates -- and
        registers under ``(channel_index, algorithm)`` -- a channel-scoped
        :class:`MembershipService`.  Both algorithms of a paired run get
        generators with identical seeds (derived from the channel seed
        only), so partner selection stays paired exactly like every other
        random draw of the mesh.
        """
        self._check_channel(channel_index)
        seed = derive_seed(self.channel_seeds[channel_index], "channel-membership")

        def factory(
            overlay: Overlay, protected: Iterable[int] = ()
        ) -> MembershipService:
            service = MembershipService(
                overlay,
                self.min_degree,
                np.random.default_rng(seed),
                protected=protected,
            )
            self.services[(channel_index, str(algorithm))] = service
            return service

        return factory

    def service_for(
        self, channel_index: int, algorithm: str
    ) -> Optional[MembershipService]:
        """The registered membership service of one mesh (or ``None``)."""
        return self.services.get((channel_index, str(algorithm)))

    # ------------------------------------------------------------------ #
    def _check_channel(self, channel_index: int) -> None:
        if not (0 <= channel_index < self.lineup.n_channels):
            raise ValueError(
                f"channel index must be in [0, {self.lineup.n_channels}), "
                f"got {channel_index}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Directory(channels={self.lineup.n_channels}, "
            f"viewers={len(self._channel_of)}, meshes={len(self.services)}, "
            f"zaps={self.zaps})"
        )
