"""The zapping process: scripted cross-channel tune-away events.

Viewers of an IPTV lineup are not a homogeneous crowd: a minority of
*surfers* hop channels constantly while the *loyal* majority stays put for
whole programmes.  :class:`ZappingProcess` models that mix.  Each
scheduling period every viewer zaps with its class's per-period
probability; the destination is drawn from the lineup's Zipf popularity
(renormalised to exclude the current channel -- you cannot zap to where
you already are).  Each zap is recorded with the
:class:`~repro.channels.directory.Directory` (the tracker learns the
viewer's new channel) and compiled into per-channel, per-period
**arrival/departure counts**.

Those counts are what the channel meshes execute: a departure is a peer
leaving the mesh mid-switch, an arrival is a fresh peer asking the
directory for neighbours on its new channel -- i.e. every tune-away is
exactly the paper's source switch from the viewer's point of view, plus
membership churn on both meshes involved.  The plan is generated once,
up front, from a single spawned generator, which keeps channel meshes
causally independent: a mesh consumes its scripted counts without ever
observing another mesh's state, the property that lets the universe run
channels on one shared engine *or* on isolated worker processes with
bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.channels.directory import Directory
from repro.channels.lineup import ChannelLineup
from repro.streaming.session import PeriodDirective

__all__ = ["ZapEvent", "ZapPlan", "ZappingProcess"]


@dataclass(frozen=True)
class ZapEvent:
    """One scripted channel change: viewer, period and the channels involved."""

    period: int
    viewer: int
    from_channel: int
    to_channel: int


@dataclass(frozen=True)
class ZapPlan:
    """The compiled zapping script of one universe repetition.

    Attributes
    ----------
    n_periods:
        Scheduling periods the plan covers (periods are 1-based).
    events:
        Every zap in generation order.
    arrivals / departures:
        Per channel, a tuple of ``(period, count)`` pairs -- the counts the
        channel's mesh executes as joins/leaves in that period.
    surfers:
        How many viewers the class draw made surfers.
    final_audiences:
        Audience of each channel after the last period (bookkeeping).
    """

    n_periods: int
    events: Tuple[ZapEvent, ...]
    arrivals: Tuple[Tuple[Tuple[int, int], ...], ...]
    departures: Tuple[Tuple[Tuple[int, int], ...], ...]
    surfers: int
    final_audiences: Tuple[int, ...]

    @property
    def n_zaps(self) -> int:
        """Total scripted channel changes."""
        return len(self.events)

    def channel_directives(self, channel_index: int) -> Dict[int, PeriodDirective]:
        """The per-period directives channel ``channel_index``'s mesh runs.

        Arrivals become exact join counts, departures exact leave counts
        (see :class:`~repro.streaming.session.PeriodDirective`); periods
        without traffic are omitted.
        """
        joins = dict(self.arrivals[channel_index])
        leaves = dict(self.departures[channel_index])
        directives: Dict[int, PeriodDirective] = {}
        for period in sorted(set(joins) | set(leaves)):
            directives[period] = PeriodDirective(
                leave_count=leaves.get(period),
                join_count=joins.get(period),
                phase="zapping",
            )
        return directives


class ZappingProcess:
    """Generates the deterministic zap plan of one universe repetition.

    Parameters
    ----------
    lineup:
        The channel lineup (audiences define the initial assignment:
        viewers are numbered 0.. and fill channels in lineup order).
    directory:
        The universe's tracker; viewers are registered here and every zap
        is recorded through :meth:`Directory.tune`.
    surfer_fraction:
        Probability that a viewer is a surfer (class draw, one per viewer).
    surfer_zap_rate / loyal_zap_rate:
        Per-period zap probability of each class.
    rng:
        The universe-level generator (spawned from the repetition seed).
    """

    def __init__(
        self,
        lineup: ChannelLineup,
        directory: Directory,
        *,
        surfer_fraction: float,
        surfer_zap_rate: float,
        loyal_zap_rate: float,
        rng: np.random.Generator,
    ) -> None:
        for name, value in (
            ("surfer_fraction", surfer_fraction),
            ("surfer_zap_rate", surfer_zap_rate),
            ("loyal_zap_rate", loyal_zap_rate),
        ):
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.lineup = lineup
        self.directory = directory
        self.surfer_fraction = float(surfer_fraction)
        self.surfer_zap_rate = float(surfer_zap_rate)
        self.loyal_zap_rate = float(loyal_zap_rate)
        self._rng = rng

    def generate(self, n_periods: int) -> ZapPlan:
        """Script ``n_periods`` of zapping over the whole viewer population."""
        if n_periods < 0:
            raise ValueError(f"n_periods must be non-negative, got {n_periods}")
        lineup = self.lineup
        n_channels = lineup.n_channels
        n_viewers = lineup.total_audience
        rng = self._rng

        is_surfer = rng.random(n_viewers) < self.surfer_fraction
        zap_prob = np.where(is_surfer, self.surfer_zap_rate, self.loyal_zap_rate)
        current = np.repeat(np.arange(n_channels), lineup.audiences())
        for viewer in range(n_viewers):
            self.directory.register_viewer(viewer, int(current[viewer]))

        popularity = lineup.popularity_array()
        arrivals: List[Dict[int, int]] = [dict() for _ in range(n_channels)]
        departures: List[Dict[int, int]] = [dict() for _ in range(n_channels)]
        events = []
        for period in range(1, n_periods + 1):
            zapping = np.nonzero(rng.random(n_viewers) < zap_prob)[0]
            for viewer in zapping:
                origin = int(current[viewer])
                if n_channels == 1:
                    continue  # nowhere else to go
                weights = popularity.copy()
                weights[origin] = 0.0
                weights /= weights.sum()
                destination = int(rng.choice(n_channels, p=weights))
                current[viewer] = destination
                self.directory.tune(int(viewer), destination)
                departures[origin][period] = departures[origin].get(period, 0) + 1
                arrivals[destination][period] = arrivals[destination].get(period, 0) + 1
                events.append(
                    ZapEvent(
                        period=period,
                        viewer=int(viewer),
                        from_channel=origin,
                        to_channel=destination,
                    )
                )

        return ZapPlan(
            n_periods=int(n_periods),
            events=tuple(events),
            arrivals=tuple(
                tuple(sorted(channel.items())) for channel in arrivals
            ),
            departures=tuple(
                tuple(sorted(channel.items())) for channel in departures
            ),
            surfers=int(is_surfer.sum()),
            final_audiences=tuple(
                int(v) for v in np.bincount(current, minlength=n_channels)
            ),
        )
