"""Experiment harness: configurations, runners, sweeps and figure generators.

This subpackage turns the simulator into the paper's evaluation:

* :mod:`repro.experiments.config` -- named parameter sets (the paper's
  defaults, reduced laptop-scale defaults used by the benchmark suite, the
  size sweeps of Figures 6--8 and 10--12);
* :mod:`repro.experiments.runner` -- run one configuration, or a paired
  fast-vs-normal comparison on identical random draws;
* :mod:`repro.experiments.sweeps` -- network-size sweeps with caching so
  the figure generators that share a sweep (6/7/8 and 10/11/12) do not
  re-simulate;
* :mod:`repro.experiments.store` -- the persistent on-disk result store
  (JSON keyed by configuration fingerprints) that makes every experiment
  incremental and turns figure regeneration into replay;
* :mod:`repro.experiments.parallel` -- deterministic process-pool fan-out
  of ``(size, repetition)`` sweep pairs, bit-identical to serial runs;
* :mod:`repro.experiments.figures` -- one generator per paper figure,
  returning the plotted series/rows as plain data (the benchmark harness
  prints them; nothing here depends on matplotlib);
* :mod:`repro.experiments.scenarios` -- the named end-to-end scenarios used
  by the examples and the CLI.
"""

from repro.experiments.config import (
    BENCH_SWEEP_SIZES,
    PAPER_SWEEP_SIZES,
    ExperimentDefaults,
    make_session_config,
)
from repro.experiments.figures import (
    FigureResult,
    figure2,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    generate_figure,
)
from repro.experiments.parallel import ParallelSweepRunner, SweepTask, build_sweep_tasks
from repro.experiments.runner import PairedRunResult, run_pair, run_single
from repro.experiments.store import (
    MissingResultError,
    ResultStore,
    pair_fingerprint,
    sweep_fingerprint,
)
from repro.experiments.sweeps import SizeSweepResult, SweepPoint, run_size_sweep

__all__ = [
    "ResultStore",
    "MissingResultError",
    "pair_fingerprint",
    "sweep_fingerprint",
    "ParallelSweepRunner",
    "SweepTask",
    "build_sweep_tasks",
    "ExperimentDefaults",
    "make_session_config",
    "PAPER_SWEEP_SIZES",
    "BENCH_SWEEP_SIZES",
    "run_single",
    "run_pair",
    "PairedRunResult",
    "run_size_sweep",
    "SizeSweepResult",
    "SweepPoint",
    "FigureResult",
    "figure2",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "generate_figure",
]
