"""Persistent on-disk result store for simulation results.

Every paper-grade experiment in this repository boils down to paired
fast-vs-normal simulation runs, and those runs are expensive (minutes at
benchmark scale, hours at the paper's 8000-node scale).  This module makes
them *incremental*: results are written to a directory of JSON documents,
keyed by a stable content hash of the full :class:`SessionConfig` (seed
included) plus the package's code version, and every consumer -- the size
sweeps, the figure generators, the benchmark harness and the CLI -- reads
through the store before simulating.  Regenerating a figure from a warm
store touches no simulator code at all; it is pure replay.

Two granularities are stored:

``pair`` entries
    One paired fast-vs-normal comparison (both full
    :class:`~repro.streaming.session.SessionResult` payloads) for one
    ``(SessionConfig, seed)``.  The ``algorithm`` field is excluded from
    the key: a pair always contains both algorithms.

``sweep`` entries
    One aggregated :class:`~repro.experiments.sweeps.SizeSweepResult`,
    keyed by the sweep parameters.  Sweep entries round-trip the result
    exactly and let a repeated sweep invocation return without opening the
    per-pair documents.

Higher layers add their own kinds through the same envelope: ``workload``
documents (one workload repetition, :mod:`repro.workloads.runner`),
``universe`` documents (one channel-universe repetition,
:mod:`repro.channels.runner`) and ``net`` documents (the full
:class:`~repro.net.topology.NetTopology` a latency-fabric run executed
over, keyed by its content hash -- see :func:`net_fingerprint`).

Keys change whenever the configuration *or* the code version changes, so a
store never serves results produced by a different simulator; stale
entries are simply never read again (``repro-gossip store clear`` removes
them).

Examples
--------
>>> import tempfile
>>> store = ResultStore(tempfile.mkdtemp())
>>> len(store)
0
>>> store.clear()
0
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.churn.model import ChurnConfig
from repro.metrics.report import metrics_from_dict, metrics_to_dict
from repro.net.topology import NetTopology
from repro.obs.telemetry import get_telemetry
from repro.streaming.bandwidth import PeerClass
from repro.streaming.segment import SwitchPlan
from repro.streaming.session import SessionConfig, SessionResult

__all__ = [
    "SCHEMA_VERSION",
    "MissingResultError",
    "code_version",
    "stable_hash",
    "config_to_dict",
    "config_from_dict",
    "pair_fingerprint",
    "sweep_fingerprint",
    "net_fingerprint",
    "telemetry_fingerprint",
    "persist_net_document",
    "persist_telemetry_document",
    "session_result_to_dict",
    "session_result_from_dict",
    "sweep_to_dict",
    "sweep_from_dict",
    "StoreEntry",
    "BaseResultStore",
    "ResultStore",
    "STORE_BACKENDS",
    "open_store",
    "migrate_store",
    "default_results_dir",
    "replay_or_execute",
]

#: Bumped whenever the on-disk layout changes; part of every key, so a
#: schema change silently invalidates old entries instead of misreading them.
SCHEMA_VERSION: int = 1

#: Environment variable consulted for the default store location.
RESULTS_DIR_ENV: str = "REPRO_RESULTS_DIR"


class MissingResultError(KeyError):
    """A replay-only store was asked for a result it does not hold."""

    def __init__(self, key: str) -> None:
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"result {self.key!r} is not in the store; run the same command "
            "without --from-store (or with more workers) to populate it first"
        )


def code_version() -> str:
    """The package version that keys store entries.

    Imported lazily to avoid an import cycle during ``repro`` package
    initialisation.
    """
    from repro import __version__

    return __version__


def default_results_dir() -> Optional[str]:
    """The results directory named by ``REPRO_RESULTS_DIR`` (or ``None``)."""
    value = os.environ.get(RESULTS_DIR_ENV, "").strip()
    return value or None


# --------------------------------------------------------------------------- #
# configuration serialisation and fingerprints
# --------------------------------------------------------------------------- #
def config_to_dict(config: SessionConfig) -> Dict[str, Any]:
    """JSON-friendly dictionary form of a :class:`SessionConfig`.

    The execution engine is stripped: like the worker count it is an
    execution detail, not an experiment parameter -- the vector engine is
    bit-identical to the oracle (enforced by the differential suite), so
    documents and fingerprints must not depend on which engine ran.
    """
    payload = asdict(config)
    payload.pop("engine", None)
    return payload


def config_from_dict(payload: Mapping[str, Any]) -> SessionConfig:
    """Rebuild a :class:`SessionConfig` from :func:`config_to_dict` output."""
    data = dict(payload)
    churn = data.pop("churn", None)
    if churn is not None:
        data["churn"] = ChurnConfig(**dict(churn))
    classes = data.pop("peer_classes", None)
    if classes:
        data["peer_classes"] = tuple(PeerClass(**dict(cls)) for cls in classes)
    return SessionConfig(**data)


def stable_hash(payload: Mapping[str, Any]) -> str:
    """Deterministic short hash of a JSON-serialisable mapping.

    Used for every store key; exposed so higher layers (e.g. the workload
    engine) can fingerprint their own document kinds consistently.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


#: Backwards-compatible private alias (pre-workload callers).
_stable_hash = stable_hash


def persist_net_document(
    store: Optional["ResultStore"], topology_name: str
) -> Optional[str]:
    """Persist a named library topology as a ``net-*`` document.

    The shared convenience used by every store-backed runner: whenever a
    run executed over ``SessionConfig.topology``, the topology it resolved
    to is written (idempotently) alongside the result documents.  Returns
    the ``net-*`` key, or ``None`` when there is nothing to persist.
    """
    if store is None or not topology_name:
        return None
    from repro.net.library import get_topology

    topology = get_topology(topology_name)
    key = net_fingerprint(topology)
    store.save_net(key, topology)
    return key


def net_fingerprint(topology: "NetTopology", *, version: Optional[str] = None) -> str:
    """Stable store key of one network-topology configuration.

    Covers the complete topology (dict round trip), the schema and the
    code version.  Every run executed over a latency fabric persists its
    topology as a ``net-*`` document under this key, so a stored
    ``universe-*``/``workload-*``/``pair`` result can always be traced
    back to -- and replayed against -- the exact region model that
    produced it.
    """
    return "net-" + stable_hash(
        {
            "kind": "net",
            "schema": SCHEMA_VERSION,
            "code_version": version if version is not None else code_version(),
            "topology": topology.to_dict(),
        }
    )


def pair_fingerprint(config: SessionConfig, *, version: Optional[str] = None) -> str:
    """Stable store key of one paired run.

    The key covers every :class:`SessionConfig` field except ``algorithm``
    (a pair entry holds both algorithms), plus the seed (a config field)
    and the code version.
    """
    cfg = config_to_dict(config)
    cfg.pop("algorithm", None)
    return "pair-" + _stable_hash(
        {
            "kind": "pair",
            "schema": SCHEMA_VERSION,
            "code_version": version if version is not None else code_version(),
            "config": cfg,
        }
    )


def sweep_fingerprint(
    sizes: Sequence[int],
    *,
    dynamic: bool,
    seed: int,
    repetitions: int,
    overrides: Optional[Mapping[str, Any]] = None,
    pair_keys: Optional[Sequence[str]] = None,
    version: Optional[str] = None,
) -> str:
    """Stable store key of one aggregated size sweep.

    ``pair_keys`` should be the fingerprints of the sweep's constituent
    pairs: they hash the *resolved* session configurations, so a change to
    the experiment defaults rotates the sweep key in lockstep with the
    pair keys even when the sweep-level parameters look unchanged.
    """
    return "sweep-" + _stable_hash(
        {
            "kind": "sweep",
            "schema": SCHEMA_VERSION,
            "code_version": version if version is not None else code_version(),
            "sizes": [int(s) for s in sizes],
            "dynamic": bool(dynamic),
            "seed": int(seed),
            "repetitions": int(repetitions),
            "overrides": dict(sorted((overrides or {}).items())),
            "pair_keys": list(pair_keys or []),
        }
    )


def telemetry_fingerprint(
    run: Mapping[str, Any], *, version: Optional[str] = None
) -> str:
    """Stable store key of one run's telemetry document.

    Keyed by the run's *identity* (kind, name, seed, ...) -- never by the
    telemetry content -- so re-running the same configuration with
    telemetry enabled refreshes one document instead of accreting copies,
    and enabling telemetry can never rotate any result fingerprint.
    """
    return "telemetry-" + stable_hash(
        {
            "kind": "telemetry",
            "schema": SCHEMA_VERSION,
            "code_version": version if version is not None else code_version(),
            "run": dict(run),
        }
    )


def persist_telemetry_document(
    store: Optional["BaseResultStore"],
    *,
    run: Mapping[str, Any],
    telemetry: Optional[Any] = None,
) -> Optional[str]:
    """Persist the active telemetry beside a run's result documents.

    Called by the CLI after a ``--telemetry`` run: snapshots the given (or
    active) telemetry into a ``telemetry-*`` document under
    :func:`telemetry_fingerprint` and returns the key.  A disabled
    telemetry or storeless run persists nothing (returns ``None``) -- the
    default path stays byte-identical to a build without this module.
    """
    if store is None:
        return None
    handle = telemetry if telemetry is not None else get_telemetry()
    if not handle.enabled:
        return None
    from repro.obs.export import build_telemetry_document

    key = telemetry_fingerprint(run)
    store.save_telemetry(key, build_telemetry_document(handle, run=run))
    return key


# --------------------------------------------------------------------------- #
# result serialisation
# --------------------------------------------------------------------------- #
def session_result_to_dict(result: SessionResult) -> Dict[str, Any]:
    """JSON-friendly dictionary form of a full :class:`SessionResult`."""
    return {
        "config": config_to_dict(result.config),
        "metrics": metrics_to_dict(result.metrics),
        "switch_plan": asdict(result.switch_plan),
        "n_peers": result.n_peers,
        "n_rounds": result.n_rounds,
        "average_degree": result.average_degree,
        "overhead_ratio": result.overhead_ratio,
        "overhead_series": [[t, v] for t, v in result.overhead_series],
        "wallclock_seconds": result.wallclock_seconds,
        "stop_reason": result.stop_reason,
        "fabric_stats": dict(result.fabric_stats),
    }


def session_result_from_dict(payload: Mapping[str, Any]) -> SessionResult:
    """Rebuild a :class:`SessionResult` from :func:`session_result_to_dict`."""
    return SessionResult(
        config=config_from_dict(payload["config"]),
        metrics=metrics_from_dict(payload["metrics"]),
        switch_plan=SwitchPlan(**dict(payload["switch_plan"])),
        n_peers=int(payload["n_peers"]),
        n_rounds=int(payload["n_rounds"]),
        average_degree=float(payload["average_degree"]),
        overhead_ratio=float(payload["overhead_ratio"]),
        overhead_series=[(float(t), float(v)) for t, v in payload["overhead_series"]],
        wallclock_seconds=float(payload["wallclock_seconds"]),
        stop_reason=str(payload["stop_reason"]),
        fabric_stats={
            str(k): float(v) for k, v in payload.get("fabric_stats", {}).items()
        },
    )


def sweep_to_dict(sweep: "SizeSweepResult") -> Dict[str, Any]:
    """JSON-friendly dictionary form of a :class:`SizeSweepResult`."""
    return {
        "dynamic": sweep.dynamic,
        "seed": sweep.seed,
        "points": [asdict(point) for point in sweep.points],
    }


def sweep_from_dict(payload: Mapping[str, Any]) -> "SizeSweepResult":
    """Rebuild a :class:`SizeSweepResult` from :func:`sweep_to_dict` output.

    The round trip is exact: the rebuilt object compares equal to the
    original (all fields are ints and floats, which ``json`` preserves
    bit-identically).
    """
    from repro.experiments.sweeps import SizeSweepResult, SweepPoint

    return SizeSweepResult(
        dynamic=bool(payload["dynamic"]),
        seed=int(payload["seed"]),
        points=tuple(SweepPoint(**dict(point)) for point in payload["points"]),
    )


def _describe(document: Mapping[str, Any]) -> str:
    """One-line human summary of a stored document (shown by ``store ls``)."""
    kind = document.get("kind")
    if kind == "pair":
        cfg = document.get("config", {})
        churn = cfg.get("churn") or {}
        return (
            f"n_nodes={cfg.get('n_nodes')} seed={cfg.get('seed')} "
            f"dynamic={bool(churn.get('enabled', False))}"
        )
    if kind == "sweep":
        params = document.get("params", {})
        return (
            f"sizes={params.get('sizes')} seed={params.get('seed')} "
            f"repetitions={params.get('repetitions')} "
            f"dynamic={params.get('dynamic')}"
        )
    if kind == "workload":
        return (
            f"workload={document.get('workload')} seed={document.get('seed')} "
            f"n_nodes={document.get('n_nodes')}"
        )
    if kind == "universe":
        return (
            f"universe={document.get('universe')} seed={document.get('seed')} "
            f"channels={document.get('n_channels')} viewers={document.get('n_viewers')}"
        )
    if kind == "net":
        topology = document.get("topology", {})
        regions = [r.get("name") for r in topology.get("regions", [])]
        return f"topology={topology.get('name')} regions={','.join(map(str, regions))}"
    if kind == "telemetry":
        run = document.get("run", {})
        trace = document.get("trace", {})
        return (
            f"run={run.get('kind')}:{run.get('name', '?')} "
            f"spans={len(document.get('spans', {}))} "
            f"events={trace.get('events', 0)}"
        )
    return ""


# --------------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StoreEntry:
    """Summary of one stored document (what ``store ls`` prints)."""

    key: str
    kind: str
    created: str
    code_version: str
    description: str
    size_bytes: int

    def as_row(self) -> Dict[str, object]:
        """Dictionary form used for table printing."""
        return {
            "key": self.key,
            "kind": self.kind,
            "created": self.created,
            "code_version": self.code_version,
            "size_bytes": self.size_bytes,
            "description": self.description,
        }


class BaseResultStore:
    """Behaviour shared by every result-store backend.

    A result store maps content-fingerprint keys to JSON documents.  Two
    backends exist: the original one-file-per-document directory
    (:class:`ResultStore`) and a single-file SQLite database
    (:class:`~repro.experiments.sqlite_store.SQLiteStore`).  Concrete
    backends provide the storage primitives (:meth:`load`, :meth:`save`,
    :meth:`delete`, :meth:`keys`, :meth:`clear` and the listing hook
    :meth:`_all_entries`); the envelope stamping, the per-kind typed
    savers, replay-only semantics and entry filtering all live here so
    the backends cannot drift apart -- the backend-parametrised store
    test suite pins that both satisfy the same contract, document for
    document.

    Parameters
    ----------
    root:
        Results directory (created on first use).  Both backends anchor
        here: the JSON backend spreads documents inside it, the SQLite
        backend keeps one ``store.sqlite`` file in it.
    replay_only:
        When true, consumers must find every result they need in the store;
        :class:`MissingResultError` is raised instead of simulating.  Used
        by ``repro-gossip figure --from-store``.
    """

    #: Backend tag (what ``open_store`` dispatches on).
    backend: str = "?"

    def __init__(self, root: "str | os.PathLike[str]", *, replay_only: bool = False) -> None:
        self.root = Path(root)
        self.replay_only = bool(replay_only)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- instrumented read/write entry points ---------------------------- #
    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` when absent.

        Corrupt or unreadable documents are treated as misses rather than
        errors: the result is simply recomputed and rewritten.  Every read
        funnels through here, so one span/counter update per document
        covers both backends (a no-op while telemetry is disabled).
        """
        obs = get_telemetry()
        if not obs.enabled:
            return self._load_document(key)
        with obs.span("store.load", backend=self.backend, key=key):
            payload = self._load_document(key)
        obs.counter("store.load.hit" if payload is not None else "store.load.miss").inc()
        return payload

    def save(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Atomically persist ``payload`` under ``key``; returns its path
        (the document file, or the database file on SQLite)."""
        obs = get_telemetry()
        if not obs.enabled:
            return self._save_document(key, payload)
        with obs.span("store.save", backend=self.backend, key=key):
            path = self._save_document(key, payload)
        obs.counter("store.save").inc()
        return path

    # -- backend primitives --------------------------------------------- #
    def _load_document(self, key: str) -> Optional[Dict[str, Any]]:
        """Backend read primitive behind :meth:`load`."""
        raise NotImplementedError

    def _save_document(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Backend write primitive behind :meth:`save`."""
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        """Remove one document; returns whether it existed."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """All stored keys, sorted."""
        raise NotImplementedError

    def clear(self) -> int:
        """Delete every stored document; returns how many were removed."""
        raise NotImplementedError

    def _all_entries(self) -> List["StoreEntry"]:
        """One :class:`StoreEntry` per stored document, in key order."""
        raise NotImplementedError

    # -- shared behaviour ------------------------------------------------ #
    def _stamp(self, key: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """The document envelope, identical across backends.

        ``setdefault`` throughout: a payload that already carries envelope
        fields (a replayed or migrated document) keeps them verbatim --
        which is what makes ``repro store migrate`` lossless.
        """
        document = dict(payload)
        document.setdefault("schema", SCHEMA_VERSION)
        document.setdefault("key", key)
        document.setdefault("code_version", code_version())
        document.setdefault("created", datetime.now(timezone.utc).isoformat())
        return document

    def contains(self, key: str) -> bool:
        """Whether the store holds a (readable) document for ``key``."""
        return self.load(key) is not None

    def missing(self, key: str) -> "MissingResultError":
        """The error to raise for a miss in replay-only mode."""
        return MissingResultError(key)

    def entries(
        self, *, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> List["StoreEntry"]:
        """Stored-document summaries (what ``store ls`` shows).

        ``kind`` filters to one document kind; ``limit`` keeps only the
        newest ``N`` by creation time (newest first).  Without ``limit``
        entries come in key order, matching historical output.
        """
        entries = self._all_entries()
        if kind is not None:
            entries = [entry for entry in entries if entry.kind == kind]
        if limit is not None:
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
            entries = sorted(
                entries, key=lambda entry: (entry.created, entry.key), reverse=True
            )[:limit]
        return entries

    def __len__(self) -> int:
        return len(self.keys())

    # -- pair documents -------------------------------------------------- #
    def save_pair(
        self, key: str, config: SessionConfig, normal: SessionResult, fast: SessionResult
    ) -> Path:
        """Persist one paired fast-vs-normal run under ``key``."""
        return self.save(
            key,
            {
                "kind": "pair",
                "config": config_to_dict(config),
                "normal": session_result_to_dict(normal),
                "fast": session_result_to_dict(fast),
            },
        )

    def load_pair(self, key: str) -> Optional[Tuple[SessionResult, SessionResult]]:
        """The ``(normal, fast)`` results stored under ``key`` (or ``None``)."""
        payload = self.load(key)
        if payload is None or payload.get("kind") != "pair":
            return None
        return (
            session_result_from_dict(payload["normal"]),
            session_result_from_dict(payload["fast"]),
        )

    # -- workload documents ----------------------------------------------- #
    def save_workload(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Persist one workload-repetition document under ``key``.

        ``payload`` is the JSON form produced by the workload engine
        (:mod:`repro.workloads.runner`); the store only stamps the common
        envelope fields, keeping this module free of workload imports.
        """
        document = dict(payload)
        document["kind"] = "workload"
        return self.save(key, document)

    def load_workload(self, key: str) -> Optional[Dict[str, Any]]:
        """The workload document stored under ``key`` (or ``None``)."""
        payload = self.load(key)
        if payload is None or payload.get("kind") != "workload":
            return None
        return payload

    # -- universe documents ------------------------------------------------ #
    def save_universe(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Persist one universe-repetition document under ``key``.

        ``payload`` is the JSON form produced by the channel-universe
        runner (:mod:`repro.channels.runner`); like workload documents,
        the store only stamps the common envelope fields.
        """
        document = dict(payload)
        document["kind"] = "universe"
        return self.save(key, document)

    def load_universe(self, key: str) -> Optional[Dict[str, Any]]:
        """The universe document stored under ``key`` (or ``None``)."""
        payload = self.load(key)
        if payload is None or payload.get("kind") != "universe":
            return None
        return payload

    # -- net documents ----------------------------------------------------- #
    def save_net(self, key: str, topology: "NetTopology") -> Path:
        """Persist one network topology as a ``net-*`` document.

        Saving is idempotent per key (the key is a content hash of the
        topology), so every run over the same fabric simply refreshes the
        same document.
        """
        return self.save(key, {"kind": "net", "topology": topology.to_dict()})

    def load_net(self, key: str) -> Optional["NetTopology"]:
        """The topology stored under ``key`` (or ``None``)."""
        payload = self.load(key)
        if payload is None or payload.get("kind") != "net":
            return None
        return NetTopology.from_dict(payload["topology"])

    # -- telemetry documents ---------------------------------------------- #
    def save_telemetry(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Persist one run's telemetry digest under ``key``.

        ``payload`` is the JSON form produced by
        :func:`repro.obs.export.build_telemetry_document`.  Telemetry
        documents live *beside* result documents: nothing else references
        them and no fingerprint covers their content, so they can be
        deleted (or never written) without invalidating any result.
        """
        document = dict(payload)
        document["kind"] = "telemetry"
        return self.save(key, document)

    def load_telemetry(self, key: str) -> Optional[Dict[str, Any]]:
        """The telemetry document stored under ``key`` (or ``None``)."""
        payload = self.load(key)
        if payload is None or payload.get("kind") != "telemetry":
            return None
        return payload

    # -- sweep documents ------------------------------------------------- #
    def save_sweep(self, key: str, sweep: "SizeSweepResult", params: Mapping[str, Any]) -> Path:
        """Persist one aggregated size sweep under ``key``."""
        return self.save(
            key,
            {"kind": "sweep", "params": dict(params), "sweep": sweep_to_dict(sweep)},
        )

    def load_sweep(self, key: str) -> Optional["SizeSweepResult"]:
        """The aggregated sweep stored under ``key`` (or ``None``)."""
        payload = self.load(key)
        if payload is None or payload.get("kind") != "sweep":
            return None
        return sweep_from_dict(payload["sweep"])

class ResultStore(BaseResultStore):
    """A directory of JSON result documents keyed by content fingerprints.

    The original (and default) backend: one ``<key>.json`` per document
    plus a small ``<key>.meta.json`` sidecar for fast listings.  Writes
    are atomic (temp file + ``os.replace``) and keys are unique per
    configuration, so concurrent writers -- e.g. parallel sweep workers on
    a shared results directory -- cannot corrupt each other's entries.
    """

    backend = "json"

    # -- low-level document access ------------------------------------- #
    def path_for(self, key: str) -> Path:
        """Filesystem path of a key's document."""
        return self.root / f"{key}.json"

    def meta_path_for(self, key: str) -> Path:
        """Path of a key's small metadata sidecar (what ``ls`` reads).

        Pair documents at paper scale run to megabytes; the sidecar keeps
        listing the store O(number of entries) instead of O(store bytes).
        """
        return self.root / f"{key}.meta.json"

    def _load_document(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` when absent.

        Corrupt or unreadable documents are treated as misses rather than
        errors: the result is simply recomputed and rewritten.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            return None
        return payload

    def _save_document(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Atomically persist ``payload`` under ``key`` and return its path.

        A small metadata sidecar (see :meth:`meta_path_for`) is written
        alongside the document so listings never have to parse the full
        payload.
        """
        document = self._stamp(key, payload)
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(tmp, path)
        self._write_meta(key, document)
        return path

    def delete(self, key: str) -> bool:
        """Remove one document (and its sidecar); returns whether it existed."""
        existed = False
        try:
            self.path_for(key).unlink()
            existed = True
        except OSError:
            pass
        try:
            self.meta_path_for(key).unlink()
        except OSError:
            pass
        return existed

    def _write_meta(self, key: str, document: Mapping[str, Any]) -> None:
        meta = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kind": document.get("kind", "?"),
            "created": document.get("created", ""),
            "code_version": document.get("code_version", ""),
            "description": _describe(document),
        }
        path = self.meta_path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(meta, handle, sort_keys=True)
        os.replace(tmp, path)

    #: Filename globs of the store's own documents.  ``keys``/``clear``
    #: only ever touch these shapes, so pointing ``--results-dir`` at a
    #: directory that also holds unrelated ``.json`` files is safe.
    _DOCUMENT_GLOBS = (
        "pair-*.json",
        "sweep-*.json",
        "workload-*.json",
        "universe-*.json",
        "net-*.json",
        "telemetry-*.json",
    )

    def _document_paths(self) -> List[Path]:
        paths: List[Path] = []
        for pattern in self._DOCUMENT_GLOBS:
            paths.extend(
                path for path in self.root.glob(pattern)
                if not path.name.endswith(".meta.json")
            )
        return sorted(paths)

    # -- maintenance ----------------------------------------------------- #
    def keys(self) -> List[str]:
        """All stored keys, sorted."""
        return [path.stem for path in self._document_paths()]

    def _all_entries(self) -> List[StoreEntry]:
        """One :class:`StoreEntry` per stored document, in key order.

        Reads the small metadata sidecars, falling back to parsing the full
        document only when a sidecar is missing (e.g. a store written by an
        older version) or unreadable.
        """
        entries: List[StoreEntry] = []
        for key in self.keys():
            size = self.path_for(key).stat().st_size if self.path_for(key).exists() else 0
            meta = self._load_meta(key)
            if meta is None:
                payload = self.load(key)
                if payload is None:
                    entries.append(
                        StoreEntry(key=key, kind="corrupt", created="", code_version="",
                                   description="unreadable document", size_bytes=size)
                    )
                    continue
                self._write_meta(key, payload)  # heal the missing sidecar
                meta = self._load_meta(key) or {}
            entries.append(
                StoreEntry(
                    key=key,
                    kind=str(meta.get("kind", "?")),
                    created=str(meta.get("created", "")),
                    code_version=str(meta.get("code_version", "")),
                    description=str(meta.get("description", "")),
                    size_bytes=size,
                )
            )
        return entries

    def _load_meta(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with self.meta_path_for(key).open("r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    def clear(self) -> int:
        """Delete every stored document; returns how many were removed.

        Only the store's own documents (see :attr:`_DOCUMENT_GLOBS`) and
        their metadata sidecars are touched; unrelated files in the
        directory survive.  Sidecars are deleted too but not counted.
        """
        removed = 0
        for path in self._document_paths():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
            sidecar = self.meta_path_for(path.stem)
            try:
                sidecar.unlink()
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = ", replay_only=True" if self.replay_only else ""
        return f"ResultStore({str(self.root)!r}{mode})"


# --------------------------------------------------------------------------- #
# backend selection and migration
# --------------------------------------------------------------------------- #
#: The store backends ``open_store`` (and ``--store-backend``) accept.
STORE_BACKENDS: Tuple[str, ...] = ("json", "sqlite")


def open_store(
    root: "str | os.PathLike[str]",
    *,
    backend: str = "json",
    replay_only: bool = False,
) -> BaseResultStore:
    """Open the results directory through the chosen backend.

    Both backends anchor at the same directory -- the JSON backend spreads
    ``<key>.json`` files in it, the SQLite backend keeps one
    ``store.sqlite`` file in it -- so switching backends never moves the
    results location, only the on-disk format.
    """
    if backend == "json":
        return ResultStore(root, replay_only=replay_only)
    if backend == "sqlite":
        from repro.experiments.sqlite_store import SQLiteStore

        return SQLiteStore(root, replay_only=replay_only)
    raise ValueError(
        f"unknown store backend {backend!r} (expected one of {', '.join(STORE_BACKENDS)})"
    )


def migrate_store(source: BaseResultStore, dest: BaseResultStore) -> int:
    """Copy every document from ``source`` into ``dest``; returns the count.

    Lossless by construction: documents are copied with their envelope
    (``created``, ``code_version``, ...) intact -- :meth:`BaseResultStore.
    _stamp` only fills fields that are absent -- so migrating JSON ->
    SQLite -> JSON round-trips byte-identical document payloads.
    """
    migrated = 0
    for key in source.keys():
        document = source.load(key)
        if document is None:
            continue  # corrupt/foreign entry: nothing faithful to copy
        dest.save(key, document)
        migrated += 1
    return migrated


_T = TypeVar("_T")


def replay_or_execute(
    store: Optional[BaseResultStore],
    keys: Sequence[str],
    *,
    load: Callable[[str], Optional[_T]],
    execute: Callable[[List[int]], Iterable[_T]],
    save: Callable[[str, int, _T], None],
) -> Tuple[List[_T], int]:
    """The shared replay-or-simulate loop over repetition documents.

    Both repetition-based engines (workloads, channel universes) follow the
    same store discipline: look every repetition key up first, refuse to
    simulate on a replay-only store, execute only the missing repetitions
    and persist each one as soon as it completes (interrupted runs keep
    their finished repetitions).  This helper owns that discipline once.

    Parameters
    ----------
    store:
        The result store, or ``None`` to always execute.
    keys:
        One store key per repetition, in result order.
    load:
        Decode the stored repetition for a key (``None`` on a miss).
    execute:
        Produce fresh results for the given pending indices, lazily and in
        that order.
    save:
        Persist one freshly executed repetition (key, index, result).

    Returns
    -------
    The repetition results in key order, and how many were replayed.
    """
    results: Dict[int, _T] = {}
    pending: List[int] = []
    if store is not None:
        for index, key in enumerate(keys):
            loaded = load(key)
            if loaded is not None:
                results[index] = loaded
            else:
                pending.append(index)
        if pending and store.replay_only:
            raise store.missing(keys[pending[0]])
    else:
        pending = list(range(len(keys)))

    for index, result in zip(pending, execute(pending)):
        results[index] = result
        if store is not None:
            save(keys[index], index, result)

    return [results[index] for index in range(len(keys))], len(keys) - len(pending)
