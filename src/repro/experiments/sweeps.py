"""Network-size sweeps (the workload behind Figures 6--8 and 10--12).

A size sweep runs a paired fast-vs-normal comparison for every overlay size
in the list.  Figures 6, 7 and 8 (and their dynamic counterparts 10, 11,
12) all plot quantities of the *same* sweep, so the sweep result is cached
in-process: the three figure generators -- and the three benchmark modules
-- share one set of simulations per parameterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import make_session_config
from repro.experiments.runner import PairedRunResult, run_pair
from repro.metrics.report import ComparisonRow, reduction_ratio

__all__ = ["SweepPoint", "SizeSweepResult", "run_size_sweep", "clear_sweep_cache"]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated results for one overlay size (averaged over repetitions)."""

    n_nodes: int
    normal_finish_old: float
    fast_finish_old: float
    fast_prepare_new: float
    normal_prepare_new: float
    normal_switch_time: float
    fast_switch_time: float
    reduction: float
    normal_overhead: float
    fast_overhead: float
    repetitions: int

    def as_row(self) -> Dict[str, float | int]:
        """Dictionary form used by reports and the CLI."""
        return {
            "n_nodes": self.n_nodes,
            "normal_finish_old": self.normal_finish_old,
            "fast_finish_old": self.fast_finish_old,
            "fast_prepare_new": self.fast_prepare_new,
            "normal_prepare_new": self.normal_prepare_new,
            "normal_switch_time": self.normal_switch_time,
            "fast_switch_time": self.fast_switch_time,
            "reduction": self.reduction,
            "normal_overhead": self.normal_overhead,
            "fast_overhead": self.fast_overhead,
            "repetitions": self.repetitions,
        }


@dataclass(frozen=True)
class SizeSweepResult:
    """All sweep points of one size sweep, in ascending size order."""

    dynamic: bool
    seed: int
    points: Tuple[SweepPoint, ...]

    def rows(self) -> List[Dict[str, float | int]]:
        """One dictionary per size (for table printing)."""
        return [point.as_row() for point in self.points]

    def series(self, field: str) -> List[Tuple[float, float]]:
        """``(n_nodes, value)`` series of any :class:`SweepPoint` field."""
        return [(float(p.n_nodes), float(getattr(p, field))) for p in self.points]

    def point_for(self, n_nodes: int) -> SweepPoint:
        """The sweep point of a given size (``KeyError`` if absent)."""
        for point in self.points:
            if point.n_nodes == n_nodes:
                return point
        raise KeyError(n_nodes)


def _aggregate(n_nodes: int, pairs: Sequence[PairedRunResult]) -> SweepPoint:
    """Average the paired results of all repetitions at one size."""

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    normal_prepare = mean([p.normal.metrics.avg_prepare_new for p in pairs])
    fast_prepare = mean([p.fast.metrics.avg_prepare_new for p in pairs])
    return SweepPoint(
        n_nodes=n_nodes,
        normal_finish_old=mean([p.normal.metrics.avg_finish_old for p in pairs]),
        fast_finish_old=mean([p.fast.metrics.avg_finish_old for p in pairs]),
        fast_prepare_new=fast_prepare,
        normal_prepare_new=normal_prepare,
        normal_switch_time=normal_prepare,
        fast_switch_time=fast_prepare,
        reduction=reduction_ratio(normal_prepare, fast_prepare),
        normal_overhead=mean([p.normal.overhead_ratio for p in pairs]),
        fast_overhead=mean([p.fast.overhead_ratio for p in pairs]),
        repetitions=len(pairs),
    )


@lru_cache(maxsize=32)
def _cached_sweep(
    sizes: Tuple[int, ...],
    dynamic: bool,
    seed: int,
    repetitions: int,
    overrides_key: Tuple[Tuple[str, object], ...],
) -> SizeSweepResult:
    overrides = dict(overrides_key)
    points: List[SweepPoint] = []
    for n_nodes in sizes:
        pairs: List[PairedRunResult] = []
        for repetition in range(repetitions):
            config = make_session_config(
                n_nodes,
                seed=seed + repetition,
                dynamic=dynamic,
                record_rounds=False,
                **overrides,
            )
            pairs.append(run_pair(config))
        points.append(_aggregate(n_nodes, pairs))
    return SizeSweepResult(dynamic=dynamic, seed=seed, points=tuple(points))


def run_size_sweep(
    sizes: Sequence[int],
    *,
    dynamic: bool = False,
    seed: int = 0,
    repetitions: int = 1,
    overrides: Optional[Dict[str, object]] = None,
) -> SizeSweepResult:
    """Run (or fetch from cache) a paired size sweep.

    Parameters
    ----------
    sizes:
        Overlay sizes, e.g. :data:`repro.experiments.config.PAPER_SWEEP_SIZES`.
    dynamic:
        Enable the paper's churn model (Figures 10--12) or not (6--8).
    seed:
        Base seed; repetition ``k`` uses ``seed + k``.
    repetitions:
        Independent repetitions per size (the paper averages over several
        traces per size; use >= 3 for paper-grade numbers).
    overrides:
        Extra :class:`SessionConfig` overrides applied to every run.
    """
    overrides = dict(overrides or {})
    overrides_key = tuple(sorted(overrides.items()))
    return _cached_sweep(tuple(int(s) for s in sizes), bool(dynamic), int(seed),
                         int(repetitions), overrides_key)


def clear_sweep_cache() -> None:
    """Drop all cached sweeps (used by tests)."""
    _cached_sweep.cache_clear()
