"""Network-size sweeps (the workload behind Figures 6--8 and 10--12).

A size sweep runs a paired fast-vs-normal comparison for every overlay size
in the list.  Figures 6, 7 and 8 (and their dynamic counterparts 10, 11,
12) all plot quantities of the *same* sweep, so the sweep result is shared
at two levels:

* **in-process** -- store-less sweeps are memoised (serial or parallel;
  ``workers`` is not part of the key since results are bit-identical) so
  the three figure generators (and the three benchmark modules) of one
  parameterisation share one set of simulations;
* **on disk** -- pass ``store=`` (a
  :class:`~repro.experiments.store.ResultStore`) and every ``(size,
  repetition)`` pair plus the aggregated sweep is persisted; repeated
  invocations, figure regeneration and the benchmarks then replay from
  disk instead of simulating.

Pass ``workers > 1`` to fan the ``(size, repetition)`` pairs out over a
process pool (see :mod:`repro.experiments.parallel`); the results are
bit-identical to the serial path because every pair is independently and
deterministically seeded with ``seed + repetition``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import PairedRunResult
from repro.experiments.store import ResultStore
from repro.metrics.report import reduction_ratio

__all__ = ["SweepPoint", "SizeSweepResult", "run_size_sweep", "clear_sweep_cache"]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated results for one overlay size (averaged over repetitions).

    The paper defines a peer's *switch time* as the time until it has
    prepared the new source's startup window (Section 5.2: metric 1 is the
    average preparing time of S2, and metric 2 -- the reduction ratio -- is
    computed from it).  The switch-time columns are therefore *derived*
    from the prepare times rather than stored separately; see
    :attr:`normal_switch_time` and :attr:`fast_switch_time`.
    """

    n_nodes: int
    normal_finish_old: float
    fast_finish_old: float
    fast_prepare_new: float
    normal_prepare_new: float
    reduction: float
    normal_overhead: float
    fast_overhead: float
    repetitions: int

    @property
    def normal_switch_time(self) -> float:
        """Average switch time of the normal algorithm.

        Identical to :attr:`normal_prepare_new` by the paper's definition
        (the switch time *is* the preparing time of the new source).
        """
        return self.normal_prepare_new

    @property
    def fast_switch_time(self) -> float:
        """Average switch time of the fast algorithm (= :attr:`fast_prepare_new`)."""
        return self.fast_prepare_new

    def as_row(self) -> Dict[str, float | int]:
        """Dictionary form used by reports and the CLI.

        The derived switch-time columns are included for convenience even
        though they duplicate the prepare-time columns by definition.
        """
        return {
            "n_nodes": self.n_nodes,
            "normal_finish_old": self.normal_finish_old,
            "fast_finish_old": self.fast_finish_old,
            "fast_prepare_new": self.fast_prepare_new,
            "normal_prepare_new": self.normal_prepare_new,
            "normal_switch_time": self.normal_switch_time,
            "fast_switch_time": self.fast_switch_time,
            "reduction": self.reduction,
            "normal_overhead": self.normal_overhead,
            "fast_overhead": self.fast_overhead,
            "repetitions": self.repetitions,
        }


@dataclass(frozen=True)
class SizeSweepResult:
    """All sweep points of one size sweep, in ascending size order."""

    dynamic: bool
    seed: int
    points: Tuple[SweepPoint, ...]

    def rows(self) -> List[Dict[str, float | int]]:
        """One dictionary per size (for table printing)."""
        return [point.as_row() for point in self.points]

    def series(self, field: str) -> List[Tuple[float, float]]:
        """``(n_nodes, value)`` series of any :class:`SweepPoint` field."""
        return [(float(p.n_nodes), float(getattr(p, field))) for p in self.points]

    def point_for(self, n_nodes: int) -> SweepPoint:
        """The sweep point of a given size (``KeyError`` if absent)."""
        for point in self.points:
            if point.n_nodes == n_nodes:
                return point
        raise KeyError(n_nodes)


def _aggregate(n_nodes: int, pairs: Sequence[PairedRunResult]) -> SweepPoint:
    """Average the paired results of all repetitions at one size."""

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    normal_prepare = mean([p.normal.metrics.avg_prepare_new for p in pairs])
    fast_prepare = mean([p.fast.metrics.avg_prepare_new for p in pairs])
    return SweepPoint(
        n_nodes=n_nodes,
        normal_finish_old=mean([p.normal.metrics.avg_finish_old for p in pairs]),
        fast_finish_old=mean([p.fast.metrics.avg_finish_old for p in pairs]),
        fast_prepare_new=fast_prepare,
        normal_prepare_new=normal_prepare,
        reduction=reduction_ratio(normal_prepare, fast_prepare),
        normal_overhead=mean([p.normal.overhead_ratio for p in pairs]),
        fast_overhead=mean([p.fast.overhead_ratio for p in pairs]),
        repetitions=len(pairs),
    )


#: In-process memo of store-less sweeps (bounded LRU).  ``workers`` is
#: deliberately *not* part of the key: the parallel path is bit-identical
#: to the serial one, so figures 6/7/8 (and 10/11/12) share one sweep per
#: parameterisation regardless of how each generator was invoked.
_MEMO_LIMIT = 32
_sweep_memo: "OrderedDict[tuple, SizeSweepResult]" = OrderedDict()


def run_size_sweep(
    sizes: Sequence[int],
    *,
    dynamic: bool = False,
    seed: int = 0,
    repetitions: int = 1,
    overrides: Optional[Dict[str, object]] = None,
    workers: int = 1,
    store: Optional[ResultStore] = None,
) -> SizeSweepResult:
    """Run (or fetch from cache/store) a paired size sweep.

    Parameters
    ----------
    sizes:
        Overlay sizes, e.g. :data:`repro.experiments.config.PAPER_SWEEP_SIZES`.
    dynamic:
        Enable the paper's churn model (Figures 10--12) or not (6--8).
    seed:
        Base seed; repetition ``k`` uses ``seed + k``.
    repetitions:
        Independent repetitions per size (the paper averages over several
        traces per size; use >= 3 for paper-grade numbers).
    overrides:
        Extra :class:`SessionConfig` overrides applied to every run.
    workers:
        Process-pool width for the ``(size, repetition)`` fan-out; ``1``
        (the default) runs serially in-process.  Results are bit-identical
        either way.
    store:
        Optional :class:`~repro.experiments.store.ResultStore`; completed
        pairs and the aggregated sweep are persisted there and replayed on
        subsequent invocations.
    """
    from repro.experiments.parallel import ParallelSweepRunner

    overrides = dict(overrides or {})
    if store is not None:
        # Persistence supersedes the in-process memo: the store already
        # deduplicates across invocations (and processes).
        return ParallelSweepRunner(workers=workers, store=store).run(
            sizes, dynamic=dynamic, seed=seed, repetitions=repetitions, overrides=overrides
        )
    key = (tuple(int(s) for s in sizes), bool(dynamic), int(seed), int(repetitions),
           tuple(sorted(overrides.items())))
    cached = _sweep_memo.get(key)
    if cached is not None:
        _sweep_memo.move_to_end(key)
        return cached
    result = ParallelSweepRunner(workers=workers).run(
        sizes, dynamic=dynamic, seed=seed, repetitions=repetitions, overrides=overrides
    )
    _sweep_memo[key] = result
    if len(_sweep_memo) > _MEMO_LIMIT:
        _sweep_memo.popitem(last=False)
    return result


def clear_sweep_cache() -> None:
    """Drop all in-process cached sweeps (used by tests)."""
    _sweep_memo.clear()
