"""Run single sessions and paired fast-vs-normal comparisons.

The paper's comparisons are *paired*: both algorithms are evaluated on the
same overlay topologies, bandwidth assignments and churn schedules.
:func:`run_pair` guarantees this by building both sessions from the same
:class:`~repro.streaming.session.SessionConfig` (differing only in the
``algorithm`` field), which -- thanks to the named random streams of
:class:`repro.sim.rng.RandomStreams` -- reproduces identical random draws
for everything outside the algorithm itself.

When a :class:`~repro.experiments.store.ResultStore` is supplied,
:func:`run_pair` reads through it: a stored pair for the same
configuration, seed and code version is replayed from disk instead of
simulated, and fresh results are persisted for the next caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.store import ResultStore, pair_fingerprint, persist_net_document
from repro.metrics.report import ComparisonRow, compare_metrics
from repro.streaming.session import SessionConfig, SessionResult, SwitchSession

__all__ = ["run_single", "PairedRunResult", "run_pair"]


def run_single(config: SessionConfig) -> SessionResult:
    """Build and run one session."""
    return SwitchSession(config).run()


@dataclass(frozen=True)
class PairedRunResult:
    """Results of one paired comparison (same seed, both algorithms)."""

    normal: SessionResult
    fast: SessionResult

    @property
    def n_nodes(self) -> int:
        """Overlay size of the paired runs."""
        return self.normal.config.n_nodes

    def comparison(self, label: Optional[str] = None) -> ComparisonRow:
        """Fast-vs-normal comparison row (Figure 6/7-style quantities)."""
        label = label if label is not None else str(self.n_nodes)
        return compare_metrics(label, self.normal.metrics, self.fast.metrics)

    @property
    def switch_time_reduction(self) -> float:
        """The paper's headline metric: relative switch-time reduction."""
        return self.comparison().switch_time_reduction


def run_pair(config: SessionConfig, *, store: Optional[ResultStore] = None) -> PairedRunResult:
    """Run the normal and the fast switch algorithm on identical random draws.

    The ``algorithm`` field of ``config`` is ignored; both variants are run.

    Parameters
    ----------
    config:
        Shared configuration of both runs (seed included).
    store:
        Optional persistent result store.  On a hit the stored pair is
        returned without simulating; on a miss the pair is simulated and
        persisted.  A replay-only store raises
        :class:`~repro.experiments.store.MissingResultError` on a miss.
    """
    key: Optional[str] = None
    if store is not None:
        key = pair_fingerprint(config)
        cached = store.load_pair(key)
        if cached is not None:
            return PairedRunResult(normal=cached[0], fast=cached[1])
        if store.replay_only:
            raise store.missing(key)
    normal_result = run_single(config.with_algorithm("normal"))
    fast_result = run_single(config.with_algorithm("fast"))
    pair = PairedRunResult(normal=normal_result, fast=fast_result)
    if store is not None and key is not None:
        store.save_pair(key, config, normal_result, fast_result)
        persist_net_document(store, config.topology)
    return pair
