"""Parallel sweep execution: deterministic fan-out of ``(size, repetition)`` pairs.

A paired size sweep is embarrassingly parallel: every ``(size,
repetition)`` pair is one independent paired simulation whose entire
randomness is fixed by its own :class:`SessionConfig` (repetition ``k``
uses ``seed + k``).  :class:`ParallelSweepRunner` exploits this by fanning
the pairs out over a :class:`concurrent.futures.ProcessPoolExecutor` and
aggregating in deterministic task order, which makes the parallel result
**bit-identical** to the serial one -- the scheduling of workers can change
only *when* a pair is computed, never *what* it computes or how the
aggregation orders it.

With a :class:`~repro.experiments.store.ResultStore` attached the runner is
also *incremental*: stored pairs are replayed from disk, only missing pairs
are simulated (in parallel), and both the pairs and the aggregated
:class:`~repro.experiments.sweeps.SizeSweepResult` are persisted for the
next invocation, which then completes without running any simulation.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.experiments.config import make_session_config
from repro.experiments.runner import PairedRunResult, run_pair
from repro.experiments.store import BaseResultStore, pair_fingerprint, sweep_fingerprint
from repro.experiments.sweeps import SizeSweepResult, SweepPoint, _aggregate
from repro.streaming.session import SessionConfig

__all__ = ["SweepTask", "build_sweep_tasks", "ParallelSweepRunner"]


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a paired run at one ``(size, repetition)``.

    Attributes
    ----------
    index:
        Position in the deterministic task order (sizes outer, repetitions
        inner) -- the order aggregation consumes results in.
    n_nodes:
        Overlay size of this pair.
    repetition:
        Repetition number; the task's seed is ``base seed + repetition``.
    config:
        The fully resolved session configuration (seed included).
    """

    index: int
    n_nodes: int
    repetition: int
    config: SessionConfig


def build_sweep_tasks(
    sizes: Sequence[int],
    *,
    dynamic: bool = False,
    seed: int = 0,
    repetitions: int = 1,
    overrides: Optional[Mapping[str, object]] = None,
) -> List[SweepTask]:
    """The deterministic task list of one sweep (sizes outer, repetitions inner)."""
    overrides = dict(overrides or {})
    tasks: List[SweepTask] = []
    for n_nodes in sizes:
        for repetition in range(repetitions):
            config = make_session_config(
                int(n_nodes),
                seed=seed + repetition,
                dynamic=dynamic,
                record_rounds=False,
                **overrides,
            )
            tasks.append(
                SweepTask(
                    index=len(tasks),
                    n_nodes=int(n_nodes),
                    repetition=repetition,
                    config=config,
                )
            )
    return tasks


def _execute_pair(config: SessionConfig) -> PairedRunResult:
    """Worker entry point: one paired run (module-level so it pickles)."""
    return run_pair(config)


class ParallelSweepRunner:
    """Executes size sweeps, optionally in parallel and through a store.

    Parameters
    ----------
    workers:
        Maximum number of worker processes; ``1`` runs everything serially
        in the calling process (no pool is created).
    store:
        Optional persistent result store read before and written after
        execution.  Store I/O always happens in the parent process, so a
        replay-only store or a store on slow shared storage behaves
        predictably.
    """

    def __init__(self, workers: int = 1, store: Optional[BaseResultStore] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.store = store

    def run(
        self,
        sizes: Sequence[int],
        *,
        dynamic: bool = False,
        seed: int = 0,
        repetitions: int = 1,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> SizeSweepResult:
        """Run (or replay) one paired size sweep.

        The result is bit-identical for any ``workers`` value and for any
        mix of stored and freshly computed pairs, because pairs are seeded
        independently and aggregated in deterministic task order.
        """
        overrides = dict(overrides or {})
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        tasks = build_sweep_tasks(
            sizes, dynamic=dynamic, seed=seed, repetitions=repetitions, overrides=overrides
        )
        # Pair keys hash the fully *resolved* configs, and folding them into
        # the sweep key keeps both store granularities in lockstep: anything
        # that would change a pair's identity also retires the aggregate.
        pair_keys = [pair_fingerprint(task.config) for task in tasks]
        sweep_key: Optional[str] = None
        if self.store is not None:
            sweep_key = sweep_fingerprint(
                sizes, dynamic=dynamic, seed=seed, repetitions=repetitions,
                overrides=overrides, pair_keys=pair_keys,
            )
            stored = self.store.load_sweep(sweep_key)
            if stored is not None:
                return stored

        results: Dict[int, PairedRunResult] = {}
        pending: List[SweepTask] = []
        if self.store is not None:
            for task in tasks:
                cached = self.store.load_pair(pair_keys[task.index])
                if cached is not None:
                    results[task.index] = PairedRunResult(normal=cached[0], fast=cached[1])
                else:
                    pending.append(task)
            if pending and self.store.replay_only:
                raise self.store.missing(pair_keys[pending[0].index])
        else:
            pending = list(tasks)

        # _execute yields lazily in task order, so each pair is persisted as
        # soon as it completes: an interrupted long sweep keeps its finished
        # pairs and the rerun only simulates the remainder.
        for task, pair in zip(pending, self._execute(pending)):
            results[task.index] = pair
            if self.store is not None:
                self.store.save_pair(
                    pair_keys[task.index], task.config, pair.normal, pair.fast
                )

        points: List[SweepPoint] = []
        for position, n_nodes in enumerate(sizes):
            group = tasks[position * repetitions:(position + 1) * repetitions]
            points.append(_aggregate(int(n_nodes), [results[t.index] for t in group]))
        sweep = SizeSweepResult(dynamic=bool(dynamic), seed=int(seed), points=tuple(points))

        if self.store is not None and sweep_key is not None:
            self.store.save_sweep(
                sweep_key,
                sweep,
                params={
                    "sizes": [int(s) for s in sizes],
                    "dynamic": bool(dynamic),
                    "seed": int(seed),
                    "repetitions": int(repetitions),
                    "overrides": {k: str(v) for k, v in sorted(overrides.items())},
                },
            )
        return sweep

    # ------------------------------------------------------------------ #
    def _execute(self, pending: Sequence[SweepTask]) -> Iterator[PairedRunResult]:
        """Yield the pending tasks' results in task order as they complete."""
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for task in pending:
                yield _execute_pair(task.config)
            return
        configs = [task.config for task in pending]
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
            yield from pool.map(_execute_pair, configs)
