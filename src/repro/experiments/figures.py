"""One generator per paper figure.

Every evaluation figure of the paper has a function here that runs the
necessary simulations and returns a :class:`FigureResult` containing the
plotted series/rows as plain Python data.  The benchmark harness
(``benchmarks/bench_fig*.py``) calls these functions and prints the rows;
``EXPERIMENTS.md`` records how the regenerated shapes compare with the
paper's.

Default parameters are reduced relative to the paper (smaller overlays) so
that the whole figure suite runs in minutes; pass ``paper_scale=True`` (or
set ``REPRO_PAPER_SCALE=1``) to use the paper's 100--8000-node sweep and the
1000-node ratio tracks.

Every simulation-backed generator accepts ``store=`` (a
:class:`~repro.experiments.store.ResultStore`): with a warm store, figure
generation is pure replay -- no simulator code runs.  The sweep figures
additionally accept ``workers=`` to fan the underlying size sweep out over
a process pool (see :mod:`repro.experiments.parallel`).

These generators are also the builders behind the declarative figure
registry (:mod:`repro.figures`), which re-registers each of them under a
stable name (``fig7-switch-static``, ...) next to the universe-scale
sketch-backed figures, and which ``repro report`` renders wholesale.
``FIGURE_GENERATORS``/:func:`generate_figure` remain the stable
number-keyed interface used by ``repro figure N`` and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.base import LocalView, NeighbourView, Stream
from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.normal_switch import NormalSwitchAlgorithm
from repro.experiments.config import (
    make_session_config,
    ratio_track_size,
    sweep_sizes,
)
from repro.experiments.runner import run_pair
from repro.experiments.store import ResultStore
from repro.experiments.sweeps import SizeSweepResult, run_size_sweep
from repro.metrics.report import format_table

__all__ = [
    "FigureResult",
    "figure2",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "generate_figure",
    "FIGURE_GENERATORS",
]


@dataclass
class FigureResult:
    """The regenerated data behind one paper figure.

    Attributes
    ----------
    figure_id:
        Paper figure number (e.g. ``"5"``).
    title:
        Short description of what the figure shows.
    rows:
        Tabular data (one dict per row) -- what the benchmark prints.
    series:
        Named ``(x, y)`` series, matching the curves/bars of the figure.
    notes:
        Free-form notes (e.g. which scale the data was generated at).
    meta:
        Generation parameters (sizes, seed, dynamic flag, ...).
    """

    figure_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        """Human-readable rendering (title, metadata, table)."""
        lines = [f"Figure {self.figure_id}: {self.title}"]
        if self.meta:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
            lines.append(f"  [{meta}]")
        if self.notes:
            lines.append(f"  {self.notes}")
        lines.append(format_table(self.rows))
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Figure 2: the illustrative request-ordering example
# --------------------------------------------------------------------------- #
def figure2() -> FigureResult:
    """Reproduce the paper's Figure 2 request-ordering example.

    A node can receive 7 segments in the scheduling period while 10 are
    available: 5 of the old source and 5 of the new source.  The normal
    algorithm requests the 5 old segments and then 2 new ones; the fast
    algorithm interleaves old and new segments according to the
    urgency/rarity priorities and the optimal rate split.
    """
    old_ids = [0, 1, 2, 3, 4]
    new_ids = [5, 6, 7, 8, 9]
    neighbour = NeighbourView(
        node_id=100,
        send_rate=20.0,
        available=frozenset(old_ids + new_ids),
        positions={seg: 1 + seg for seg in old_ids + new_ids},
        buffer_capacity=600,
    )
    view = LocalView(
        now=0.0,
        tau=1.0,
        play_rate=10.0,
        inbound_rate=7.0,
        playback_id=0,
        startup_quota_old=2,
        startup_quota_new=5,
        old_needed=frozenset(old_ids),
        new_needed=frozenset(new_ids),
        id_end=4,
        id_begin=5,
        neighbours=(neighbour,),
    )
    fast = FastSwitchAlgorithm().schedule(view)
    normal = NormalSwitchAlgorithm().schedule(view)

    def describe(requests) -> List[str]:
        return [
            f"{'S1' if r.stream is Stream.OLD else 'S2'}#{r.seg_id}" for r in requests
        ]

    rows = [
        {"algorithm": "normal", "order": " ".join(describe(normal.requests)),
         "old_requested": len(normal.old_requests), "new_requested": len(normal.new_requests)},
        {"algorithm": "fast", "order": " ".join(describe(fast.requests)),
         "old_requested": len(fast.old_requests), "new_requested": len(fast.new_requests)},
    ]
    return FigureResult(
        figure_id="2",
        title="Request ordering of the fast vs the normal switch algorithm",
        rows=rows,
        series={},
        notes="Both algorithms fill 7 request slots out of 10 available segments.",
        meta={"inbound_rate": 7, "old_available": 5, "new_available": 5},
    )


# --------------------------------------------------------------------------- #
# Ratio-track figures (5 static, 9 dynamic)
# --------------------------------------------------------------------------- #
def _ratio_track(
    *,
    dynamic: bool,
    n_nodes: Optional[int],
    seed: int,
    paper_scale: Optional[bool],
    figure_id: str,
    max_time: float,
    store: Optional[ResultStore],
) -> FigureResult:
    size = n_nodes if n_nodes is not None else ratio_track_size(paper_scale=paper_scale)
    config = make_session_config(
        size, seed=seed, dynamic=dynamic, record_rounds=True, max_time=max_time
    )
    pair = run_pair(config, store=store)

    series: Dict[str, List[Tuple[float, float]]] = {
        "normal_undelivered_ratio_S1": pair.normal.metrics.series("undelivered_ratio_old"),
        "fast_undelivered_ratio_S1": pair.fast.metrics.series("undelivered_ratio_old"),
        "normal_delivered_ratio_S2": pair.normal.metrics.series("delivered_ratio_new"),
        "fast_delivered_ratio_S2": pair.fast.metrics.series("delivered_ratio_new"),
    }
    # The two runs may stop at different times (whichever algorithm finishes
    # first stops sampling); forward-fill each series so every row is fully
    # populated -- the ratios are constant once a run has completed.
    times = sorted({t for s in series.values() for t, _ in s})
    lookup = {name: dict(values) for name, values in series.items()}
    last_seen: Dict[str, float] = {name: float("nan") for name in series}
    rows = []
    for t in times:
        row: Dict[str, object] = {"time": t}
        for name in series:
            if t in lookup[name]:
                last_seen[name] = lookup[name][t]
            row[name] = last_seen[name]
        rows.append(row)
    environment = "dynamic" if dynamic else "static"
    return FigureResult(
        figure_id=figure_id,
        title=f"Undelivered ratio of S1 and delivered ratio of S2 over time ({environment})",
        rows=rows,
        series=series,
        notes=(
            "Paper shape: the normal algorithm drains S1 faster but prepares S2 later; "
            "the fast algorithm balances both so the switch completes earlier."
        ),
        meta={"n_nodes": size, "seed": seed, "dynamic": dynamic},
    )


def figure5(
    *, n_nodes: Optional[int] = None, seed: int = 0, paper_scale: Optional[bool] = None,
    max_time: float = 60.0, store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 5: ratio track in a static network (paper: 1000 nodes)."""
    return _ratio_track(
        dynamic=False, n_nodes=n_nodes, seed=seed, paper_scale=paper_scale,
        figure_id="5", max_time=max_time, store=store,
    )


def figure9(
    *, n_nodes: Optional[int] = None, seed: int = 0, paper_scale: Optional[bool] = None,
    max_time: float = 60.0, store: Optional[ResultStore] = None,
) -> FigureResult:
    """Figure 9: ratio track in a dynamic network (paper: 1000 nodes, 5% churn)."""
    return _ratio_track(
        dynamic=True, n_nodes=n_nodes, seed=seed, paper_scale=paper_scale,
        figure_id="9", max_time=max_time, store=store,
    )


# --------------------------------------------------------------------------- #
# Size-sweep figures (6/7/8 static, 10/11/12 dynamic)
# --------------------------------------------------------------------------- #
def _sweep(
    sizes: Optional[Sequence[int]],
    dynamic: bool,
    seed: int,
    repetitions: int,
    paper_scale: Optional[bool],
    store: Optional[ResultStore] = None,
    workers: int = 1,
) -> SizeSweepResult:
    chosen = tuple(sizes) if sizes is not None else tuple(sweep_sizes(paper_scale=paper_scale))
    return run_size_sweep(chosen, dynamic=dynamic, seed=seed, repetitions=repetitions,
                          store=store, workers=workers)


def _times_figure(sweep: SizeSweepResult, figure_id: str, dynamic: bool) -> FigureResult:
    rows = [
        {
            "n_nodes": p.n_nodes,
            "normal_finish_S1": p.normal_finish_old,
            "fast_finish_S1": p.fast_finish_old,
            "fast_prepare_S2": p.fast_prepare_new,
            "normal_prepare_S2": p.normal_prepare_new,
        }
        for p in sweep.points
    ]
    environment = "dynamic" if dynamic else "static"
    return FigureResult(
        figure_id=figure_id,
        title=f"Average finishing time of S1 and preparing time of S2 ({environment})",
        rows=rows,
        series={
            "normal_finish_S1": sweep.series("normal_finish_old"),
            "fast_finish_S1": sweep.series("fast_finish_old"),
            "fast_prepare_S2": sweep.series("fast_prepare_new"),
            "normal_prepare_S2": sweep.series("normal_prepare_new"),
        },
        notes=(
            "Paper shape: per size the four bars satisfy "
            "normal_finish <= fast_finish <= fast_prepare <= normal_prepare; the fast "
            "algorithm splits the difference between the normal algorithm's finish and "
            "prepare times."
        ),
        meta={"dynamic": dynamic, "seed": sweep.seed,
              "sizes": [p.n_nodes for p in sweep.points]},
    )


def _switch_time_figure(sweep: SizeSweepResult, figure_id: str, dynamic: bool) -> FigureResult:
    rows = [
        {
            "n_nodes": p.n_nodes,
            "normal_switch_time": p.normal_switch_time,
            "fast_switch_time": p.fast_switch_time,
            "reduction_ratio": p.reduction,
        }
        for p in sweep.points
    ]
    environment = "dynamic" if dynamic else "static"
    return FigureResult(
        figure_id=figure_id,
        title=f"Average switch time and its reduction ratio ({environment})",
        rows=rows,
        series={
            "normal_switch_time": sweep.series("normal_switch_time"),
            "fast_switch_time": sweep.series("fast_switch_time"),
            "reduction_ratio": sweep.series("reduction"),
        },
        notes=(
            "Paper shape: reduction ratio between 0.2 and 0.3, tending to increase with "
            "the network size."
        ),
        meta={"dynamic": dynamic, "seed": sweep.seed,
              "sizes": [p.n_nodes for p in sweep.points]},
    )


def _overhead_figure(sweep: SizeSweepResult, figure_id: str, dynamic: bool) -> FigureResult:
    rows = [
        {
            "n_nodes": p.n_nodes,
            "fast_overhead": p.fast_overhead,
            "normal_overhead": p.normal_overhead,
        }
        for p in sweep.points
    ]
    environment = "dynamic" if dynamic else "static"
    return FigureResult(
        figure_id=figure_id,
        title=f"Communication overhead ({environment})",
        rows=rows,
        series={
            "fast_overhead": sweep.series("fast_overhead"),
            "normal_overhead": sweep.series("normal_overhead"),
        },
        notes=(
            "Paper shape: both algorithms stay in the ~1-2% range; the fast algorithm's "
            "overhead is slightly lower because it moves more data per exchanged map."
        ),
        meta={"dynamic": dynamic, "seed": sweep.seed,
              "sizes": [p.n_nodes for p in sweep.points]},
    )


def figure6(*, sizes: Optional[Sequence[int]] = None, seed: int = 0, repetitions: int = 1,
            paper_scale: Optional[bool] = None, store: Optional[ResultStore] = None,
            workers: int = 1) -> FigureResult:
    """Figure 6: avg finishing/preparing times vs network size (static)."""
    sweep = _sweep(sizes, False, seed, repetitions, paper_scale, store, workers)
    return _times_figure(sweep, "6", dynamic=False)


def figure7(*, sizes: Optional[Sequence[int]] = None, seed: int = 0, repetitions: int = 1,
            paper_scale: Optional[bool] = None, store: Optional[ResultStore] = None,
            workers: int = 1) -> FigureResult:
    """Figure 7: avg switch time and reduction ratio vs network size (static)."""
    sweep = _sweep(sizes, False, seed, repetitions, paper_scale, store, workers)
    return _switch_time_figure(sweep, "7", dynamic=False)


def figure8(*, sizes: Optional[Sequence[int]] = None, seed: int = 0, repetitions: int = 1,
            paper_scale: Optional[bool] = None, store: Optional[ResultStore] = None,
            workers: int = 1) -> FigureResult:
    """Figure 8: communication overhead vs network size (static)."""
    sweep = _sweep(sizes, False, seed, repetitions, paper_scale, store, workers)
    return _overhead_figure(sweep, "8", dynamic=False)


def figure10(*, sizes: Optional[Sequence[int]] = None, seed: int = 0, repetitions: int = 1,
             paper_scale: Optional[bool] = None, store: Optional[ResultStore] = None,
             workers: int = 1) -> FigureResult:
    """Figure 10: avg finishing/preparing times vs network size (dynamic)."""
    sweep = _sweep(sizes, True, seed, repetitions, paper_scale, store, workers)
    return _times_figure(sweep, "10", dynamic=True)


def figure11(*, sizes: Optional[Sequence[int]] = None, seed: int = 0, repetitions: int = 1,
             paper_scale: Optional[bool] = None, store: Optional[ResultStore] = None,
             workers: int = 1) -> FigureResult:
    """Figure 11: avg switch time and reduction ratio vs network size (dynamic)."""
    sweep = _sweep(sizes, True, seed, repetitions, paper_scale, store, workers)
    return _switch_time_figure(sweep, "11", dynamic=True)


def figure12(*, sizes: Optional[Sequence[int]] = None, seed: int = 0, repetitions: int = 1,
             paper_scale: Optional[bool] = None, store: Optional[ResultStore] = None,
             workers: int = 1) -> FigureResult:
    """Figure 12: communication overhead vs network size (dynamic)."""
    sweep = _sweep(sizes, True, seed, repetitions, paper_scale, store, workers)
    return _overhead_figure(sweep, "12", dynamic=True)


#: Dispatcher used by the CLI: figure id -> generator.
FIGURE_GENERATORS: Mapping[str, Callable[..., FigureResult]] = {
    "2": figure2,
    "5": figure5,
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10": figure10,
    "11": figure11,
    "12": figure12,
}


def generate_figure(figure: Union[int, str], **kwargs: object) -> FigureResult:
    """Regenerate a paper figure by number.

    ``kwargs`` are forwarded to the figure's generator (e.g. ``sizes=...``,
    ``seed=...``, ``paper_scale=True``).
    """
    key = str(figure)
    if key not in FIGURE_GENERATORS:
        raise KeyError(
            f"unknown figure {figure!r}; available: {sorted(FIGURE_GENERATORS, key=int)}"
        )
    return FIGURE_GENERATORS[key](**kwargs)
