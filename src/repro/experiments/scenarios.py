"""Named end-to-end scenarios used by the examples and the CLI.

A scenario is just a recipe for a :class:`~repro.streaming.session.SessionConfig`
with a human-readable description.  The three shipped scenarios mirror the
application settings the paper's introduction motivates:

* ``video-conference`` -- a moderate-size conference where the speaker
  (source) changes; static membership.
* ``distance-education`` -- a larger lecture audience with students joining
  and leaving continuously (the paper's dynamic environment).
* ``flash-crowd`` -- a stress variant with tighter bandwidth and a larger
  startup window, used to illustrate how far the practical algorithms sit
  from the model's lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.churn.model import ChurnConfig
from repro.experiments.config import make_session_config
from repro.streaming.session import SessionConfig

__all__ = ["Scenario", "SCENARIOS", "scenario_config"]


@dataclass(frozen=True)
class Scenario:
    """A named simulation recipe."""

    name: str
    description: str
    n_nodes: int
    dynamic: bool
    overrides: Mapping[str, object]

    def config(self, *, algorithm: str = "fast", seed: int = 0) -> SessionConfig:
        """Materialise the scenario into a session configuration."""
        return make_session_config(
            self.n_nodes,
            algorithm=algorithm,
            seed=seed,
            dynamic=self.dynamic,
            **dict(self.overrides),
        )


SCENARIOS: Dict[str, Scenario] = {
    "video-conference": Scenario(
        name="video-conference",
        description=(
            "A 300-participant conference; the speaker changes and every "
            "participant must switch to the new speaker's stream quickly."
        ),
        n_nodes=300,
        dynamic=False,
        overrides={"max_time": 90.0},
    ),
    "distance-education": Scenario(
        name="distance-education",
        description=(
            "An 800-student lecture with students joining and leaving "
            "(5% per scheduling period) while the lecturer hands over."
        ),
        n_nodes=800,
        dynamic=True,
        overrides={"max_time": 90.0},
    ),
    "flash-crowd": Scenario(
        name="flash-crowd",
        description=(
            "A 500-node overlay under tight bandwidth (mean inbound 12 "
            "segments/s) and a large startup window (Qs=80), stressing the "
            "rate-allocation cases of the fast switch algorithm."
        ),
        n_nodes=500,
        dynamic=False,
        overrides={
            "inbound_mean": 12.0,
            "outbound_mean": 12.0,
            "startup_quota_new": 80,
            "max_time": 120.0,
        },
    ),
}


def scenario_config(name: str, *, algorithm: str = "fast", seed: int = 0) -> SessionConfig:
    """Configuration for a named scenario (``KeyError`` with a hint otherwise)."""
    try:
        scenario = SCENARIOS[name]
    except KeyError as exc:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}") from exc
    return scenario.config(algorithm=algorithm, seed=seed)
