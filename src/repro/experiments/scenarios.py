"""Named end-to-end scenarios: thin wrappers over workload-library specs.

A scenario binds a human-readable story (the application settings the
paper's introduction motivates) to a spec from
:mod:`repro.workloads.library`, optionally resized or re-parameterised.
Everything a scenario *runs* goes through the workload engine -- paired
fast-vs-normal execution, the persistent result store, parallel
repetitions -- so ``repro scenario`` enjoys the same replay/compare
machinery as ``repro workload``.

* ``video-conference`` -- a 300-participant conference whose speaker
  changes repeatedly (the ``zapping`` workload with static membership).
* ``distance-education`` -- an 800-student lecture with 5 %/period churn
  during one lecturer hand-over (the ``paper-baseline`` workload, resized).
* ``flash-crowd`` -- a 500-node premiere under tight bandwidth and a large
  startup window (the ``flash-crowd`` workload, stressed).

For backwards compatibility :meth:`Scenario.config` (and
:func:`scenario_config`) still materialise a single
:class:`~repro.streaming.session.SessionConfig` -- the scenario's first
switch segment -- for callers that want one session rather than the whole
scripted workload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Tuple

from repro.streaming.session import SessionConfig
from repro.workloads.library import get_workload
from repro.workloads.runner import segment_config
from repro.workloads.schedule import compile_workload
from repro.workloads.spec import WorkloadSpec

__all__ = ["Scenario", "SCENARIOS", "scenario_config"]


@dataclass(frozen=True)
class Scenario:
    """A named wrapper around a workload-library spec.

    Attributes
    ----------
    name / description:
        Scenario identification (what the CLI lists and prints).
    workload:
        Name of the underlying spec in the workload library.
    spec_overrides:
        ``WorkloadSpec`` fields replaced on the library spec (e.g.
        ``n_nodes``, ``base_leave_fraction``), as sorted pairs so the
        scenario stays hashable.
    session_overrides:
        Extra :class:`SessionConfig` fields merged into the spec's
        session overrides (e.g. ``inbound_mean``).
    """

    name: str
    description: str
    workload: str
    spec_overrides: Tuple[Tuple[str, Any], ...] = ()
    session_overrides: Tuple[Tuple[str, Any], ...] = ()

    def spec(self) -> WorkloadSpec:
        """Materialise the scenario into its workload spec."""
        spec = get_workload(self.workload)
        overrides = dict(self.spec_overrides)
        if overrides:
            spec = replace(spec, **overrides)
        extra = dict(self.session_overrides)
        if extra:
            spec = spec.with_overrides(**extra)
        return spec

    @property
    def n_nodes(self) -> int:
        """Overlay size of the resolved spec."""
        return self.spec().n_nodes

    @property
    def dynamic(self) -> bool:
        """Whether the scenario has base (ambient) churn."""
        spec = self.spec()
        return spec.base_leave_fraction > 0 or spec.base_join_fraction > 0

    @property
    def n_switches(self) -> int:
        """How many source switches the scenario scripts."""
        return self.spec().n_switches

    def config(self, *, algorithm: str = "fast", seed: int = 0) -> SessionConfig:
        """The session configuration of the scenario's first switch segment."""
        spec = self.spec()
        schedule = compile_workload(spec)
        return segment_config(spec, schedule.segments[0], seed, algorithm=algorithm)


SCENARIOS: Dict[str, Scenario] = {
    "video-conference": Scenario(
        name="video-conference",
        description=(
            "A 300-participant conference; the speaker changes repeatedly and "
            "every participant must switch to each new speaker's stream quickly "
            "(static membership)."
        ),
        workload="zapping",
        spec_overrides=(
            ("base_join_fraction", 0.0),
            ("base_leave_fraction", 0.0),
            ("n_nodes", 300),
        ),
    ),
    "distance-education": Scenario(
        name="distance-education",
        description=(
            "An 800-student lecture with students joining and leaving "
            "(5% per scheduling period) while the lecturer hands over."
        ),
        workload="paper-baseline",
        spec_overrides=(("n_nodes", 800),),
    ),
    "flash-crowd": Scenario(
        name="flash-crowd",
        description=(
            "A 500-node premiere under tight bandwidth (mean inbound 12 "
            "segments/s), a large startup window (Qs=80) and a 30%/period "
            "joining rush after the switch."
        ),
        workload="flash-crowd",
        spec_overrides=(("n_nodes", 500), ("peer_classes", ())),
        session_overrides=(
            ("inbound_mean", 12.0),
            ("outbound_mean", 12.0),
            ("startup_quota_new", 80),
        ),
    ),
}


def scenario_config(name: str, *, algorithm: str = "fast", seed: int = 0) -> SessionConfig:
    """Configuration for a named scenario (``KeyError`` with a hint otherwise)."""
    try:
        scenario = SCENARIOS[name]
    except KeyError as exc:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}") from exc
    return scenario.config(algorithm=algorithm, seed=seed)
