"""SQLite backend for the result store.

One ``store.sqlite`` file inside the results directory replaces the
one-file-per-document layout of :class:`~repro.experiments.store.
ResultStore`.  At universe scale the JSON backend's weakness is file
count, not file size -- a million-viewer sweep leaves tens of thousands
of small documents plus sidecars, and listing or syncing the directory
grinds.  The SQLite backend keeps the exact same logical contract (same
fingerprint keys, same stamped document envelope, byte-identical JSON
payloads) inside a single database:

* documents are stored as their canonical JSON serialisation (the same
  ``sort_keys=True`` dump the JSON backend writes), so migrating between
  backends round-trips losslessly;
* the listing metadata (kind, created, code version, description, size)
  is denormalised into indexed columns, making ``repro store ls`` -- with
  its ``--kind``/``--limit`` filters -- a query instead of a crawl;
* writes go through a transaction in WAL mode, so concurrent sweep
  workers sharing one database serialise cleanly instead of corrupting
  each other.

Only the storage primitives live here; every typed saver and the
replay-or-execute discipline are inherited from
:class:`~repro.experiments.store.BaseResultStore` unchanged.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.experiments.store import SCHEMA_VERSION, BaseResultStore, StoreEntry, _describe

__all__ = ["SQLITE_STORE_FILENAME", "SQLiteStore"]

#: The database file kept inside the results directory.
SQLITE_STORE_FILENAME = "store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    key          TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    created      TEXT NOT NULL,
    code_version TEXT NOT NULL,
    description  TEXT NOT NULL,
    size_bytes   INTEGER NOT NULL,
    payload      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS documents_kind ON documents (kind);
CREATE INDEX IF NOT EXISTS documents_created ON documents (created);
"""


class SQLiteStore(BaseResultStore):
    """Single-file result store (see module docstring).

    Connections are opened per operation rather than held: the store
    object stays picklable (parallel sweep workers receive it), and WAL
    mode makes the reopen cost irrelevant next to a simulation.
    """

    backend = "sqlite"

    def __init__(self, root: "str | os.PathLike[str]", *, replay_only: bool = False) -> None:
        super().__init__(root, replay_only=replay_only)
        self.db_path = self.root / SQLITE_STORE_FILENAME
        with self._connect() as connection:
            connection.executescript(_SCHEMA)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        connection = sqlite3.connect(self.db_path, timeout=30.0)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            with connection:
                yield connection
        finally:
            connection.close()

    # -- backend primitives --------------------------------------------- #
    def _load_document(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` when absent.

        Mirrors the JSON backend's forgiveness: an unparsable or
        wrong-schema payload is a miss (recomputed and rewritten), never
        an error.
        """
        try:
            with self._connect() as connection:
                row = connection.execute(
                    "SELECT payload FROM documents WHERE key = ?", (key,)
                ).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except (json.JSONDecodeError, TypeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            return None
        return payload

    def _save_document(self, key: str, payload: Mapping[str, Any]) -> Path:
        """Persist ``payload`` under ``key``; returns the database path.

        The stored text is the same canonical ``sort_keys=True`` dump the
        JSON backend writes -- the serialised document, not just its
        contents, is identical across backends.
        """
        document = self._stamp(key, payload)
        text = json.dumps(document, sort_keys=True)
        with self._connect() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO documents "
                "(key, kind, created, code_version, description, size_bytes, payload) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    str(document.get("kind", "?")),
                    str(document.get("created", "")),
                    str(document.get("code_version", "")),
                    _describe(document),
                    len(text.encode("utf-8")),
                    text,
                ),
            )
        return self.db_path

    def delete(self, key: str) -> bool:
        """Remove one document; returns whether it existed."""
        with self._connect() as connection:
            cursor = connection.execute("DELETE FROM documents WHERE key = ?", (key,))
            return cursor.rowcount > 0

    def keys(self) -> List[str]:
        """All stored keys, sorted."""
        with self._connect() as connection:
            rows = connection.execute("SELECT key FROM documents ORDER BY key").fetchall()
        return [row[0] for row in rows]

    def clear(self) -> int:
        """Delete every stored document; returns how many were removed."""
        with self._connect() as connection:
            (count,) = connection.execute("SELECT COUNT(*) FROM documents").fetchone()
            connection.execute("DELETE FROM documents")
        return int(count)

    def _all_entries(self) -> List[StoreEntry]:
        """Entry summaries straight from the indexed metadata columns."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT key, kind, created, code_version, description, size_bytes "
                "FROM documents ORDER BY key"
            ).fetchall()
        return [
            StoreEntry(
                key=row[0],
                kind=row[1],
                created=row[2],
                code_version=row[3],
                description=row[4],
                size_bytes=int(row[5]),
            )
            for row in rows
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = ", replay_only=True" if self.replay_only else ""
        return f"SQLiteStore({str(self.root)!r}{mode})"
