"""Named experiment configurations.

The paper's evaluation parameters (Section 5.1) are encoded once here and
reused by the figure generators, the benchmark harness, the examples and
the CLI.  Two sweeps are provided:

* :data:`PAPER_SWEEP_SIZES` -- the overlay sizes of Figures 6--8 and 10--12
  (100 to 8000 nodes),
* :data:`BENCH_SWEEP_SIZES` -- a reduced sweep used by the automated
  benchmark suite so ``pytest benchmarks/`` completes in minutes on a
  laptop; the full sweep is a flag away (``repro-gossip figure 7
  --paper-scale`` or ``REPRO_PAPER_SCALE=1``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from repro.churn.model import ChurnConfig
from repro.streaming.session import SessionConfig

__all__ = [
    "PAPER_SWEEP_SIZES",
    "BENCH_SWEEP_SIZES",
    "RATIO_TRACK_SIZE",
    "BENCH_RATIO_TRACK_SIZE",
    "ExperimentDefaults",
    "make_session_config",
    "paper_scale_enabled",
]

#: Overlay sizes swept by the paper (Figures 6-8, 10-12).
PAPER_SWEEP_SIZES: Tuple[int, ...] = (100, 500, 1000, 2000, 4000, 8000)

#: Reduced sweep used by the automated benchmarks.
BENCH_SWEEP_SIZES: Tuple[int, ...] = (100, 200, 400)

#: Overlay size of the ratio-track figures (5 and 9) in the paper.
RATIO_TRACK_SIZE: int = 1000

#: Reduced ratio-track size used by the automated benchmarks.
BENCH_RATIO_TRACK_SIZE: int = 300


def paper_scale_enabled() -> bool:
    """Whether full paper-scale experiments were requested via the environment."""
    return os.environ.get("REPRO_PAPER_SCALE", "").strip() in {"1", "true", "yes", "on"}


@dataclass(frozen=True)
class ExperimentDefaults:
    """The paper's simulation parameters (Section 5.1).

    Attributes mirror :class:`repro.streaming.session.SessionConfig`; this
    object exists so experiments, docs and tests quote a single source of
    truth for "the paper's settings".
    """

    min_degree: int = 5
    play_rate: float = 10.0
    buffer_capacity: int = 600
    tau: float = 1.0
    startup_quota_old: int = 10
    startup_quota_new: int = 50
    inbound_low: float = 10.0
    inbound_high: float = 33.0
    inbound_mean: float = 15.0
    outbound_low: float = 10.0
    outbound_high: float = 33.0
    outbound_mean: float = 15.0
    churn_leave_fraction: float = 0.05
    churn_join_fraction: float = 0.05
    extra_session_kwargs: Mapping[str, object] = field(default_factory=dict)

    def session_kwargs(self) -> dict:
        """Keyword arguments for :class:`SessionConfig` (without size/seed)."""
        kwargs = dict(
            min_degree=self.min_degree,
            play_rate=self.play_rate,
            buffer_capacity=self.buffer_capacity,
            tau=self.tau,
            startup_quota_old=self.startup_quota_old,
            startup_quota_new=self.startup_quota_new,
            inbound_low=self.inbound_low,
            inbound_high=self.inbound_high,
            inbound_mean=self.inbound_mean,
            outbound_low=self.outbound_low,
            outbound_high=self.outbound_high,
            outbound_mean=self.outbound_mean,
        )
        kwargs.update(self.extra_session_kwargs)
        return kwargs


#: Module-level singleton with the paper's defaults.
PAPER_DEFAULTS = ExperimentDefaults()


def make_session_config(
    n_nodes: int,
    *,
    algorithm: str = "fast",
    seed: int = 0,
    dynamic: bool = False,
    defaults: Optional[ExperimentDefaults] = None,
    **overrides: object,
) -> SessionConfig:
    """Build a :class:`SessionConfig` for one experimental run.

    Parameters
    ----------
    n_nodes:
        Overlay size.
    algorithm:
        ``"fast"`` or ``"normal"``.
    seed:
        Root random seed.  Paired comparisons must use the same seed for
        both algorithms.
    dynamic:
        Whether to enable the paper's 5 %/period churn.
    defaults:
        Base parameter set (defaults to the paper's).
    overrides:
        Any :class:`SessionConfig` field, overriding the defaults (e.g.
        ``max_time=60.0`` or ``warmup="simulated"``).
    """
    defaults = defaults or PAPER_DEFAULTS
    kwargs = defaults.session_kwargs()
    kwargs.update(overrides)
    churn = (
        ChurnConfig(
            leave_fraction=defaults.churn_leave_fraction,
            join_fraction=defaults.churn_join_fraction,
            enabled=True,
        )
        if dynamic
        else ChurnConfig.disabled()
    )
    kwargs.setdefault("churn", churn)
    return SessionConfig(n_nodes=n_nodes, seed=seed, algorithm=algorithm, **kwargs)


def sweep_sizes(*, paper_scale: Optional[bool] = None) -> Sequence[int]:
    """The network sizes to sweep: the paper's or the benchmark-reduced set."""
    if paper_scale is None:
        paper_scale = paper_scale_enabled()
    return PAPER_SWEEP_SIZES if paper_scale else BENCH_SWEEP_SIZES


def ratio_track_size(*, paper_scale: Optional[bool] = None) -> int:
    """The overlay size for the ratio-track figures (5 and 9)."""
    if paper_scale is None:
        paper_scale = paper_scale_enabled()
    return RATIO_TRACK_SIZE if paper_scale else BENCH_RATIO_TRACK_SIZE
