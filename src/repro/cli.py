"""Command-line interface.

Installed as ``repro-gossip`` (and the shorter alias ``repro``; see
``pyproject.toml``), also usable as ``python -m repro.cli``.  Sub-commands:

``figure N``
    Regenerate the data behind paper figure ``N`` and print it as a table
    (optionally as JSON).  ``--paper-scale`` switches to the paper's full
    overlay sizes (slow); the default uses the reduced benchmark sizes.
    With ``--results-dir`` results are read from / written to the
    persistent store; ``--from-store`` forbids simulation entirely (pure
    replay).

``sweep``
    Run a paired fast-vs-normal size sweep -- the workload behind Figures
    6--8 and 10--12 -- optionally in parallel (``--workers N``) and through
    the persistent result store (``--results-dir PATH``), and print one row
    per overlay size.

``store ls`` / ``store clear`` / ``store migrate``
    Inspect (``ls`` takes ``--kind``/``--limit`` filters), empty, or
    losslessly migrate a results directory between backends.  Every
    store-backed command accepts ``--store-backend {json,sqlite}``: one
    JSON file per document (the default) or a single ``store.sqlite``
    database in the same directory.

``run``
    Run a single simulation (choose algorithm, size, seed, churn) and print
    its summary metrics.

``compare``
    Run a paired fast-vs-normal comparison and print the reduction ratio.

``workload ls`` / ``workload run NAME`` / ``workload compare NAME``
    The time-scripted workload engine: list the named workloads, run one
    (paired fast-vs-normal, store-backed, parallel over ``--repetitions``
    with ``--workers``), or print the paired switch-time comparison.
    ``--from-store`` forbids simulation (pure replay).  ``--json`` emits a
    machine-readable payload (``compare --json`` a focused comparison one).

``universe ls`` / ``universe run NAME`` / ``universe compare NAME``
    The multi-channel universe: list the named universes, run one (a Zipf
    channel lineup with surfing/loyal zapping; every channel's paired
    fast-vs-normal switch, store-backed, ``--workers`` fans channels out
    bit-identically), or print only the per-popularity-decile zap-time
    comparison.  ``--channels`` / ``--viewers`` rescale the lineup.
    ``--shards N`` routes the run through the sharded runtime
    (:mod:`repro.dist`): a long-lived crash-tolerant worker pool with
    streaming aggregation and a checkpoint journal, so an interrupted run
    resumes without recomputing finished shards -- still bit-identical to
    the serial path.

``bench trend``
    Print the repository's performance trajectory: one row per
    (commit, benchmark) across all ``BENCH_<sha>.json`` summaries,
    with the mean-time change against each benchmark's previous run.

``report``
    Render every figure in the declarative registry
    (:mod:`repro.figures`) from a results store into one self-contained
    HTML report (``report.html`` plus per-figure ``data/<name>.json``):
    the nine paper figures and the universe-scale sketch-backed figures,
    a benchmark-trajectory table (``--bench-dir``) and a store
    inventory.  ``--from-store`` forbids simulation -- figures without
    stored results are listed as skipped instead of simulated.

``scenario NAME``
    Run one of the named example scenarios -- thin wrappers over workload
    specs, executed through the same engine (store-backed; ``--compare``
    prints the switch-time reduction).

``net ls`` / ``net show NAME``
    The latency-aware network layer: list the library topologies or print
    one topology's regions and latency matrix.  ``run``, ``compare``,
    ``workload run|compare``, ``universe run|compare`` and ``scenario``
    accept ``--topology NAME`` to execute over that topology's latency
    fabric instead of the paper's ideal zero-latency network; ``run`` and
    ``compare`` then also print the per-region switch-time breakdown.

``trace overlay PATH`` / ``trace run``
    ``overlay`` generates a synthetic clip2/DSS-style overlay trace
    file.  ``run`` executes one instrumented simulation under the
    observability layer (:mod:`repro.obs`) and writes a Chrome
    trace-event file (``--out``, loadable in ``chrome://tracing`` or
    https://ui.perfetto.dev) plus a per-span timing table.

``run``, ``compare``, ``workload run|compare``, ``universe run|compare``
and ``scenario`` accept ``--engine {oracle,vector}`` to pick the
simulation core: the per-peer object engine (the reference) or the
NumPy array engine (faster, bit-identical -- see docs/architecture.md).
The same commands accept ``--telemetry`` (collect metrics and spans;
persisted beside the results as a ``telemetry-*`` store document when a
results directory is configured) and ``--trace-out PATH`` (also write
the Chrome trace-event file).  Telemetry never changes simulation
results: documents and fingerprints are byte-identical with it on or
off.

``--log-level {debug,info,warning,error}`` (global) configures the
stdlib logging of the ``repro.*`` loggers on stderr -- worker respawn
and retry warnings from the sharded runtime land there, never in the
JSON output on stdout.

The results directory may also be set via the ``REPRO_RESULTS_DIR``
environment variable (the ``--results-dir`` flag wins).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.experiments.config import make_session_config, sweep_sizes
from repro.experiments.figures import FIGURE_GENERATORS, generate_figure
from repro.experiments.runner import run_pair, run_single
from repro.experiments.scenarios import SCENARIOS
from repro.experiments.store import (
    STORE_BACKENDS,
    BaseResultStore,
    MissingResultError,
    default_results_dir,
    migrate_store,
    open_store,
)
from repro.experiments.sweeps import run_size_sweep
from repro.metrics.net import fabric_stats_rows, region_comparison_rows
from repro.metrics.report import format_table
from repro.net.library import TOPOLOGIES, get_topology, topology_names
from repro.overlay.generator import generate_trace
from repro.streaming.session import ENGINE_NAMES
from repro.overlay.trace import write_trace
from repro.channels.runner import UniverseResult, run_universe
from repro.workloads.library import (
    UNIVERSES,
    WORKLOADS,
    get_universe,
    get_workload,
    universe_names,
    workload_names,
)
from repro.workloads.runner import WorkloadResult, run_workload
from repro.workloads.spec import WorkloadSpec

__all__ = ["main", "build_parser"]

_LOG = logging.getLogger("repro.cli")

#: ``--log-level`` choices, lowercase on the command line.
_LOG_LEVELS = ("debug", "info", "warning", "error")


#: Figures backed by a size sweep (accept ``sizes``/``repetitions``/``workers``).
_SWEEP_FIGURES = {"6", "7", "8", "10", "11", "12"}

#: Figures backed by a single paired run with per-round series.
_TRACK_FIGURES = {"5", "9"}


def _positive_int(value: str) -> int:
    """Argparse type for options that must be >= 1 (e.g. ``--workers``)."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


#: Document kinds ``store ls --kind`` accepts; ``run`` is the
#: user-facing alias of the on-disk ``pair`` kind.
_STORE_KINDS = ("run", "pair", "workload", "universe", "net", "sweep", "telemetry")


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared persistent-store options to a sub-command."""
    parser.add_argument("--results-dir", default=None,
                        help="persistent result store directory "
                             "(default: $REPRO_RESULTS_DIR if set)")
    parser.add_argument("--store-backend", choices=STORE_BACKENDS, default="json",
                        help="result-store backend: one JSON file per document "
                             "('json', the default) or a single store.sqlite "
                             "database inside the results directory ('sqlite')")


def _add_topology_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--topology`` option to a sub-command."""
    parser.add_argument("--topology", choices=topology_names(), default=None,
                        help="run over this network topology's latency fabric "
                             "(default: the ideal zero-latency network)")


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--engine`` option to a sub-command."""
    parser.add_argument("--engine", choices=sorted(ENGINE_NAMES), default=None,
                        help="simulation core: the per-peer object engine "
                             "('oracle') or the bit-identical NumPy array "
                             "engine ('vector'); default: oracle")


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared telemetry options to a sub-command."""
    parser.add_argument("--telemetry", action="store_true",
                        help="collect metrics and trace spans for this run; "
                             "persisted as a telemetry-* store document when a "
                             "results directory is configured (results stay "
                             "byte-identical either way)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="also write the run's Chrome trace-event file "
                             "here (implies --telemetry; load it in "
                             "chrome://tracing or ui.perfetto.dev)")
    parser.add_argument("--probes", action="store_true",
                        help="also record the sim-time protocol probes "
                             "(implies --telemetry; segment lifecycle, swarm "
                             "health and startup funnel, exported in the "
                             "telemetry document's 'probes' block)")


def _package_version() -> str:
    """The installed package version (falls back to the module version)."""
    try:
        from importlib.metadata import version

        return version("repro-gossip")
    except Exception:
        from repro import __version__

        return __version__


def _resolve_store(args: argparse.Namespace, *, replay_only: bool = False,
                   required: bool = False) -> Optional[BaseResultStore]:
    """Build the store selected by ``--results-dir``/env and ``--store-backend``."""
    path = args.results_dir if args.results_dir else default_results_dir()
    if path is None:
        if required:
            raise SystemExit(
                "error: no results directory; pass --results-dir or set REPRO_RESULTS_DIR"
            )
        return None
    backend = getattr(args, "store_backend", None) or "json"
    return open_store(path, backend=backend, replay_only=replay_only)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-gossip",
        description=(
            "Reproduction of 'Fast Source Switching for Gossip-based "
            "Peer-to-Peer Streaming' (ICPP 2008)"
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_package_version()}")
    parser.add_argument("--log-level", choices=_LOG_LEVELS, default="warning",
                        help="stdlib logging level for the repro.* loggers "
                             "on stderr (default: warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure's data")
    fig.add_argument("number", choices=sorted(FIGURE_GENERATORS, key=int),
                     help="paper figure number")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--paper-scale", action="store_true",
                     help="use the paper's full overlay sizes (slow)")
    fig.add_argument("--sizes", type=int, nargs="+", default=None,
                     help="override the swept overlay sizes")
    fig.add_argument("--n-nodes", type=int, default=None,
                     help="override the overlay size (ratio-track figures)")
    fig.add_argument("--repetitions", type=_positive_int, default=1,
                     help="independent repetitions per size (sweep figures)")
    fig.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    fig.add_argument("--chart", action="store_true",
                     help="also render the figure's series as an ASCII chart")
    fig.add_argument("--workers", type=_positive_int, default=1,
                     help="worker processes for the underlying sweep (sweep figures)")
    fig.add_argument("--from-store", action="store_true",
                     help="replay from the result store only; never simulate")
    _add_store_arguments(fig)

    sweep = sub.add_parser(
        "sweep",
        help="run a paired fast-vs-normal size sweep (Figures 6-8/10-12 workload)",
    )
    sweep.add_argument("--sizes", type=int, nargs="+", default=None,
                       help="overlay sizes to sweep (default: benchmark sizes)")
    sweep.add_argument("--paper-scale", action="store_true",
                       help="sweep the paper's full overlay sizes (slow)")
    sweep.add_argument("--dynamic", action="store_true",
                       help="enable the paper's churn model (Figures 10-12)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--repetitions", type=_positive_int, default=1,
                       help="independent repetitions per size (>= 3 for paper-grade)")
    sweep.add_argument("--workers", type=_positive_int, default=1,
                       help="worker processes; results are bit-identical to --workers 1")
    sweep.add_argument("--max-time", type=float, default=None,
                       help="override the simulation horizon in seconds")
    sweep.add_argument("--json", action="store_true")
    _add_store_arguments(sweep)

    store = sub.add_parser("store", help="inspect, empty or migrate the persistent result store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser("ls", help="list stored results")
    store_ls.add_argument("--json", action="store_true")
    store_ls.add_argument("--limit", type=_positive_int, default=None, metavar="N",
                          help="show only the newest N entries (by creation time)")
    store_ls.add_argument("--kind", choices=sorted(_STORE_KINDS), default=None,
                          help="show only entries of this document kind "
                               "('run' is an alias for 'pair')")
    _add_store_arguments(store_ls)
    store_clear = store_sub.add_parser("clear", help="delete every stored result")
    _add_store_arguments(store_clear)
    store_migrate = store_sub.add_parser(
        "migrate",
        help="copy every document into another backend (lossless, "
             "envelope and keys preserved)",
    )
    store_migrate.add_argument("--to", required=True, choices=STORE_BACKENDS,
                               dest="to_backend",
                               help="destination backend")
    store_migrate.add_argument("--dest-dir", default=None,
                               help="destination results directory "
                                    "(default: the source directory itself)")
    _add_store_arguments(store_migrate)

    run = sub.add_parser("run", help="run a single simulation")
    run.add_argument("--algorithm", choices=["fast", "normal"], default="fast")
    run.add_argument("--n-nodes", type=int, default=200)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--dynamic", action="store_true", help="enable 5%% churn per period")
    run.add_argument("--max-time", type=float, default=120.0)
    run.add_argument("--json", action="store_true")
    _add_topology_argument(run)
    _add_engine_argument(run)
    _add_telemetry_arguments(run)
    _add_store_arguments(run)

    cmp_parser = sub.add_parser("compare", help="paired fast-vs-normal comparison")
    cmp_parser.add_argument("--n-nodes", type=int, default=200)
    cmp_parser.add_argument("--seed", type=int, default=0)
    cmp_parser.add_argument("--dynamic", action="store_true")
    cmp_parser.add_argument("--max-time", type=float, default=120.0)
    cmp_parser.add_argument("--json", action="store_true")
    _add_topology_argument(cmp_parser)
    _add_engine_argument(cmp_parser)
    _add_telemetry_arguments(cmp_parser)
    _add_store_arguments(cmp_parser)

    workload = sub.add_parser(
        "workload", help="list or run the time-scripted workloads"
    )
    workload_sub = workload.add_subparsers(dest="workload_command", required=True)
    workload_ls = workload_sub.add_parser("ls", help="list the named workloads")
    workload_ls.add_argument("--json", action="store_true")
    for verb, verb_help in (
        ("run", "run a named workload (paired fast-vs-normal)"),
        ("compare", "run a named workload and print the paired comparison"),
    ):
        workload_run = workload_sub.add_parser(verb, help=verb_help)
        workload_run.add_argument("name", choices=workload_names())
        workload_run.add_argument("--seed", type=int, default=0)
        workload_run.add_argument("--n-nodes", type=_positive_int, default=None,
                                  help="override the workload's overlay size")
        workload_run.add_argument("--repetitions", type=_positive_int, default=1,
                                  help="independent repetitions (seed, seed+1, ...)")
        workload_run.add_argument("--workers", type=_positive_int, default=1,
                                  help="worker processes; bit-identical to --workers 1")
        workload_run.add_argument("--from-store", action="store_true",
                                  help="replay from the result store only; never simulate")
        workload_run.add_argument("--compare", action="store_true",
                                  help="print only the paired switch-time comparison")
        workload_run.add_argument("--json", action="store_true")
        _add_topology_argument(workload_run)
        _add_engine_argument(workload_run)
        _add_telemetry_arguments(workload_run)
        _add_store_arguments(workload_run)

    universe = sub.add_parser(
        "universe", help="list or run the multi-channel zapping universes"
    )
    universe_sub = universe.add_subparsers(dest="universe_command", required=True)
    universe_ls = universe_sub.add_parser("ls", help="list the named universes")
    universe_ls.add_argument("--json", action="store_true")
    for verb, verb_help in (
        ("run", "run a named universe (paired fast-vs-normal on every channel)"),
        ("compare", "run a named universe and print the per-decile comparison"),
    ):
        universe_run = universe_sub.add_parser(verb, help=verb_help)
        universe_run.add_argument("name", choices=universe_names())
        universe_run.add_argument("--seed", type=int, default=0)
        universe_run.add_argument("--channels", type=_positive_int, default=None,
                                  help="override the universe's lineup size")
        universe_run.add_argument("--viewers", type=_positive_int, default=None,
                                  help="override the universe's viewer population")
        universe_run.add_argument("--repetitions", type=_positive_int, default=1,
                                  help="independent repetitions (seed, seed+1, ...)")
        universe_run.add_argument("--workers", type=_positive_int, default=1,
                                  help="worker processes (per-channel fan-out); "
                                       "bit-identical to --workers 1")
        universe_run.add_argument("--shards", type=_positive_int, default=None,
                                  help="run through the sharded runtime: partition "
                                       "the repetitions x channels units into this "
                                       "many shards on a long-lived worker pool "
                                       "with checkpoint/resume; bit-identical to "
                                       "the serial path")
        universe_run.add_argument("--progress", action="store_true",
                                  help="with --shards: print a periodic live "
                                       "status line to stderr (shards done/total, "
                                       "ETA from shard history, per-worker "
                                       "heartbeat age)")
        universe_run.add_argument("--from-store", action="store_true",
                                  help="replay from the result store only; never simulate")
        universe_run.add_argument("--compare", action="store_true",
                                  help="print only the per-decile zap-time comparison")
        universe_run.add_argument("--json", action="store_true")
        _add_topology_argument(universe_run)
        _add_engine_argument(universe_run)
        _add_telemetry_arguments(universe_run)
        _add_store_arguments(universe_run)

    scen = sub.add_parser("scenario", help="run a named example scenario")
    scen.add_argument("name", choices=sorted(SCENARIOS))
    scen.add_argument("--seed", type=int, default=0)
    scen.add_argument("--repetitions", type=_positive_int, default=1)
    scen.add_argument("--workers", type=_positive_int, default=1,
                      help="worker processes; bit-identical to --workers 1")
    scen.add_argument("--from-store", action="store_true",
                      help="replay from the result store only; never simulate")
    scen.add_argument("--compare", action="store_true",
                      help="print only the paired switch-time comparison")
    scen.add_argument("--json", action="store_true")
    _add_topology_argument(scen)
    _add_engine_argument(scen)
    _add_telemetry_arguments(scen)
    _add_store_arguments(scen)

    net = sub.add_parser("net", help="inspect the network-topology library")
    net_sub = net.add_subparsers(dest="net_command", required=True)
    net_ls = net_sub.add_parser("ls", help="list the named network topologies")
    net_ls.add_argument("--json", action="store_true")
    net_show = net_sub.add_parser("show", help="print one topology's full model")
    net_show.add_argument("name", choices=topology_names())
    net_show.add_argument("--json", action="store_true")

    trace = sub.add_parser(
        "trace", help="overlay trace files and run-telemetry traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_overlay = trace_sub.add_parser(
        "overlay", help="generate a synthetic overlay trace file"
    )
    trace_overlay.add_argument("path", help="output file path")
    trace_overlay.add_argument("--n-nodes", type=int, default=1000)
    trace_overlay.add_argument("--seed", type=int, default=0)
    trace_overlay.add_argument("--mean-degree", type=float, default=2.0)
    trace_run = trace_sub.add_parser(
        "run",
        help="run one instrumented simulation and write a Chrome "
             "trace-event file (chrome://tracing / ui.perfetto.dev)",
    )
    trace_run.add_argument("--out", default="trace.json",
                           help="Chrome trace-event output path "
                                "(default: ./trace.json)")
    trace_run.add_argument("--algorithm", choices=["fast", "normal"], default="fast")
    trace_run.add_argument("--n-nodes", type=int, default=200)
    trace_run.add_argument("--seed", type=int, default=0)
    trace_run.add_argument("--dynamic", action="store_true",
                           help="enable 5%% churn per period")
    trace_run.add_argument("--max-time", type=float, default=120.0)
    trace_run.add_argument("--json", action="store_true")
    _add_topology_argument(trace_run)
    _add_engine_argument(trace_run)

    probe = sub.add_parser(
        "probe",
        help="run one probed simulation and inspect the sim-time protocol "
             "probes (segment lifecycle, swarm health, startup funnel)",
    )
    probe.add_argument("--algorithm", choices=["fast", "normal"], default="fast")
    probe.add_argument("--n-nodes", type=int, default=200)
    probe.add_argument("--seed", type=int, default=0)
    probe.add_argument("--dynamic", action="store_true",
                       help="enable 5%% churn per period")
    probe.add_argument("--max-time", type=float, default=120.0)
    probe.add_argument("--peer", type=int, default=None, metavar="ID",
                       help="print this peer's segment-lifecycle timeline "
                            "instead of the swarm overview")
    probe.add_argument("--seg", type=int, default=None, metavar="ID",
                       help="restrict the --peer timeline to one segment id")
    probe.add_argument("--last", type=_positive_int, default=40, metavar="N",
                       help="timeline events to print (newest last, default 40)")
    probe.add_argument("--json", action="store_true")
    _add_topology_argument(probe)
    _add_engine_argument(probe)

    bench = sub.add_parser("bench", help="inspect the benchmark trajectory")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_trend = bench_sub.add_parser(
        "trend",
        help="print the perf trajectory across all BENCH_<sha>.json summaries",
    )
    bench_trend.add_argument("--bench-dir", default=".",
                             help="directory holding the BENCH_*.json summaries "
                                  "(default: the current directory)")
    bench_trend.add_argument("--json", action="store_true")

    report = sub.add_parser(
        "report",
        help="render every registered figure from a results store into one "
             "self-contained HTML report",
    )
    report.add_argument("--out", default="report",
                        help="output directory for report.html and data/ "
                             "(default: ./report)")
    report.add_argument("--title", default="Reproduction report")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--sizes", type=_positive_int, nargs="+", default=None,
                        help="overlay sizes for the sweep figures "
                             "(default: the generators' reduced sizes)")
    report.add_argument("--n-nodes", type=_positive_int, default=None,
                        help="overlay size for the ratio-track figures")
    report.add_argument("--repetitions", type=_positive_int, default=1)
    report.add_argument("--workers", type=_positive_int, default=1)
    report.add_argument("--universe", default=None,
                        help="restrict the universe figures to one named "
                             "universe (default: all stored universes)")
    report.add_argument("--bench-dir", default=None,
                        help="also render the benchmark trajectory from this "
                             "directory's BENCH_*.json summaries")
    report.add_argument("--from-store", action="store_true",
                        help="replay-only: forbid simulation, skip figures "
                             "whose results are not stored")
    report.add_argument("--json", action="store_true",
                        help="print the report summary as JSON")
    _add_store_arguments(report)
    return parser


def _metrics_rows(result) -> List[dict]:
    metrics = result.metrics
    return [
        {"metric": "algorithm", "value": metrics.algorithm},
        {"metric": "tracked peers", "value": metrics.n_peers},
        {"metric": "avg finishing time of S1 (s)", "value": round(metrics.avg_finish_old, 3)},
        {"metric": "avg preparing time of S2 (s)", "value": round(metrics.avg_prepare_new, 3)},
        {"metric": "avg switch time (s)", "value": round(metrics.avg_switch_time, 3)},
        {"metric": "avg playback start of S2 (s)", "value": round(metrics.avg_start_time, 3)},
        {"metric": "last prepare time (s)", "value": round(metrics.last_prepare_new, 3)},
        {"metric": "unfinished peers", "value": metrics.unfinished},
        {"metric": "communication overhead", "value": round(result.overhead_ratio, 5)},
        {"metric": "rounds simulated", "value": result.n_rounds},
        {"metric": "wallclock (s)", "value": round(result.wallclock_seconds, 2)},
    ]


def _cmd_figure(args: argparse.Namespace) -> int:
    store = _resolve_store(args, replay_only=args.from_store, required=args.from_store)
    kwargs: dict = {"seed": args.seed}
    if args.paper_scale:
        kwargs["paper_scale"] = True
    if args.number in _SWEEP_FIGURES:
        if args.sizes:
            kwargs["sizes"] = args.sizes
        kwargs["repetitions"] = args.repetitions
        if args.workers > 1:
            kwargs["workers"] = args.workers
    if args.number in _TRACK_FIGURES and args.n_nodes:
        kwargs["n_nodes"] = args.n_nodes
    if args.number == "2":
        kwargs = {}
    elif store is not None:
        kwargs["store"] = store
    try:
        result = generate_figure(args.number, **kwargs)
    except MissingResultError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "figure": result.figure_id,
            "title": result.title,
            "meta": result.meta,
            "rows": result.rows,
            "series": result.series,
        }, indent=2, default=str))
    else:
        print(result.to_text())
        if getattr(args, "chart", False) and result.series:
            from repro.analysis.charts import ascii_line_chart

            print()
            print(ascii_line_chart(result.series, title=f"Figure {result.figure_id}: "
                                                        f"{result.title}"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    store = _resolve_store(args)
    sizes = args.sizes if args.sizes else list(sweep_sizes(paper_scale=args.paper_scale or None))
    overrides: dict = {}
    if args.max_time is not None:
        overrides["max_time"] = args.max_time
    sweep = run_size_sweep(
        sizes,
        dynamic=args.dynamic,
        seed=args.seed,
        repetitions=args.repetitions,
        overrides=overrides,
        workers=args.workers,
        store=store,
    )
    if args.json:
        print(json.dumps({
            "sizes": sizes,
            "dynamic": sweep.dynamic,
            "seed": sweep.seed,
            "repetitions": args.repetitions,
            "workers": args.workers,
            "results_dir": str(store.root) if store is not None else None,
            "rows": sweep.rows(),
        }, indent=2))
    else:
        print(format_table(sweep.rows()))
        if store is not None:
            print(f"\nresults persisted under {store.root}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = _resolve_store(args, required=True)
    if args.store_command == "ls":
        kind = args.kind
        if kind == "run":
            kind = "pair"
        entries = store.entries(kind=kind, limit=args.limit)
        if getattr(args, "json", False):
            print(json.dumps([entry.as_row() for entry in entries], indent=2))
        elif not entries:
            print(f"(store at {store.root} is empty)")
        else:
            print(format_table([entry.as_row() for entry in entries]))
    elif args.store_command == "migrate":
        dest_dir = args.dest_dir if args.dest_dir else store.root
        dest = open_store(dest_dir, backend=args.to_backend)
        if dest.backend == store.backend and Path(dest.root) == Path(store.root):
            print("error: source and destination are the same store; "
                  "pass --to with a different backend or --dest-dir",
                  file=sys.stderr)
            return 1
        migrated = migrate_store(store, dest)
        print(f"migrated {migrated} document(s) from {store.backend}:{store.root} "
              f"to {dest.backend}:{dest.root}")
    else:  # clear
        removed = store.clear()
        print(f"removed {removed} stored result(s) from {store.root}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = make_session_config(
        args.n_nodes,
        algorithm=args.algorithm,
        seed=args.seed,
        dynamic=args.dynamic,
        max_time=args.max_time,
        topology=args.topology or "",
        **({"engine": args.engine} if args.engine else {}),
    )
    result = run_single(config)
    rows = _metrics_rows(result)
    if args.topology:
        rows.extend(fabric_stats_rows(result.fabric_stats))
    if args.json:
        print(json.dumps({row["metric"]: row["value"] for row in rows}, indent=2))
    else:
        print(format_table(rows, ["metric", "value"]))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = make_session_config(
        args.n_nodes,
        seed=args.seed,
        dynamic=args.dynamic,
        max_time=args.max_time,
        topology=args.topology or "",
        **({"engine": args.engine} if args.engine else {}),
    )
    pair = run_pair(config)
    row = pair.comparison().as_dict()
    region_rows = []
    if args.topology:
        region_rows = region_comparison_rows(
            pair.normal.metrics.outcomes,
            pair.fast.metrics.outcomes,
            horizon=pair.normal.metrics.horizon,
        )
    if args.json:
        payload = dict(row)
        if args.topology:
            payload["topology"] = args.topology
            payload["regions"] = region_rows
        print(json.dumps(payload, indent=2))
    else:
        print(format_table([row]))
        if region_rows:
            print(f"\nper-region switch time over {args.topology!r}:")
            print(format_table(region_rows))
        print(f"\nswitch-time reduction: {pair.switch_time_reduction:.1%}")
    return 0


def _cmd_net(args: argparse.Namespace) -> int:
    if args.net_command == "ls":
        rows = [
            {
                "name": topology.name,
                "regions": ",".join(topology.region_names),
                "max_latency_ms": topology.max_latency_ms,
                "lossy": topology.lossy,
                "locality_bias": topology.locality_bias,
                "description": topology.description,
            }
            for _, topology in sorted(TOPOLOGIES.items())
        ]
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(format_table(rows))
        return 0
    topology = get_topology(args.name)
    if args.json:
        print(json.dumps(topology.to_dict(), indent=2))
        return 0
    print(f"topology: {topology.name} -- {topology.description}")
    print(f"locality_bias: {topology.locality_bias}")
    print()
    region_rows = [
        {
            "region": region.name,
            "weight": region.weight,
            "last_mile_ms": region.last_mile_ms,
            "jitter_ms": region.jitter_ms,
            "loss": region.loss,
        }
        for region in topology.regions
    ]
    print(format_table(region_rows))
    print()
    print("one-way backbone latency matrix (ms):")
    matrix_rows = [
        {"from/to": src.name, **{dst.name: topology.latency_ms[i][j]
                                 for j, dst in enumerate(topology.regions)}}
        for i, src in enumerate(topology.regions)
    ]
    print(format_table(matrix_rows))
    return 0


def _workload_payload(result: WorkloadResult) -> dict:
    """Machine-readable form of a workload run (the ``--json`` output)."""
    return {
        "workload": result.spec.name,
        "n_nodes": result.spec.n_nodes,
        "n_switches": result.spec.n_switches,
        "seed": result.seed,
        "repetitions": result.repetitions,
        "simulated": result.simulated,
        "replayed": result.replayed,
        "mean_reduction": result.mean_reduction,
        "switch_rows": result.switch_rows(),
        "class_rows": result.class_rows(),
        "phase_rows": result.phase_rows(),
    }


def _workload_compare_payload(result: WorkloadResult) -> dict:
    """Focused machine-readable comparison (``workload compare --json``).

    Strips the per-class and per-phase detail down to what a benchmark
    harness consumes: the paired per-switch rows and the mean reduction.
    """
    return {
        "workload": result.spec.name,
        "n_nodes": result.spec.n_nodes,
        "seed": result.seed,
        "repetitions": result.repetitions,
        "mean_reduction": result.mean_reduction,
        "switch_rows": result.switch_rows(),
    }


def _print_workload_result(result: WorkloadResult, *, compare_only: bool) -> None:
    spec = result.spec
    print(f"workload: {spec.name} -- {spec.description}")
    print(
        f"n_nodes={spec.n_nodes} switches={spec.n_switches} "
        f"phases={len(spec.phases)} repetitions={result.repetitions} "
        f"(simulated {result.simulated}, replayed {result.replayed})"
    )
    print()
    print(format_table(result.switch_rows()))
    if not compare_only:
        class_rows = result.class_rows()
        if class_rows:
            print()
            print("per-class switch-time percentiles (s):")
            print(format_table(class_rows))
        print()
        print("per-phase playback quality (fast algorithm):")
        print(format_table(result.phase_rows()))
    print(f"\nmean switch-time reduction: {result.mean_reduction:.1%}")


def _run_workload_spec(spec: WorkloadSpec, args: argparse.Namespace) -> int:
    """Shared execution path of ``workload run|compare`` and ``scenario``."""
    store = _resolve_store(args, replay_only=args.from_store, required=args.from_store)
    if getattr(args, "n_nodes", None) is not None:
        spec = spec.scaled_to(args.n_nodes)
    if getattr(args, "topology", None):
        spec = spec.with_overrides(topology=args.topology)
    try:
        result = run_workload(
            spec,
            seed=args.seed,
            repetitions=args.repetitions,
            workers=args.workers,
            store=store,
            engine=getattr(args, "engine", None),
        )
    except (MissingResultError, ValueError) as error:
        # ValueError: spec/size combinations the engine rejects (e.g. an
        # overlay too small for the minimum degree) -- user input, not a bug.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        payload = (
            _workload_compare_payload(result)
            if getattr(args, "compare", False)
            else _workload_payload(result)
        )
        print(json.dumps(payload, indent=2))
    else:
        _print_workload_result(result, compare_only=args.compare)
        if store is not None:
            print(f"results persisted under {store.root}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    if args.workload_command == "ls":
        rows = [
            {
                "name": spec.name,
                "n_nodes": spec.n_nodes,
                "switches": spec.n_switches,
                "phases": " -> ".join(phase.name for phase in spec.phases),
                "classes": ",".join(cls.name for cls in spec.peer_classes) or "-",
                "duration_s": spec.total_duration,
            }
            for _, spec in sorted(WORKLOADS.items())
        ]
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(format_table(rows))
        return 0
    if args.workload_command == "compare":
        args.compare = True
    return _run_workload_spec(get_workload(args.name), args)


def _universe_payload(result: UniverseResult, *, compare_only: bool) -> dict:
    """Machine-readable form of a universe run (the ``--json`` output)."""
    payload = {
        "universe": result.spec.name,
        "n_channels": result.spec.n_channels,
        "n_viewers": result.spec.n_viewers,
        "topology": result.spec.topology,
        "seed": result.seed,
        "repetitions": result.repetitions,
        "simulated": result.simulated,
        "replayed": result.replayed,
        "n_zaps": result.n_zaps,
        "mean_reduction": result.mean_reduction,
        "decile_rows": result.decile_rows(),
    }
    if not compare_only:
        payload["channel_rows"] = result.channel_rows()
    return payload


def _print_universe_result(result: UniverseResult, *, compare_only: bool) -> None:
    spec = result.spec
    print(f"universe: {spec.name} -- {spec.description}")
    if spec.topology:
        print(f"topology: {spec.topology}")
    print(
        f"channels={spec.n_channels} viewers={spec.n_viewers} "
        f"zipf_exponent={spec.zipf_exponent} horizon={spec.horizon:.0f}s "
        f"repetitions={result.repetitions} "
        f"(simulated {result.simulated}, replayed {result.replayed}) "
        f"zaps={result.n_zaps}"
    )
    print()
    if not compare_only:
        print(format_table(result.channel_rows()))
        print()
        print("per-popularity-decile zap time (s):")
    print(format_table(result.decile_rows()))
    print(f"\nmean zap-time reduction: {result.mean_reduction:.1%}")


def _cmd_universe(args: argparse.Namespace) -> int:
    if args.universe_command == "ls":
        rows = [
            {
                "name": spec.name,
                "channels": spec.n_channels,
                "viewers": spec.n_viewers,
                "zipf_exponent": spec.zipf_exponent,
                "surfers": f"{spec.surfer_fraction:.0%}@{spec.surfer_zap_rate:.0%}/period",
                "topology": spec.topology or "-",
                "duration_s": spec.duration,
            }
            for _, spec in sorted(UNIVERSES.items())
        ]
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(format_table(rows))
        return 0
    if args.universe_command == "compare":
        args.compare = True
    spec = get_universe(args.name)
    store = _resolve_store(args, replay_only=args.from_store, required=args.from_store)
    try:
        if args.channels is not None or args.viewers is not None:
            spec = spec.scaled_to(n_channels=args.channels, n_viewers=args.viewers)
        if args.topology:
            spec = spec.with_topology(args.topology)
        result = run_universe(
            spec,
            seed=args.seed,
            repetitions=args.repetitions,
            workers=args.workers,
            store=store,
            compute_engine=getattr(args, "engine", None),
            shards=args.shards,
            progress=getattr(args, "progress", False),
        )
    except (MissingResultError, ValueError) as error:
        # ValueError: lineup/population combinations the spec rejects (e.g.
        # too few viewers for the lineup) -- user input, not a bug.
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(_universe_payload(result, compare_only=args.compare), indent=2))
    else:
        _print_universe_result(result, compare_only=args.compare)
        if store is not None:
            print(f"results persisted under {store.root}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    scenario = SCENARIOS[args.name]
    _LOG.info("scenario: %s -- %s", scenario.name, scenario.description)
    return _run_workload_spec(scenario.spec(), args)


def _cmd_probe(args: argparse.Namespace) -> int:
    from repro.obs import telemetry_session
    from repro.streaming.protocol import STAGE_WIRE_BITS

    config = make_session_config(
        args.n_nodes,
        algorithm=args.algorithm,
        seed=args.seed,
        dynamic=args.dynamic,
        max_time=args.max_time,
        topology=args.topology or "",
        **({"engine": args.engine} if args.engine else {}),
    )
    with telemetry_session(probes=True) as telemetry:
        run_single(config)
    probes = telemetry.probes
    lifecycle = probes.lifecycle
    if args.json:
        payload = probes.snapshot()
        if args.peer is not None:
            payload["timeline"] = lifecycle.rows(peer=args.peer, seg=args.seg)
        print(json.dumps(payload, indent=2))
        return 0
    if args.peer is not None:
        events = lifecycle.rows(peer=args.peer, seg=args.seg)
        if not events:
            print(f"(no lifecycle events recorded for peer {args.peer})")
            return 0
        shown = events[-args.last:]
        print(f"segment lifecycle of peer {args.peer} "
              f"({len(shown)} of {len(events)} events, newest last):")
        print(format_table([
            {
                "t_sim": f"{event['time']:.2f}",
                "period": event["period"],
                "seg": event["seg"],
                "stage": event["stage"],
                "supplier": event["supplier"] if event["supplier"] >= 0 else "-",
                "value": round(event["value"], 4),
                "wire_bits": STAGE_WIRE_BITS.get(event["stage"], 0),
            }
            for event in shown
        ]))
        return 0
    print("segment lifecycle:")
    print(format_table([
        {"stage": stage, "events": count}
        for stage, count in lifecycle.stage_counts().items()
    ]))
    drops = lifecycle.drop_reason_counts()
    if drops:
        print("\ndrop reasons:")
        print(format_table([
            {"reason": reason, "drops": count} for reason, count in drops.items()
        ]))
    print("\nstartup funnel:")
    print(format_table(probes.funnel.funnel_rows()))
    health = probes.health.rows()
    if health:
        step = max(1, len(health) // 12)
        print("\nswarm health (every "
              f"{step}{'st' if step == 1 else 'th'} period):")
        print(format_table([
            {
                "t_sim": f"{row['time']:.1f}",
                "peers": row["peers"],
                "fill_p50": row["fill_p50"],
                "fill_p90": row["fill_p90"],
                "pending": row["pending"],
                "util": row["utilisation"],
                "requests": row["requests"],
                "failed": row["failed"],
                "delivered": row["delivered"],
            }
            for row in health[::step]
        ]))
    if lifecycle.dropped:
        print(f"warning: lifecycle ring buffer overflowed; "
              f"{lifecycle.dropped} events were dropped "
              f"(first {len(lifecycle)} kept)", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.bench import bench_trend_rows, load_bench_summaries

    summaries = load_bench_summaries(args.bench_dir)
    rows = bench_trend_rows(summaries)
    if args.json:
        print(json.dumps({
            "bench_dir": str(args.bench_dir),
            "summaries": [s["file"] for s in summaries],
            "rows": rows,
        }, indent=2))
        return 0
    if len(summaries) < 2:
        print(f"need >= 2 timestamped BENCH_*.json summaries under "
              f"{args.bench_dir} to chart a trajectory; found {len(summaries)} "
              f"(run benchmarks/run_benchmarks.py to record one)")
        return 0
    if not rows:
        print(f"(no benchmark rows in the BENCH_*.json summaries under {args.bench_dir})")
        return 0
    table = [
        {
            "git_sha": row["git_sha"],
            "created": row["created"][:19],
            "benchmark": row["benchmark"].rsplit("::", 1)[-1],
            "mean_s": f"{row['mean_s']:.6f}",
            "change": "-" if row["change"] is None else f"{row['change']:+.1%}",
        }
        for row in rows
    ]
    print(format_table(table))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.figures import render_report

    store = _resolve_store(args, replay_only=args.from_store, required=True)
    summary = render_report(
        store,
        args.out,
        title=args.title,
        bench_dir=args.bench_dir,
        seed=args.seed,
        sizes=args.sizes,
        n_nodes=args.n_nodes,
        repetitions=args.repetitions,
        workers=args.workers,
        universe=args.universe,
    )
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"wrote {summary.html_path} "
          f"({len(summary.rendered)} figures rendered, "
          f"{len(summary.skipped)} skipped)")
    for name, reason in summary.skipped.items():
        print(f"  skipped {name}: {reason}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "run":
        return _cmd_trace_run(args)
    records = generate_trace(args.n_nodes, seed=args.seed, mean_degree=args.mean_degree)
    write_trace(records, args.path,
                header=f"synthetic trace: n={args.n_nodes} seed={args.seed}")
    print(f"wrote {len(records)} records to {args.path}")
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    from repro.obs import telemetry_session, write_chrome_trace

    config = make_session_config(
        args.n_nodes,
        algorithm=args.algorithm,
        seed=args.seed,
        dynamic=args.dynamic,
        max_time=args.max_time,
        topology=args.topology or "",
        **({"engine": args.engine} if args.engine else {}),
    )
    with telemetry_session() as telemetry:
        run_single(config)
    identity = {
        "kind": "run",
        "name": f"trace-{args.algorithm}",
        "n_nodes": args.n_nodes,
        "seed": args.seed,
    }
    write_chrome_trace(telemetry, args.out, run=identity)
    _warn_trace_overflow(telemetry)
    stats = telemetry.tracer.span_stats()
    n_events = len(telemetry.tracer.events())
    if args.json:
        print(json.dumps({
            "out": str(args.out),
            "events": n_events,
            "spans": stats,
            "counters": telemetry.registry.snapshot()["counters"],
        }, indent=2))
        return 0
    rows = [
        {
            "span": name,
            "count": stat["count"],
            "total_s": round(stat["total_s"], 4),
            "mean_ms": round(stat["mean_s"] * 1e3, 3),
            "p95_ms": round(stat["p95_s"] * 1e3, 3),
        }
        for name, stat in stats.items()
    ]
    print(format_table(rows))
    print(f"\nwrote {n_events} trace events to {args.out}")
    return 0


def _warn_trace_overflow(telemetry) -> None:
    """One-line stderr warning when the Tracer ring buffer overflowed.

    The dropped count is otherwise only visible inside the exported
    document; a truncated trace silently missing its tail is the kind of
    thing worth one loud line.
    """
    dropped = getattr(getattr(telemetry, "tracer", None), "dropped", 0)
    if dropped:
        kept = len(telemetry.tracer.events())
        print(f"warning: trace ring buffer overflowed; {dropped} events were "
              f"dropped (first {kept} kept -- raise the buffer via "
              f"telemetry_session(max_trace_events=...))", file=sys.stderr)


_COMMANDS = {
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "store": _cmd_store,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "workload": _cmd_workload,
    "universe": _cmd_universe,
    "scenario": _cmd_scenario,
    "net": _cmd_net,
    "trace": _cmd_trace,
    "probe": _cmd_probe,
    "bench": _cmd_bench,
    "report": _cmd_report,
}


def _run_identity(args: argparse.Namespace) -> dict:
    """The run-identity payload ``telemetry-*`` documents are keyed by.

    Identity, not content: two invocations with the same command line map
    to the same telemetry key, so a re-run refreshes its document in
    place instead of accumulating one per execution.
    """
    identity = {
        "kind": args.command,
        "name": getattr(args, "name", None) or args.command,
    }
    for key in ("workload_command", "universe_command", "algorithm", "engine",
                "topology", "n_nodes", "channels", "viewers", "seed",
                "repetitions", "workers", "shards", "dynamic"):
        value = getattr(args, key, None)
        if value is not None and value is not False:
            identity[key] = value
    return identity


def _export_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Persist/export one enabled run's telemetry (after a clean exit)."""
    from repro.obs import write_chrome_trace
    from repro.experiments.store import persist_telemetry_document

    identity = _run_identity(args)
    _warn_trace_overflow(telemetry)
    if getattr(args, "trace_out", None):
        write_chrome_trace(telemetry, args.trace_out, run=identity)
        _LOG.info("wrote Chrome trace to %s", args.trace_out)
    if getattr(args, "from_store", False):
        return  # replay-only invocations never write to the store
    store = _resolve_store(args) if hasattr(args, "results_dir") else None
    if store is not None:
        key = persist_telemetry_document(store, run=identity, telemetry=telemetry)
        _LOG.info("telemetry persisted as %s", key)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )
    probes_on = bool(getattr(args, "probes", False))
    telemetry_on = bool(
        getattr(args, "telemetry", False)
        or getattr(args, "trace_out", None)
        or probes_on
    )
    if not telemetry_on:
        return _COMMANDS[args.command](args)
    from repro.obs import telemetry_session

    with telemetry_session(probes=probes_on) as telemetry:
        code = _COMMANDS[args.command](args)
    if code == 0:
        _export_telemetry(args, telemetry)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
