"""Regions and inter-region latency topologies.

The paper's simulation model is *network-oblivious*: buffer maps and
segments move between peers at period granularity with zero propagation
delay, so a peer in Tokyo and a peer across the street are
indistinguishable.  The :mod:`repro.net` layer makes geography a
first-class experiment axis.  A :class:`NetTopology` names a handful of
:class:`Region` objects -- each with its own last-mile delay, jitter and
loss characteristics -- and quotes a square matrix of one-way backbone
latencies between them (the diagonal is the intra-region backbone).

Topologies are frozen, validated on construction and round-trip exactly
through :meth:`NetTopology.to_dict` / :meth:`NetTopology.from_dict`; the
persistent result store fingerprints that dictionary form as ``net-*``
documents, so a changed matrix can never replay a stale result.

Examples
--------
>>> topo = NetTopology(
...     name="two-city",
...     regions=(Region("east"), Region("west")),
...     latency_ms=((5.0, 80.0), (80.0, 5.0)),
... )
>>> topo.base_latency_ms("east", "west")
80.0
>>> NetTopology.from_dict(topo.to_dict()) == topo
True
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Tuple

__all__ = ["Region", "NetTopology"]


@dataclass(frozen=True)
class Region:
    """One named network region (a metro area, a continent, an ISP).

    Attributes
    ----------
    name:
        Region label (appears in per-region metrics and CLI tables).
    weight:
        Relative share of the peer population assigned to this region
        (weights are normalised over the topology; they need not sum to 1).
    last_mile_ms:
        Mean one-way last-mile delay added to every message that enters or
        leaves a peer in this region, in milliseconds.
    jitter_ms:
        Half-width of the uniform jitter applied per message on top of the
        last-mile delay, in milliseconds.
    loss:
        Per-message drop probability contributed by this region's access
        network (combined with the far end's as independent losses).
    """

    name: str
    weight: float = 1.0
    last_mile_ms: float = 10.0
    jitter_ms: float = 2.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"region weight must be positive, got {self.weight}")
        if self.last_mile_ms < 0 or self.jitter_ms < 0:
            raise ValueError("last_mile_ms and jitter_ms must be non-negative")
        if not (0.0 <= self.loss < 1.0):
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")


@dataclass(frozen=True)
class NetTopology:
    """A complete region model: regions plus inter-region latency matrix.

    Attributes
    ----------
    name:
        Topology label (the library registers topologies by name).
    regions:
        The region tuple; row/column ``i`` of ``latency_ms`` belongs to
        ``regions[i]``.
    latency_ms:
        Square matrix of one-way backbone latencies in milliseconds.
        ``latency_ms[i][j]`` is the delay from region ``i`` to region
        ``j`` *excluding* last-mile delays; the diagonal is the
        intra-region backbone latency.
    locality_bias:
        Weight multiplier the membership service applies to same-region
        partner candidates (1.0 = region-blind random partner selection,
        the gossip default).
    description:
        One-line human description for CLI listings.
    """

    name: str
    regions: Tuple[Region, ...]
    latency_ms: Tuple[Tuple[float, ...], ...]
    locality_bias: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("topology needs a non-empty name")
        if not isinstance(self.regions, tuple):
            object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(
            self,
            "latency_ms",
            tuple(tuple(float(v) for v in row) for row in self.latency_ms),
        )
        if not self.regions:
            raise ValueError("topology needs at least one region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"region names must be unique, got {names}")
        n = len(self.regions)
        if len(self.latency_ms) != n or any(len(row) != n for row in self.latency_ms):
            raise ValueError(
                f"latency_ms must be a {n}x{n} matrix matching the regions"
            )
        for row in self.latency_ms:
            for value in row:
                if value < 0:
                    raise ValueError(f"latencies must be non-negative, got {value}")
        if self.locality_bias < 1.0:
            raise ValueError(
                f"locality_bias must be >= 1.0, got {self.locality_bias}"
            )

    # ------------------------------------------------------------------ #
    @property
    def n_regions(self) -> int:
        """Number of regions."""
        return len(self.regions)

    @property
    def region_names(self) -> Tuple[str, ...]:
        """Region names in matrix order."""
        return tuple(region.name for region in self.regions)

    @property
    def weights(self) -> Tuple[float, ...]:
        """Normalised population weights, in matrix order."""
        total = sum(region.weight for region in self.regions)
        return tuple(region.weight / total for region in self.regions)

    @property
    def max_latency_ms(self) -> float:
        """Largest entry of the backbone latency matrix."""
        return max(value for row in self.latency_ms for value in row)

    @property
    def lossy(self) -> bool:
        """Whether any region drops messages."""
        return any(region.loss > 0 for region in self.regions)

    def region_index(self, name: str) -> int:
        """Matrix index of the region called ``name``."""
        for index, region in enumerate(self.regions):
            if region.name == name:
                return index
        raise KeyError(f"unknown region {name!r}; known: {list(self.region_names)}")

    def base_latency_ms(self, src: str, dst: str) -> float:
        """One-way backbone latency between two named regions."""
        return self.latency_ms[self.region_index(src)][self.region_index(dst)]

    # ------------------------------------------------------------------ #
    # dict round trip (store fingerprinting)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dictionary form; see :meth:`from_dict`."""
        return {
            "name": self.name,
            "regions": [asdict(region) for region in self.regions],
            "latency_ms": [list(row) for row in self.latency_ms],
            "locality_bias": self.locality_bias,
            "description": self.description,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "NetTopology":
        """Rebuild a topology from :meth:`to_dict` output (exact round trip)."""
        return NetTopology(
            name=str(payload["name"]),
            regions=tuple(Region(**dict(region)) for region in payload["regions"]),
            latency_ms=tuple(tuple(row) for row in payload["latency_ms"]),
            locality_bias=float(payload.get("locality_bias", 1.0)),
            description=str(payload.get("description", "")),
        )
