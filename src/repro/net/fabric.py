"""The network fabric: the layer between peers and the simulation engine.

A :class:`NetworkFabric` answers, for every protocol exchange of a
:class:`~repro.streaming.session.SwitchSession`, two questions:

* does this message arrive at all? (loss on either last mile), and
* when does it arrive? (backbone latency + last miles + jitter).

Two implementations ship:

:class:`IdealFabric`
    The paper's model: every message is delivered instantly.  It consumes
    **no randomness** and returns constants, so a session running on it is
    bit-for-bit identical to a session built before the network layer
    existed -- the property the regression suite pins down.

:class:`LatencyFabric`
    A :class:`~repro.net.topology.NetTopology` plus a
    :class:`~repro.net.link.LinkModel`: peers are assigned to regions
    (weighted by region population weights, with per-peer pinning for
    region-assigned :class:`~repro.streaming.bandwidth.PeerClass` es),
    buffer-map pulls can be lost (the peer simply retries next period --
    pull-based gossip is self-healing), and segment deliveries are
    *scheduled* on the engine at ``now + delay`` instead of applied
    synchronously, so latency genuinely postpones availability.

The session builds its fabric from ``SessionConfig.topology`` (a named
library topology) and its own ``"net"`` random stream, which keeps paired
fast-vs-normal comparisons, multi-process universes and store replays
deterministic from the one experiment seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.net.link import LinkModel
from repro.net.topology import NetTopology

__all__ = ["NetworkFabric", "IdealFabric", "LatencyFabric", "build_fabric"]


class NetworkFabric:
    """Abstract interface the streaming session programs against."""

    #: Short fabric label for reports.
    name: str = "abstract"
    #: The region model, when there is one.
    topology: Optional[NetTopology] = None

    # -- region assignment --------------------------------------------- #
    def assign_regions(
        self, node_ids: Iterable[int], pinned: Optional[Mapping[int, str]] = None
    ) -> None:
        """Assign every node to a region (no-op for the ideal fabric)."""
        raise NotImplementedError

    def assign_joiner(self, node_id: int, region: str = "") -> None:
        """Assign a mid-simulation joiner to a region."""
        raise NotImplementedError

    def region_of(self, node_id: int) -> str:
        """Region name of a node (empty when regions are not modelled)."""
        raise NotImplementedError

    def region_index_of(self, node_id: int) -> Optional[int]:
        """Region matrix index of a node (``None`` when not modelled)."""
        raise NotImplementedError

    # -- message transmission ------------------------------------------ #
    def control_transfer(self, src: int, dst: int) -> Optional[float]:
        """One control-plane message (buffer-map pull): delay or ``None``."""
        raise NotImplementedError

    def data_transfer(self, src: int, dst: int) -> Optional[float]:
        """One data-plane message (segment request/response): delay or ``None``."""
        raise NotImplementedError

    # -- reporting ------------------------------------------------------ #
    @property
    def locality_bias(self) -> float:
        """Same-region partner weight for locality-aware membership."""
        return 1.0

    def stats(self) -> Dict[str, float]:
        """Cumulative fabric counters for reports (empty when trivial)."""
        return {}


class IdealFabric(NetworkFabric):
    """Zero-latency, lossless network: the paper's implicit model.

    Every method returns a constant and no random stream is consumed, so
    sessions on the ideal fabric reproduce the pre-network-layer
    simulator's results bit for bit.
    """

    name = "ideal"

    def assign_regions(
        self, node_ids: Iterable[int], pinned: Optional[Mapping[int, str]] = None
    ) -> None:
        return None

    def assign_joiner(self, node_id: int, region: str = "") -> None:
        return None

    def region_of(self, node_id: int) -> str:
        return ""

    def region_index_of(self, node_id: int) -> Optional[int]:
        return None

    def control_transfer(self, src: int, dst: int) -> Optional[float]:
        return 0.0

    def data_transfer(self, src: int, dst: int) -> Optional[float]:
        return 0.0


class LatencyFabric(NetworkFabric):
    """A fabric backed by a region topology and a stochastic link model.

    Parameters
    ----------
    topology:
        The region model.
    rng:
        Deterministic generator for region assignment, loss and jitter
        (the session passes its named ``"net"`` stream).
    """

    def __init__(self, topology: NetTopology, rng: np.random.Generator) -> None:
        self.name = topology.name
        self.topology = topology
        self._rng = rng
        self.link = LinkModel(topology, rng)
        self._region_index: Dict[int, int] = {}

    # -- region assignment --------------------------------------------- #
    def assign_regions(
        self, node_ids: Iterable[int], pinned: Optional[Mapping[int, str]] = None
    ) -> None:
        """Weighted-random region assignment, stable in sorted node order.

        ``pinned`` maps node ids to region names that must win over the
        random draw (peer classes pinned to a region).  The random draw is
        consumed for every node regardless, so pinning a class never
        perturbs the other nodes' assignments.
        """
        topology = self.topology
        assert topology is not None
        ordered = sorted(int(n) for n in node_ids)
        weights = np.asarray(topology.weights, dtype=float)
        draws = self._rng.choice(topology.n_regions, size=len(ordered), p=weights)
        pinned = pinned or {}
        for node_id, draw in zip(ordered, draws):
            region_name = pinned.get(node_id, "")
            if region_name:
                self._region_index[node_id] = topology.region_index(region_name)
            else:
                self._region_index[node_id] = int(draw)

    def assign_joiner(self, node_id: int, region: str = "") -> None:
        topology = self.topology
        assert topology is not None
        weights = np.asarray(topology.weights, dtype=float)
        draw = int(self._rng.choice(topology.n_regions, p=weights))
        if region:
            draw = topology.region_index(region)
        self._region_index[int(node_id)] = draw

    def region_of(self, node_id: int) -> str:
        index = self._region_index.get(int(node_id))
        if index is None:
            return ""
        return self.topology.regions[index].name  # type: ignore[union-attr]

    def region_index_of(self, node_id: int) -> Optional[int]:
        return self._region_index.get(int(node_id))

    def region_counts(self) -> Dict[str, int]:
        """Current number of assigned nodes per region name."""
        counts: Dict[str, int] = {r.name: 0 for r in self.topology.regions}  # type: ignore[union-attr]
        for index in self._region_index.values():
            counts[self.topology.regions[index].name] += 1  # type: ignore[union-attr]
        return counts

    # -- message transmission ------------------------------------------ #
    def _transfer(self, src: int, dst: int) -> Optional[float]:
        src_region = self._region_index.get(int(src))
        dst_region = self._region_index.get(int(dst))
        if src_region is None or dst_region is None:
            # A node the fabric never saw (defensive): treat as local.
            return 0.0
        return self.link.transfer(src_region, dst_region)

    def control_transfer(self, src: int, dst: int) -> Optional[float]:
        return self._transfer(src, dst)

    def data_transfer(self, src: int, dst: int) -> Optional[float]:
        return self._transfer(src, dst)

    # -- reporting ------------------------------------------------------ #
    @property
    def locality_bias(self) -> float:
        return self.topology.locality_bias  # type: ignore[union-attr]

    def stats(self) -> Dict[str, float]:
        return {
            "messages": float(self.link.messages),
            "dropped": float(self.link.dropped),
            "drop_ratio": (
                self.link.dropped / self.link.messages if self.link.messages else 0.0
            ),
            "mean_delay_s": self.link.mean_delay,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyFabric(topology={self.name!r}, nodes={len(self._region_index)})"


def build_fabric(
    topology: Optional[NetTopology], rng: Optional[np.random.Generator]
) -> NetworkFabric:
    """The fabric for ``topology``: ideal when ``None``, latency-backed otherwise."""
    if topology is None:
        return IdealFabric()
    if rng is None:
        raise ValueError("a latency fabric needs a random generator")
    return LatencyFabric(topology, rng)
