"""Per-message loss and delay sampling over a :class:`NetTopology`.

The :class:`LinkModel` is the stochastic half of the network layer: given
the source and destination *region indices* of a message it draws

* one uniform variate against the combined end-to-end loss probability
  (the two last miles drop independently), and
* one uniform jitter variate on top of the deterministic path latency
  (backbone entry plus both last miles).

Both draws come from a single :class:`numpy.random.Generator` owned by the
caller -- in practice one of the session's named
:class:`~repro.sim.rng.RandomStreams` -- so results are bit-for-bit
reproducible from the experiment seed, identical between serial and
worker-pool execution, and *paired* between the fast and normal switch
algorithms (both sessions of a pair derive the same generator).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.net.topology import NetTopology

__all__ = ["LinkModel"]


class LinkModel:
    """Samples message loss and one-way delay between regions.

    Parameters
    ----------
    topology:
        The region model supplying latencies, jitter and loss rates.
    rng:
        Deterministic generator for the loss and jitter draws.
    """

    def __init__(self, topology: NetTopology, rng: np.random.Generator) -> None:
        self.topology = topology
        self._rng = rng
        n = topology.n_regions
        last_mile = [region.last_mile_ms for region in topology.regions]
        jitter = [region.jitter_ms for region in topology.regions]
        keep = [1.0 - region.loss for region in topology.regions]
        # Precomputed pairwise tables: deterministic per-path base delay,
        # total jitter half-width and combined loss probability.
        self._base_s = [
            [
                (topology.latency_ms[i][j] + last_mile[i] + last_mile[j]) / 1000.0
                for j in range(n)
            ]
            for i in range(n)
        ]
        self._jitter_s = [
            [(jitter[i] + jitter[j]) / 1000.0 for j in range(n)] for i in range(n)
        ]
        self._loss = [[1.0 - keep[i] * keep[j] for j in range(n)] for i in range(n)]
        #: cumulative counters, read by the fabric's statistics
        self.messages = 0
        self.dropped = 0
        self.total_delay = 0.0

    # ------------------------------------------------------------------ #
    def loss_probability(self, src_region: int, dst_region: int) -> float:
        """Combined drop probability of the two endpoints' access networks."""
        return self._loss[src_region][dst_region]

    def base_delay(self, src_region: int, dst_region: int) -> float:
        """Deterministic one-way path delay (backbone + both last miles), s."""
        return self._base_s[src_region][dst_region]

    def transfer(self, src_region: int, dst_region: int) -> Optional[float]:
        """Sample one message transmission between two regions.

        Returns the one-way delay in seconds, or ``None`` when the message
        is dropped.  Exactly one uniform draw is consumed for the loss
        decision and (when delivered and the path is jittered) one more for
        the jitter, keeping the stream deterministic per delivered/dropped
        sequence.
        """
        self.messages += 1
        loss = self._loss[src_region][dst_region]
        if loss > 0.0 and float(self._rng.random()) < loss:
            self.dropped += 1
            return None
        delay = self._base_s[src_region][dst_region]
        jitter = self._jitter_s[src_region][dst_region]
        if jitter > 0.0:
            delay += jitter * float(self._rng.uniform(-1.0, 1.0))
        delay = max(0.0, delay)
        self.total_delay += delay
        return delay

    @property
    def mean_delay(self) -> float:
        """Mean sampled delay over all delivered messages (seconds)."""
        delivered = self.messages - self.dropped
        return self.total_delay / delivered if delivered > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkModel(topology={self.topology.name!r}, messages={self.messages}, "
            f"dropped={self.dropped})"
        )
