"""The latency-aware network layer: regions, lossy links, fabrics.

See :mod:`repro.net.topology` for the region model,
:mod:`repro.net.link` for loss/delay sampling,
:mod:`repro.net.fabric` for the session-facing fabrics and
:mod:`repro.net.library` for the named, ready-to-use topologies.
"""

from repro.net.fabric import IdealFabric, LatencyFabric, NetworkFabric, build_fabric
from repro.net.library import TOPOLOGIES, get_topology, topology_names
from repro.net.link import LinkModel
from repro.net.topology import NetTopology, Region

__all__ = [
    "Region",
    "NetTopology",
    "LinkModel",
    "NetworkFabric",
    "IdealFabric",
    "LatencyFabric",
    "build_fabric",
    "TOPOLOGIES",
    "get_topology",
    "topology_names",
]
