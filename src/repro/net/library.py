"""The registry of named, ready-to-use network topologies.

Three topologies ship with the network layer, spanning the geography axis
from "everyone in one city" to "a planet-wide lineup":

``metro``
    One metropolitan area: three regions (core, suburbs, exurbs) a few
    milliseconds apart, clean links, a mild same-region partner bias.
    Latency exists but stays well under a scheduling period -- the gentle
    end of the axis.
``transcontinental``
    Four regions (NA-East, NA-West, Europe, Asia) with realistic one-way
    backbone latencies up to ~110 ms, 1 % lossy last miles and a strong
    locality bias.  The headline geography workload: cross-region pulls
    lose a scheduling period to propagation + retries, which widens
    switch times -- and widens the fast algorithm's advantage.
``lossy-edge``
    Two regions: a clean core and a congested edge whose last mile drops
    5 % of messages with heavy jitter.  Stresses the drop+retry path
    rather than propagation delay.

All topologies are plain :class:`~repro.net.topology.NetTopology` values;
``repro net ls`` lists them and ``repro net show NAME`` prints the full
matrix.  Custom topologies can be passed to sessions directly through the
``fabric=`` hook.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.topology import NetTopology, Region

__all__ = ["TOPOLOGIES", "get_topology", "topology_names"]


TOPOLOGIES: Dict[str, NetTopology] = {
    topology.name: topology
    for topology in (
        NetTopology(
            name="metro",
            description="one metro area: core/suburbs/exurbs, single-digit-ms paths",
            regions=(
                Region("core", weight=0.5, last_mile_ms=4.0, jitter_ms=1.0, loss=0.0),
                Region("suburbs", weight=0.35, last_mile_ms=8.0, jitter_ms=2.0,
                       loss=0.002),
                Region("exurbs", weight=0.15, last_mile_ms=14.0, jitter_ms=4.0,
                       loss=0.005),
            ),
            latency_ms=(
                (1.0, 3.0, 6.0),
                (3.0, 2.0, 7.0),
                (6.0, 7.0, 3.0),
            ),
            locality_bias=2.0,
        ),
        NetTopology(
            name="transcontinental",
            description="NA-East/NA-West/Europe/Asia, up to ~110 ms one-way, "
                        "1% lossy last miles",
            regions=(
                Region("na-east", weight=0.3, last_mile_ms=15.0, jitter_ms=5.0,
                       loss=0.01),
                Region("na-west", weight=0.2, last_mile_ms=15.0, jitter_ms=5.0,
                       loss=0.01),
                Region("europe", weight=0.3, last_mile_ms=15.0, jitter_ms=5.0,
                       loss=0.01),
                Region("asia", weight=0.2, last_mile_ms=18.0, jitter_ms=6.0,
                       loss=0.01),
            ),
            latency_ms=(
                (8.0, 35.0, 45.0, 110.0),
                (35.0, 8.0, 75.0, 60.0),
                (45.0, 75.0, 10.0, 90.0),
                (110.0, 60.0, 90.0, 12.0),
            ),
            locality_bias=4.0,
        ),
        NetTopology(
            name="lossy-edge",
            description="clean core vs. congested edge dropping 5% with heavy jitter",
            regions=(
                Region("core", weight=0.4, last_mile_ms=6.0, jitter_ms=2.0, loss=0.0),
                Region("edge", weight=0.6, last_mile_ms=40.0, jitter_ms=20.0,
                       loss=0.05),
            ),
            latency_ms=(
                (2.0, 12.0),
                (12.0, 4.0),
            ),
            locality_bias=1.0,
        ),
    )
}


def get_topology(name: str) -> NetTopology:
    """The library topology called ``name`` (raises ``KeyError`` if unknown)."""
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; known: {topology_names()}"
        ) from None


def topology_names() -> List[str]:
    """Sorted names of the library topologies."""
    return sorted(TOPOLOGIES)
