"""Pull-based gossip streaming substrate.

This subpackage implements the CoolStreaming-style mesh/pull streaming
system the paper evaluates on, with the configuration of Section 5.1:

* streaming rate 300 kbit/s split into 30 kbit segments, i.e. a playback
  rate of ``p = 10`` segments/second,
* a FIFO buffer of ``B = 600`` segments per node,
* node inbound rates of 10--33 segments/second averaging 15 (300 kbit/s --
  1 Mbit/s averaging 450 kbit/s); outbound rates alike; sources have zero
  inbound and a much larger outbound rate,
* a data scheduling period of ``tau = 1`` second in which every node
  exchanges buffer maps with its ``M = 5`` neighbours (620 bits per
  neighbour) and then requests segments,
* playback of the old source (re)starts after ``Q = 10`` consecutive
  segments; playback of the new source needs its first ``Qs = 50``
  segments.

Modules
-------
:mod:`repro.streaming.segment`
    Stream descriptors and segment-id arithmetic.
:mod:`repro.streaming.buffer`
    The per-node FIFO segment buffer (eviction order, tail positions).
:mod:`repro.streaming.buffermap`
    Buffer-map snapshots and their wire-size accounting.
:mod:`repro.streaming.bandwidth`
    Bandwidth sampling and the per-period outbound capacity ledger.
:mod:`repro.streaming.protocol`
    Message records exchanged between peers (sizes used by the
    communication-overhead metric).
:mod:`repro.streaming.playback`
    Per-stream playback state machines.
:mod:`repro.streaming.source`
    Source node behaviour (segment generation, end-of-stream marker).
:mod:`repro.streaming.peer`
    Peer behaviour: view construction, request execution, playback.
:mod:`repro.streaming.session`
    The two-source switch session driving a whole simulation run.
"""

from repro.streaming.bandwidth import (
    BandwidthProfile,
    OutboundLedger,
    PeerClass,
    draw_class_indices,
    sample_rates,
)
from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import BufferMapSnapshot, buffer_map_bits
from repro.streaming.peer import PeerNode
from repro.streaming.playback import PlaybackState
from repro.streaming.protocol import (
    BufferMapExchange,
    SegmentDelivery,
    SegmentRequestMessage,
)
from repro.streaming.segment import StreamSpec, SwitchPlan
from repro.streaming.session import (
    PeriodDirective,
    SessionResult,
    SwitchSession,
    build_session_overlay,
)
from repro.streaming.source import SourceNode

__all__ = [
    "StreamSpec",
    "SwitchPlan",
    "SegmentBuffer",
    "BufferMapSnapshot",
    "buffer_map_bits",
    "BandwidthProfile",
    "OutboundLedger",
    "PeerClass",
    "draw_class_indices",
    "sample_rates",
    "BufferMapExchange",
    "SegmentRequestMessage",
    "SegmentDelivery",
    "PlaybackState",
    "SourceNode",
    "PeerNode",
    "SwitchSession",
    "SessionResult",
    "PeriodDirective",
    "build_session_overlay",
]
