"""Per-stream playback state machines.

A peer plays the old stream continuously (it was already playing it before
the switch), then starts the new stream once two conditions hold:

1. the whole playback of the old stream has finished, and
2. the first ``Qs`` segments of the new stream have been gathered.

:class:`PlaybackState` models the playback of one stream: a pointer that
advances ``p`` segments per second as long as the next segment is present
in the buffer, stalling (and later resuming once ``Q`` consecutive segments
are available again) when it is not.  The peer object composes two of these
-- one per stream -- and records the timestamps the metrics need
(finish time of the old stream, prepare/start time of the new one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.streaming.buffer import SegmentBuffer

__all__ = ["PlaybackState"]


@dataclass
class PlaybackState:
    """Playback of one stream at one peer.

    Attributes
    ----------
    play_rate:
        ``p``: segments consumed per second while playing.
    startup_quota:
        Number of consecutive segments that must be buffered (starting at
        :attr:`position`) before playback (re)starts -- ``Q`` for the old
        stream, ``Qs`` for the new one.
    position:
        Id of the next segment to play.
    last_id:
        Final segment id of the stream, or ``None`` for an open-ended
        stream.  Playback *finishes* when the position moves past it.
    started / finished:
        State flags.
    start_time / finish_time:
        Simulation times at which playback started / finished.
    stall_periods:
        Number of scheduling periods in which playback was blocked on a
        missing segment (continuity-loss indicator).
    played:
        Total segments played.
    """

    play_rate: float
    startup_quota: int
    position: int
    last_id: Optional[int] = None
    started: bool = False
    finished: bool = False
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    stall_periods: int = 0
    played: int = 0
    _carry: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.play_rate <= 0:
            raise ValueError(f"play_rate must be positive, got {self.play_rate}")
        if self.startup_quota < 1:
            raise ValueError(f"startup_quota must be >= 1, got {self.startup_quota}")

    # ------------------------------------------------------------------ #
    def remaining_ids(self) -> Optional[range]:
        """Ids still to be played, or ``None`` for an open-ended stream."""
        if self.last_id is None:
            return None
        return range(self.position, self.last_id + 1)

    def can_start(self, buffer: SegmentBuffer) -> bool:
        """Whether the startup condition is met.

        ``startup_quota`` consecutive segments from :attr:`position` must be
        buffered; for a finite stream whose remaining length is shorter than
        the quota, having all remaining segments suffices.
        """
        end = self.position + self.startup_quota - 1
        if self.last_id is not None:
            end = min(end, self.last_id)
        return buffer.contains_all(range(self.position, end + 1))

    def maybe_start(self, buffer: SegmentBuffer, now: float) -> bool:
        """Start playback if the startup condition holds; return whether playing."""
        if self.finished:
            return False
        if self.started:
            return True
        if self.can_start(buffer):
            self.started = True
            if self.start_time is None:
                self.start_time = now
            return True
        return False

    def advance(self, buffer: SegmentBuffer, now: float, duration: float) -> int:
        """Play for ``duration`` seconds; return the number of segments played.

        Playback consumes up to ``play_rate * duration`` segments (plus any
        fractional carry from earlier calls), stopping early if a segment is
        missing (a stall) or the stream ends.  When the final segment of a
        finite stream has been played, :attr:`finished` becomes ``True`` and
        :attr:`finish_time` is set to ``now + duration`` (end of the period).
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if self.finished or not self.started:
            return 0

        budget = self.play_rate * duration + self._carry
        whole = int(budget)
        self._carry = budget - whole

        played_now = 0
        stalled = False
        for _ in range(whole):
            if self.last_id is not None and self.position > self.last_id:
                break
            if buffer.contains(self.position):
                self.position += 1
                self.played += 1
                played_now += 1
            else:
                stalled = True
                break

        if stalled:
            self.stall_periods += 1
            # A stall forces a re-buffering phase: playback resumes only when
            # the startup condition holds again.
            self.started = False
            self._carry = 0.0

        if self.last_id is not None and self.position > self.last_id and not self.finished:
            self.finished = True
            self.finish_time = now + duration
        return played_now

    def progress(self) -> float:
        """Fraction of a finite stream already played (0.0 for open-ended)."""
        if self.last_id is None:
            return 0.0
        total = self.last_id + 1 - (self.position - self.played)
        if total <= 0:
            return 1.0
        return min(1.0, self.played / total)
