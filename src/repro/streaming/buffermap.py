"""Buffer-map snapshots and their wire-size accounting.

Every scheduling period each node pulls a *buffer map* from each of its
``M`` neighbours: a bitmap describing which segments the neighbour holds.
The paper's overhead accounting (Section 5.3) encodes one map as

* 600 bits of availability bitmap (one bit per buffer slot, ``B = 600``),
* 20 bits for the id of the first segment in the buffer (enough for one
  full day of streaming at ``p = 10`` segments/second),

i.e. **620 bits per neighbour per period**, which against 30 kbit segments
works out to roughly 1 % overhead when the delivery rate matches the
playback rate.

:class:`BufferMapSnapshot` is the in-simulator representation: rather than
shipping real bitmaps around, the snapshot keeps a reference set of the
neighbour's held ids restricted to the requesting peer's window of interest
(plus FIFO positions for the rarity computation), while
:func:`buffer_map_bits` provides the wire size that the overhead metric
charges for the exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.streaming.buffer import SegmentBuffer

__all__ = [
    "AVAILABILITY_BITS_PER_SLOT",
    "OFFSET_BITS",
    "UNBOUNDED_CAPACITY",
    "buffer_map_bits",
    "BufferMapSnapshot",
    "snapshot_buffer",
]

#: One availability bit per buffer slot.
AVAILABILITY_BITS_PER_SLOT: int = 1

#: Bits used to encode the id of the first segment in the buffer.  The paper
#: sizes this at 20 bits: a source emits at most 10*3600*24 = 864 000
#: segments per day, and 2**19 < 864 000 < 2**20.
OFFSET_BITS: int = 20

#: Capacity advertised for unbounded (source) buffers so that the rarity
#: term treats their segments as never endangered.
UNBOUNDED_CAPACITY: int = 10**9


def buffer_map_bits(buffer_capacity: int, *, offset_bits: int = OFFSET_BITS) -> int:
    """Wire size (bits) of one buffer-map message for a buffer of ``B`` slots."""
    if buffer_capacity <= 0:
        raise ValueError(f"buffer_capacity must be positive, got {buffer_capacity}")
    return buffer_capacity * AVAILABILITY_BITS_PER_SLOT + offset_bits


@dataclass(frozen=True)
class BufferMapSnapshot:
    """What a peer learns about one neighbour from a buffer-map pull.

    Attributes
    ----------
    owner_id:
        The neighbour the map describes.
    available:
        Segment ids (restricted to the requesting peer's window of
        interest) present in the neighbour's buffer.
    positions:
        FIFO position (from the insertion end) of each available id.
    buffer_capacity:
        The neighbour's buffer capacity ``B``.
    send_rate:
        The neighbour's advertised per-peer sending rate ``R(j)``
        (segments/second); carried with the map because the paper's
        scheduler needs it and real systems piggyback it on the exchange.
    switch_info:
        ``(id_end, id_begin)`` when the neighbour is aware of the source
        switch **and** can prove it (it is a source, or it holds at least
        one new-source segment); ``None`` otherwise.  This mirrors the
        paper's rule that a node learns about the switch by *discovering
        data segments of a new source at its neighbours*.
    wire_bits:
        Size of the exchanged message in bits (for the overhead metric).
    """

    owner_id: int
    available: frozenset[int]
    positions: Mapping[int, int] = field(default_factory=dict)
    buffer_capacity: int = 600
    send_rate: float = 0.0
    switch_info: Optional[Tuple[int, int]] = None
    wire_bits: int = 620

    def has(self, seg_id: int) -> bool:
        """Whether the neighbour holds ``seg_id`` (within the snapshot window)."""
        return seg_id in self.available

    def position_of(self, seg_id: int) -> int:
        """FIFO position of ``seg_id`` (1 = newest); defaults to 1 if unknown."""
        return int(self.positions.get(seg_id, 1))


def snapshot_buffer(
    owner_id: int,
    buffer: SegmentBuffer,
    windows: Sequence[Tuple[int, int]],
    *,
    send_rate: float,
    switch_info: Optional[Tuple[int, int]] = None,
    advertised_capacity: Optional[int] = None,
    wire_bits: Optional[int] = None,
) -> BufferMapSnapshot:
    """Build a :class:`BufferMapSnapshot` of ``buffer`` for the given windows.

    Parameters
    ----------
    owner_id:
        Node id of the buffer's owner.
    buffer:
        The owner's segment buffer.
    windows:
        Inclusive ``(lo, hi)`` id ranges the requesting peer cares about;
        only ids inside some window are materialised in the snapshot (the
        wire message is a full bitmap regardless -- its size does not depend
        on the windows).
    send_rate:
        Advertised sending rate ``R(j)`` towards the requesting peer.
    switch_info:
        ``(id_end, id_begin)`` if the owner can announce the switch.
    advertised_capacity:
        Buffer capacity ``B`` announced to the peer (for the rarity term).
        Defaults to the buffer's real capacity; source nodes with unbounded
        buffers advertise a very large value so their segments never look
        endangered (a source never evicts its own stream).
    wire_bits:
        Wire size of the map message; defaults to the bitmap size for the
        advertised capacity (sources advertise the standard peer bitmap so
        overhead accounting matches the paper's 620-bit figure).
    """
    available: Dict[int, int] = {}
    for lo, hi in windows:
        for seg_id in buffer.ids_in_range(lo, hi):
            if seg_id not in available:
                available[seg_id] = buffer.position_from_tail(seg_id)
    if advertised_capacity is None:
        advertised_capacity = (
            buffer.capacity if buffer.capacity is not None else UNBOUNDED_CAPACITY
        )
    if wire_bits is None:
        reference = buffer.capacity if buffer.capacity is not None else 600
        wire_bits = buffer_map_bits(reference)
    return BufferMapSnapshot(
        owner_id=owner_id,
        available=frozenset(available),
        positions=available,
        buffer_capacity=advertised_capacity,
        send_rate=send_rate,
        switch_info=switch_info,
        wire_bits=wire_bits,
    )
