"""Source node behaviour.

A source generates ``p`` segments per second into its own (unbounded)
buffer and serves them to its overlay neighbours through the same
buffer-map / request protocol as every other node.  Per the paper's
configuration a source has zero inbound rate and a much larger outbound
rate than ordinary peers.

Two sources participate in a switch session:

* the **old source** ``S1`` streamed before the switch and stops generating
  at the switch time (time 0); it keeps serving its already-generated
  segments,
* the **new source** ``S2`` starts generating at the switch time; it knows
  the old stream's final segment id and announces it alongside its first
  segments (modelled by the ``switch_info`` field of its buffer-map
  snapshots), which is how awareness of the switch propagates through the
  mesh.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.base import Stream
from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import BufferMapSnapshot, snapshot_buffer
from repro.streaming.segment import StreamSpec, SwitchPlan

__all__ = ["SourceNode"]


class SourceNode:
    """A streaming source.

    Parameters
    ----------
    spec:
        The stream this source generates (ids, rate, segment size).
    outbound_rate:
        Upload capacity in segments/second ("much larger" than a peer's).
    start_time:
        Simulation time at which generation begins.
    stop_time:
        Simulation time at which generation stops (``None`` = never).  The
        old source uses the switch time; the new source streams on.
    """

    def __init__(
        self,
        spec: StreamSpec,
        *,
        outbound_rate: float,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
    ) -> None:
        if outbound_rate <= 0:
            raise ValueError(f"outbound_rate must be positive, got {outbound_rate}")
        self.spec = spec
        self.node_id = spec.source_id
        self.outbound_rate = float(outbound_rate)
        self.start_time = float(start_time)
        self.stop_time = float(stop_time) if stop_time is not None else None
        self.buffer = SegmentBuffer(capacity=None)
        self._generated = 0
        self.switch_plan: Optional[SwitchPlan] = None

    # ------------------------------------------------------------------ #
    @property
    def inbound_rate(self) -> float:
        """Sources do not download (paper: "the source node has zero inbound rate")."""
        return 0.0

    @property
    def stream(self) -> Stream:
        """Which logical source this node is."""
        return self.spec.stream

    @property
    def generated(self) -> int:
        """Number of segments generated so far."""
        return self._generated

    def last_generated_id(self) -> Optional[int]:
        """Id of the newest generated segment, or ``None`` before the first."""
        if self._generated == 0:
            return None
        return self.spec.first_id + self._generated - 1

    # ------------------------------------------------------------------ #
    def generate_until(self, now: float) -> Sequence[int]:
        """Generate all segments due by time ``now``; return the new ids."""
        horizon = now if self.stop_time is None else min(now, self.stop_time)
        due = self.spec.segments_generated_by(self.start_time, horizon)
        if due <= self._generated:
            return ()
        new_ids = [self.spec.id_at(i) for i in range(self._generated, due)]
        self.buffer.insert_many(new_ids)
        self._generated = due
        return tuple(new_ids)

    def preload(self, count: int) -> Sequence[int]:
        """Instantly generate ``count`` segments (analytic warm-up of the old source)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        new_ids = [self.spec.id_at(i) for i in range(self._generated, count)]
        self.buffer.insert_many(new_ids)
        self._generated = max(self._generated, count)
        return tuple(new_ids)

    def announce_switch(self, plan: SwitchPlan) -> None:
        """Give the source knowledge of the switch plan (both sources get it)."""
        self.switch_plan = plan

    # ------------------------------------------------------------------ #
    def switch_announcement(self) -> Optional[Tuple[int, int]]:
        """``(id_end, id_begin)`` if this source can announce the switch.

        The old source announces as soon as it knows (it decided to stop);
        the new source announces alongside its data, which it has from its
        very first generated segment onwards.
        """
        if self.switch_plan is None:
            return None
        return (self.switch_plan.id_end, self.switch_plan.id_begin)

    def snapshot_for(
        self,
        windows: Sequence[Tuple[int, int]],
        *,
        send_rate: float,
    ) -> BufferMapSnapshot:
        """Produce the buffer-map snapshot a neighbour pulls from this source."""
        return snapshot_buffer(
            owner_id=self.node_id,
            buffer=self.buffer,
            windows=windows,
            send_rate=send_rate,
            switch_info=self.switch_announcement(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SourceNode(id={self.node_id}, stream={self.stream}, "
            f"generated={self._generated})"
        )
