"""Protocol messages and their wire sizes.

The simulator does not route real packets, but the communication-overhead
metric (Section 5.2, metric 3) needs the *sizes* of what would be on the
wire.  This module defines one record per message type together with its
size accounting:

* :class:`BufferMapExchange` -- the periodic availability exchange
  (620 bits per neighbour with the paper's parameters);
* :class:`SegmentRequestMessage` -- a segment request (the paper does not
  charge requests to the overhead metric, but the sizes are tracked so the
  metric can optionally include them);
* :class:`SegmentDelivery` -- a delivered segment (30 kbit of payload).

The paper's overhead definition only divides buffer-map bits by delivered
data bits; :class:`repro.metrics.overhead.OverheadAccountant` follows that
definition by default and can include request bits as a sensitivity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.base import Stream
from repro.streaming.segment import DEFAULT_SEGMENT_BITS

__all__ = [
    "SEGMENT_REQUEST_BITS",
    "STAGE_WIRE_BITS",
    "BufferMapExchange",
    "SegmentRequestMessage",
    "SegmentDelivery",
]

#: Wire size of one segment request: a 20-bit segment id plus minimal framing.
SEGMENT_REQUEST_BITS: int = 32

#: Wire cost (bits) of the message behind each segment-lifecycle probe stage
#: (:mod:`repro.obs.probes`): ``scheduled`` puts a request on the wire,
#: ``delivered`` a segment payload; the other stages are peer-internal and
#: cost nothing.  The ``repro probe`` timeline renders this column.
STAGE_WIRE_BITS: Dict[str, int] = {
    "scheduled": SEGMENT_REQUEST_BITS,
    "delivered": DEFAULT_SEGMENT_BITS,
}


@dataclass(frozen=True)
class BufferMapExchange:
    """One buffer-map pull between two neighbours.

    Attributes
    ----------
    time:
        Simulation time of the exchange.
    requester_id / owner_id:
        The peer pulling the map and the neighbour providing it.
    wire_bits:
        Size of the map message in bits.
    """

    time: float
    requester_id: int
    owner_id: int
    wire_bits: int


@dataclass(frozen=True)
class SegmentRequestMessage:
    """A request for one segment sent to a chosen supplier."""

    time: float
    requester_id: int
    supplier_id: int
    seg_id: int
    stream: Stream
    wire_bits: int = SEGMENT_REQUEST_BITS


@dataclass(frozen=True)
class SegmentDelivery:
    """A successful segment transfer.

    Attributes
    ----------
    time:
        Simulation time at which the transfer completed (end of the period
        in the round-based execution model).
    supplier_id / receiver_id:
        Sender and receiver node ids.
    seg_id:
        Delivered segment id.
    stream:
        Which source's stream the segment belongs to.
    payload_bits:
        Segment payload size (30 kbit by default).
    """

    time: float
    supplier_id: int
    receiver_id: int
    seg_id: int
    stream: Stream
    payload_bits: int = DEFAULT_SEGMENT_BITS
