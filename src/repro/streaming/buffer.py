"""The per-node FIFO segment buffer.

Every node keeps a buffer of up to ``B`` segments (the paper uses
``B = 600``).  The replacement strategy is FIFO: when a new segment is
inserted into a full buffer, the oldest inserted segment is evicted.  The
buffer exposes the *position from the tail* of each segment -- the quantity
``p_ij`` that the rarity term (Eq. 8) consumes: position 1 is the most
recently inserted segment, position ``len(buffer)`` is the next to be
evicted.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["SegmentBuffer"]


class SegmentBuffer:
    """A FIFO set of segment ids with bounded capacity.

    Parameters
    ----------
    capacity:
        Maximum number of segments held (``B``).  ``None`` means unbounded
        (used by source nodes, which never evict their own stream).
    """

    def __init__(self, capacity: Optional[int] = 600) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._capacity = capacity
        self._order: deque[int] = deque()
        self._insert_index: Dict[int, int] = {}
        self._counter = 0
        self._discards = 0
        self.evicted_total = 0

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, seg_id: int) -> Optional[int]:
        """Insert ``seg_id``; return the evicted id (if any).

        Re-inserting an id that is already present is a no-op (and returns
        ``None``): duplicate deliveries do not change eviction order.
        """
        if seg_id in self._insert_index:
            return None
        self._order.append(seg_id)
        self._insert_index[seg_id] = self._counter
        self._counter += 1
        evicted: Optional[int] = None
        if self._capacity is not None and len(self._order) > self._capacity:
            evicted = self._order.popleft()
            del self._insert_index[evicted]
            self.evicted_total += 1
        return evicted

    def insert_many(self, seg_ids: Iterable[int]) -> List[int]:
        """Insert several ids (in iteration order); return all evicted ids."""
        evicted: List[int] = []
        for seg_id in seg_ids:
            out = self.insert(seg_id)
            if out is not None:
                evicted.append(out)
        return evicted

    def discard(self, seg_id: int) -> bool:
        """Remove ``seg_id`` if present (returns whether it was present).

        Not part of the paper's protocol (FIFO eviction is the only removal
        path there) but useful for tests and for modelling corrupted
        segments in failure-injection scenarios.
        """
        if seg_id not in self._insert_index:
            return False
        del self._insert_index[seg_id]
        self._order.remove(seg_id)
        self._discards += 1
        return True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> Optional[int]:
        """Configured capacity ``B`` (``None`` = unbounded)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, seg_id: int) -> bool:
        return seg_id in self._insert_index

    def __iter__(self) -> Iterator[int]:
        """Iterate ids from oldest to newest insertion."""
        return iter(self._order)

    def contains(self, seg_id: int) -> bool:
        """Membership test (alias of ``in`` for readability at call sites)."""
        return seg_id in self._insert_index

    def contains_all(self, seg_ids: Iterable[int]) -> bool:
        """Whether every id in ``seg_ids`` is present."""
        return all(seg_id in self._insert_index for seg_id in seg_ids)

    def newest(self) -> Optional[int]:
        """The most recently inserted id, or ``None`` when empty."""
        return self._order[-1] if self._order else None

    def oldest(self) -> Optional[int]:
        """The id that would be evicted next, or ``None`` when empty."""
        return self._order[0] if self._order else None

    def position_from_tail(self, seg_id: int) -> int:
        """FIFO position of ``seg_id`` counted from the insertion end.

        1 = newest insertion; ``len(self)`` = oldest (next to be evicted).
        Raises ``KeyError`` for absent ids.
        """
        if seg_id not in self._insert_index:
            raise KeyError(seg_id)
        if self._discards == 0:
            # Pure FIFO: if ``seg_id`` is present, every later insertion is
            # present too (evictions happen strictly in insertion order), so
            # the insertion-counter difference equals the in-buffer position.
            newest_index = self._counter - 1
            return int(newest_index - self._insert_index[seg_id]) + 1
        # After an out-of-order ``discard`` the counter shortcut over-counts;
        # fall back to counting the segments currently newer than ``seg_id``.
        own_index = self._insert_index[seg_id]
        newer = sum(1 for idx in self._insert_index.values() if idx > own_index)
        return newer + 1

    def ids_in_range(self, lo: int, hi: int) -> List[int]:
        """Sorted list of held ids in the inclusive range ``[lo, hi]``.

        Iterates over the range or the buffer, whichever is smaller, so both
        narrow windows over a large buffer and wide windows over a small
        buffer stay cheap.
        """
        if hi < lo:
            return []
        if (hi - lo + 1) <= len(self._order):
            return [i for i in range(lo, hi + 1) if i in self._insert_index]
        return sorted(i for i in self._insert_index if lo <= i <= hi)

    def missing_in_range(self, lo: int, hi: int) -> List[int]:
        """Sorted list of ids in ``[lo, hi]`` **not** held."""
        if hi < lo:
            return []
        return [i for i in range(lo, hi + 1) if i not in self._insert_index]

    def as_set(self) -> frozenset[int]:
        """Frozen snapshot of all held ids."""
        return frozenset(self._insert_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentBuffer(size={len(self)}, capacity={self._capacity}, "
            f"newest={self.newest()}, oldest={self.oldest()})"
        )
