"""Bandwidth sampling and per-period outbound capacity accounting.

The paper's configuration (Section 5.1): every node gets a random inbound
rate between 300 kbit/s and 1 Mbit/s -- i.e. 10 to 33 segments/second --
with an *average of 450 kbit/s* (15 segments/second); outbound rates are
assigned "alike".  The source node has zero inbound rate and a much larger
outbound rate.

Because a uniform draw over [10, 33] would average 21.5, the paper's stated
average of 15 implies a skewed distribution; :func:`sample_rates` uses a
shifted exponential truncated to the interval, which reproduces both the
range and the mean (most nodes sit just above the playback rate, a long
tail of well-provisioned nodes reaches 33).

:class:`OutboundLedger` enforces the supplier-side capacity constraint when
requests are executed: each node can upload at most ``outbound_rate * tau``
segments per scheduling period, shared among all requesting neighbours in
request order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "BandwidthProfile",
    "PeerClass",
    "draw_class_indices",
    "sample_rates",
    "OutboundLedger",
]


@dataclass(frozen=True)
class BandwidthProfile:
    """Inbound/outbound rate of one node, in segments per second.

    Attributes
    ----------
    inbound:
        Download capacity ``I`` (segments/second).
    outbound:
        Upload capacity ``o`` (segments/second).
    """

    inbound: float
    outbound: float

    def __post_init__(self) -> None:
        if self.inbound < 0 or self.outbound < 0:
            raise ValueError("bandwidth rates must be non-negative")


@dataclass(frozen=True)
class PeerClass:
    """A named bandwidth class peers are drawn from (ADSL, cable, fiber, ...).

    The paper assigns every peer the same skewed rate distribution; real
    IPTV populations are mixtures of access technologies.  A workload can
    declare a set of classes with relative ``fraction`` weights; each peer
    is assigned a class at setup (and joiners at join time) and samples its
    inbound/outbound rates from that class's distribution via
    :func:`sample_rates`.

    Attributes
    ----------
    name:
        Class label (appears in per-class metrics).
    fraction:
        Relative weight of this class in the population (weights are
        normalised over the declared classes; they need not sum to 1).
    inbound_low / inbound_high / inbound_mean:
        Inbound rate distribution parameters, in segments/second.
    outbound_low / outbound_high / outbound_mean:
        Outbound rate distribution parameters, in segments/second.
    region:
        Optional network-region pin: when the session runs on a latency
        fabric whose topology names this region, every member of the class
        lives there (ADSL in the exurbs, fiber downtown ...).  Empty keeps
        the topology's weighted-random assignment; the pin is ignored by
        the ideal fabric.
    """

    name: str
    fraction: float
    inbound_low: float
    inbound_high: float
    inbound_mean: float
    outbound_low: float
    outbound_high: float
    outbound_mean: float
    region: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("peer class needs a non-empty name")
        if self.fraction <= 0:
            raise ValueError(f"fraction must be positive, got {self.fraction}")
        for low, high, mean, side in (
            (self.inbound_low, self.inbound_high, self.inbound_mean, "inbound"),
            (self.outbound_low, self.outbound_high, self.outbound_mean, "outbound"),
        ):
            if not (low < mean < high):
                raise ValueError(
                    f"{side} mean must lie strictly between low and high "
                    f"for class {self.name!r}, got {low}/{mean}/{high}"
                )

    def sample_inbound(self, rng: np.random.Generator) -> float:
        """One inbound rate draw from this class's distribution."""
        return float(
            sample_rates(1, rng, low=self.inbound_low, high=self.inbound_high,
                         mean=self.inbound_mean)[0]
        )

    def sample_outbound(self, rng: np.random.Generator) -> float:
        """One outbound rate draw from this class's distribution."""
        return float(
            sample_rates(1, rng, low=self.outbound_low, high=self.outbound_high,
                         mean=self.outbound_mean)[0]
        )


def draw_class_indices(
    count: int,
    classes: Sequence[PeerClass],
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a class index for each of ``count`` peers, weighted by fraction."""
    if not classes:
        raise ValueError("need at least one peer class")
    weights = np.array([cls.fraction for cls in classes], dtype=float)
    weights = weights / weights.sum()
    return rng.choice(len(classes), size=count, p=weights)


def sample_rates(
    count: int,
    rng: np.random.Generator,
    *,
    low: float = 10.0,
    high: float = 33.0,
    mean: float = 15.0,
) -> np.ndarray:
    """Sample ``count`` rates from the paper's skewed [low, high] distribution.

    A shifted exponential ``low + Exp(mean - low)`` truncated at ``high``.
    With the default parameters (10, 33, 15) the truncation affects ~1 % of
    the mass, so the sample mean stays within a few percent of ``mean``.

    Raises
    ------
    ValueError
        If the parameters are inconsistent (``low >= high`` or the target
        mean lies outside ``(low, high)``).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if low >= high:
        raise ValueError(f"low must be < high, got low={low}, high={high}")
    if not (low < mean < high):
        raise ValueError(f"mean must lie strictly between low and high, got {mean}")
    scale = mean - low
    values = low + rng.exponential(scale, size=count)
    return np.clip(values, low, high)


class OutboundLedger:
    """Per-period upload budgets, consumed as transfers are executed.

    Parameters
    ----------
    rates:
        Mapping from node id to outbound rate (segments/second).
    period:
        Scheduling period ``tau`` (seconds).

    Notes
    -----
    Budgets are expressed in whole segments per period.  Fractional capacity
    accumulates as *credit* across periods (a node with 1.5 segments/period
    serves 1 segment in odd periods and 2 in even ones), which avoids
    systematically under-using slow uploaders.
    """

    def __init__(self, rates: Mapping[int, float], period: float) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._rates: Dict[int, float] = {int(k): float(v) for k, v in rates.items()}
        self._period = float(period)
        self._credit: Dict[int, float] = {k: 0.0 for k in self._rates}
        self._budget: Dict[int, float] = {}
        self._scale = 1.0
        self.served_total = 0
        self.rejected_total = 0
        self.reset_period()

    # ------------------------------------------------------------------ #
    def reset_period(self, scale: float = 1.0) -> None:
        """Start a new scheduling period: refill every node's budget.

        ``scale`` multiplies every refill for this period only -- the
        workload engine's congestion regimes (a scale of 0.5 halves all
        upload capacity for the period).  Credit carried over from earlier
        periods is unaffected.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._scale = float(scale)
        for node_id, rate in self._rates.items():
            self._budget[node_id] = rate * self._period * self._scale \
                + self._credit.get(node_id, 0.0)

    def end_period(self) -> None:
        """Close the period: carry at most one segment of unused credit over."""
        for node_id, remaining in self._budget.items():
            self._credit[node_id] = min(max(remaining, 0.0), 1.0)

    def add_node(self, node_id: int, outbound_rate: float) -> None:
        """Register a node that joined mid-simulation."""
        node_id = int(node_id)
        self._rates[node_id] = float(outbound_rate)
        self._credit[node_id] = 0.0
        self._budget[node_id] = float(outbound_rate) * self._period * self._scale

    def remove_node(self, node_id: int) -> None:
        """Forget a departed node (no-op if unknown)."""
        self._rates.pop(node_id, None)
        self._credit.pop(node_id, None)
        self._budget.pop(node_id, None)

    # ------------------------------------------------------------------ #
    def remaining(self, node_id: int) -> float:
        """Remaining upload budget of ``node_id`` this period (segments)."""
        return self._budget.get(node_id, 0.0)

    def can_serve(self, node_id: int, segments: int = 1) -> bool:
        """Whether ``node_id`` can still upload ``segments`` this period."""
        return self._budget.get(node_id, 0.0) >= segments

    def consume(self, node_id: int, segments: int = 1) -> bool:
        """Charge ``segments`` uploads to ``node_id``.

        Returns ``True`` and decrements the budget when capacity is
        available; returns ``False`` (and counts a rejection) otherwise.
        """
        if self.can_serve(node_id, segments):
            self._budget[node_id] -= segments
            self.served_total += segments
            return True
        self.rejected_total += 1
        return False

    def utilisation(self, node_ids: Iterable[int] | None = None) -> float:
        """Fraction of this period's budget already consumed (0 when idle)."""
        ids = list(node_ids) if node_ids is not None else list(self._rates)
        total = sum(
            self._rates[i] * self._period * self._scale + self._credit.get(i, 0.0)
            for i in ids if i in self._rates
        )
        left = sum(self._budget.get(i, 0.0) for i in ids)
        if total <= 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - left / total))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OutboundLedger(nodes={len(self._rates)}, served={self.served_total}, "
            f"rejected={self.rejected_total})"
        )
