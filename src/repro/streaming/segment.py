"""Stream descriptors and segment-id arithmetic.

Segments are identified by globally unique, monotonically increasing
integer ids.  The old source ``S1`` owns ids ``[first_id, last_id]`` and the
new source ``S2`` owns ids from ``last_id + 1`` upwards (the paper sets
``id_begin = id_end + 1``).  Working with one global id space keeps the
playback deadline arithmetic of Eq. 7 uniform across the switch boundary,
exactly as the paper's model does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.base import Stream

__all__ = ["DEFAULT_SEGMENT_BITS", "StreamSpec", "SwitchPlan"]

#: Size of one data segment in bits (the paper: "each data segment contains
#: 30 Kb", with a 300 kbit/s stream and p = 10 segments/second).
DEFAULT_SEGMENT_BITS: int = 30 * 1024


@dataclass(frozen=True)
class StreamSpec:
    """Description of one source's stream.

    Attributes
    ----------
    stream:
        Which logical source this is (old or new).
    source_id:
        Overlay node id of the source.
    first_id:
        Id of the stream's first segment.
    rate:
        Segment generation rate ``p`` (segments/second).
    segment_bits:
        Payload size of each segment in bits.
    """

    stream: Stream
    source_id: int
    first_id: int
    rate: float
    segment_bits: int = DEFAULT_SEGMENT_BITS

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"stream rate must be positive, got {self.rate}")
        if self.first_id < 0:
            raise ValueError(f"first_id must be non-negative, got {self.first_id}")
        if self.segment_bits <= 0:
            raise ValueError(f"segment_bits must be positive, got {self.segment_bits}")

    def segments_generated_by(self, start_time: float, now: float) -> int:
        """Number of segments generated between ``start_time`` and ``now``."""
        if now <= start_time:
            return 0
        return int((now - start_time) * self.rate)

    def id_at(self, index: int) -> int:
        """Id of the stream's ``index``-th segment (0-based)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return self.first_id + index


@dataclass(frozen=True)
class SwitchPlan:
    """The global facts of a source switch.

    ``id_end`` is the last segment of the old source and ``id_begin`` the
    first segment of the new one; the paper fixes ``id_begin = id_end + 1``
    and has the new source announce ``id_end`` inside its first segments.
    Peers do **not** see this object directly -- they learn the ids through
    the buffer-map exchange (see
    :class:`repro.streaming.buffermap.BufferMapSnapshot.switch_info`).

    Attributes
    ----------
    id_end:
        Last segment id of the old stream.
    id_begin:
        First segment id of the new stream.
    switch_time:
        Simulation time at which the old source stops and the new one
        starts (always ``0.0`` in the paper's timeline).
    startup_quota:
        ``Qs``: segments of the new stream required to start its playback.
    """

    id_end: int
    id_begin: int
    switch_time: float = 0.0
    startup_quota: int = 50

    def __post_init__(self) -> None:
        if self.id_begin != self.id_end + 1:
            raise ValueError(
                f"id_begin must equal id_end + 1 (paper convention); "
                f"got id_end={self.id_end}, id_begin={self.id_begin}"
            )
        if self.startup_quota <= 0:
            raise ValueError(f"startup_quota must be positive, got {self.startup_quota}")

    def stream_of(self, seg_id: int) -> Stream:
        """Which stream a segment id belongs to."""
        return Stream.NEW if seg_id >= self.id_begin else Stream.OLD

    def startup_ids(self) -> range:
        """The ids of the new stream's startup window (first ``Qs`` segments)."""
        return range(self.id_begin, self.id_begin + self.startup_quota)

    @staticmethod
    def from_old_stream(
        last_old_id: int,
        *,
        switch_time: float = 0.0,
        startup_quota: int = 50,
    ) -> "SwitchPlan":
        """Build a plan given the old stream's final segment id."""
        return SwitchPlan(
            id_end=last_old_id,
            id_begin=last_old_id + 1,
            switch_time=switch_time,
            startup_quota=startup_quota,
        )


def classify_segment(seg_id: int, plan: Optional[SwitchPlan]) -> Stream:
    """Classify ``seg_id`` as old/new given an optional switch plan.

    Without a plan every segment is considered part of the old stream (there
    is only one stream before a switch is announced).
    """
    if plan is None:
        return Stream.OLD
    return plan.stream_of(seg_id)
