"""The two-source switch session: one full simulation run.

:class:`SwitchSession` assembles the whole system -- overlay, sources,
peers, bandwidth, churn, metrics -- and drives it round by round through the
discrete-event engine:

1. **Setup** (time 0): build the overlay from a (synthetic) trace, augment
   it to the minimum degree ``M``, pick the two source nodes, assign
   bandwidth, create the peers and seed them into the steady state of the
   old stream (analytic warm-up) or run a simulated warm-up.
2. **Rounds** (every ``tau`` seconds): the new source generates segments;
   churn is applied (dynamic scenarios); every peer pulls buffer maps from
   its neighbours (control traffic is charged), runs its switch algorithm
   and issues requests; transfers are executed against the suppliers'
   outbound budgets; playback advances; metrics are sampled.
3. **Stop**: when every tracked peer has completed its source switch or the
   time horizon is reached.

The session is deterministic for a given :class:`SessionConfig` (seed
included), and the *same* seed produces the *same* overlay, bandwidth and
churn schedule for different switch algorithms, so algorithm comparisons
are paired exactly as in the paper.
"""

from __future__ import annotations

import time as _wallclock
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.churn.model import ChurnConfig, ChurnModel
from repro.core.base import ScheduleDecision, Stream, SwitchAlgorithm
from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.normal_switch import NormalSwitchAlgorithm
from repro.metrics.collectors import MetricsCollector, SwitchMetrics
from repro.metrics.overhead import OverheadAccountant
from repro.net.fabric import NetworkFabric, build_fabric
from repro.obs.probes import (
    DROP_NET_LOSS,
    DROP_NO_BUDGET,
    DROP_SUPPLIER_GONE,
    STAGE_ASSIGNED,
    STAGE_DELIVERED,
    STAGE_DROPPED,
    STAGE_MISSED,
    STAGE_PLAYED,
    STAGE_REQUESTED,
    STAGE_SCHEDULED,
)
from repro.obs.telemetry import get_telemetry
from repro.net.library import get_topology, topology_names
from repro.overlay.augment import augment_to_min_degree
from repro.overlay.generator import generate_trace
from repro.overlay.membership import MembershipService
from repro.overlay.topology import NodeInfo, Overlay, build_overlay_from_trace
from repro.sim.clock import round_half_up
from repro.sim.engine import SimulationEngine, StopSimulation
from repro.sim.rng import RandomStreams
from repro.streaming.bandwidth import (
    BandwidthProfile,
    OutboundLedger,
    PeerClass,
    draw_class_indices,
    sample_rates,
)
from repro.streaming.buffermap import BufferMapSnapshot
from repro.streaming.peer import PeerNode
from repro.streaming.protocol import SEGMENT_REQUEST_BITS
from repro.streaming.segment import DEFAULT_SEGMENT_BITS, StreamSpec, SwitchPlan
from repro.streaming.source import SourceNode

__all__ = [
    "SessionConfig",
    "SessionResult",
    "SwitchSession",
    "PeriodDirective",
    "build_session_overlay",
    "ALGORITHM_FACTORIES",
    "ENGINE_NAMES",
]


#: Registry of algorithm factories by name, used by configs and the CLI.
ALGORITHM_FACTORIES: Dict[str, Callable[[], SwitchAlgorithm]] = {
    "fast": FastSwitchAlgorithm,
    "normal": NormalSwitchAlgorithm,
}

#: Valid values of ``SessionConfig.engine`` (see :mod:`repro.core.vector`).
ENGINE_NAMES: Tuple[str, ...] = ("oracle", "vector")


@dataclass(frozen=True)
class PeriodDirective:
    """Environment overrides for one scheduling period.

    The time-scripted workload engine (:mod:`repro.workloads`) compiles a
    workload specification into a map from period index (1-based, period
    ``k`` ends at time ``k * tau``) to directives; the session applies them
    as the round executes.  Everything stays deterministic: directives are
    plain data and the random draws they trigger come from the session's
    named streams.

    Attributes
    ----------
    leave_fraction / join_fraction:
        Override the churn intensities for this period only (``None`` keeps
        the configured model; a value activates churn even when the
        configured model is disabled -- a churn burst over a static
        baseline).
    leave_count / join_count:
        Exact membership-change counts for this period, winning over the
        fractions.  The channel-zapping universe compiles its per-channel
        arrival/departure schedules into counts, so every mesh executes
        precisely the scripted number of joins and leaves.
    bandwidth_scale:
        Multiplies every node's outbound budget for this period (congestion
        regimes; 1.0 is neutral).
    fail_fraction:
        Fraction of current peers removed as one *correlated* failure: a
        random peer and its overlay vicinity (breadth-first) fail together,
        modelling a crashed access network rather than independent churn.
    phase:
        Name of the workload phase this directive belongs to (bookkeeping
        only).
    """

    leave_fraction: Optional[float] = None
    join_fraction: Optional[float] = None
    leave_count: Optional[int] = None
    join_count: Optional[int] = None
    bandwidth_scale: float = 1.0
    fail_fraction: float = 0.0
    phase: str = ""

    def __post_init__(self) -> None:
        for name in ("leave_fraction", "join_fraction"):
            value = getattr(self, name)
            if value is not None and not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("leave_count", "join_count"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.bandwidth_scale <= 0:
            raise ValueError(
                f"bandwidth_scale must be positive, got {self.bandwidth_scale}"
            )
        if not (0.0 <= self.fail_fraction <= 1.0):
            raise ValueError(f"fail_fraction must be in [0, 1], got {self.fail_fraction}")

    @property
    def is_neutral(self) -> bool:
        """Whether this directive changes nothing (safe to omit from maps)."""
        return (
            self.leave_fraction is None
            and self.join_fraction is None
            and self.leave_count is None
            and self.join_count is None
            and self.bandwidth_scale == 1.0
            and self.fail_fraction == 0.0
        )


def build_session_overlay(
    n_nodes: int,
    seed: int,
    *,
    min_degree: int = 5,
    trace_mean_degree: float = 2.0,
) -> Overlay:
    """Build the overlay a session with this (size, seed) would build.

    Exposed so the workload engine can construct one overlay per repetition
    and hand it to every switch segment (each session takes its own copy,
    so all zaps start from the same initial topology); the result is
    identical to what :class:`SwitchSession` builds internally for the
    same parameters.
    """
    streams = RandomStreams(seed)
    trace = generate_trace(n_nodes, seed=seed, mean_degree=trace_mean_degree)
    overlay = build_overlay_from_trace(trace)
    augment_to_min_degree(overlay, min_degree, streams.get("augment"))
    return overlay


@dataclass(frozen=True)
class SessionConfig:
    """Full configuration of one simulation run.

    Defaults follow Section 5.1 of the paper; the network size defaults to a
    laptop-friendly 200 peers (the experiment sweeps override it).

    Attributes
    ----------
    n_nodes:
        Overlay size (including the two sources).
    seed:
        Root random seed (controls overlay, bandwidth, churn, ordering).
    algorithm:
        Which switch algorithm to use: a key of :data:`ALGORITHM_FACTORIES`.
    min_degree:
        ``M``: minimum number of neighbours per node (paper: 5).
    play_rate:
        ``p``: segments played/generated per second (paper: 10).
    buffer_capacity:
        ``B``: per-peer FIFO buffer capacity in segments (paper: 600).
    tau:
        Data scheduling period in seconds (paper: 1.0).
    startup_quota_old:
        ``Q``: consecutive segments to (re)start old-stream playback
        (paper: 10).
    startup_quota_new:
        ``Qs``: startup segments of the new stream (paper: 50).
    inbound_low / inbound_high / inbound_mean:
        Parameters of the inbound rate distribution in segments/second
        (paper: 10--33 averaging 15).
    outbound_low / outbound_high / outbound_mean:
        Same for the outbound rates ("alike" in the paper).
    source_outbound:
        Outbound rate of each source node (segments/second); the paper only
        says "much larger" -- the default is 4x the mean peer outbound rate.
    old_stream_segments:
        Number of segments the old source produced before the switch
        (analytic warm-up only; the simulated warm-up derives it from the
        warm-up duration).
    warmup:
        ``"analytic"`` (seed peers from hop distances, default) or
        ``"simulated"`` (actually stream the old source for
        ``warmup_duration`` seconds before the switch).
    warmup_duration:
        Length of the simulated warm-up in seconds.
    lag_per_hop:
        Analytic warm-up: average backlog (segments) added per overlay hop
        from the old source.  Pull-based meshes of the CoolStreaming family
        typically run one to a few scheduling periods behind the live edge
        per overlay hop; the default of 20 segments (2 seconds of content)
        per hop reproduces the paper's finishing-time magnitudes.
    lag_jitter:
        Analytic warm-up: relative jitter applied to the per-peer lag.
    bandwidth_lag_factor:
        Analytic warm-up: extra backlog per missing segment/second of
        inbound rate below the mean (slow peers run further behind).
    playback_offset:
        Analytic warm-up: distance (segments) between a peer's newest
        buffered segment and its playback position at the switch instant.
    lookahead:
        How far (segments) beyond the playback position peers advertise
        interest before they know where the old stream ends.
    max_time:
        Simulation horizon in seconds after the switch.
    churn:
        Churn configuration (disabled for the static experiments).
    supplier_rate_estimate:
        ``"full"`` (default): a neighbour advertises its whole outbound
        rate as its sending rate ``R(j)``, exactly as Algorithm 1 assumes;
        actual contention is resolved by the supplier-side outbound ledger.
        ``"fair_share"``: advertise ``outbound / degree`` instead (a more
        conservative estimator provided for sensitivity analysis).
    trace_mean_degree:
        Mean crawled degree of the synthetic bootstrap trace.
    record_rounds:
        Whether to keep the per-round time series (disable for large
        parameter sweeps to save memory).
    peer_classes:
        Optional heterogeneous bandwidth classes (ADSL/cable/fiber ...).
        When non-empty, every peer (and every churn joiner) is assigned a
        class -- weighted by the class fractions -- and samples its rates
        from that class's distribution instead of the global
        ``inbound_*``/``outbound_*`` parameters.
    run_full_horizon:
        When true the session runs to ``max_time`` even after every tracked
        peer has switched.  The workload engine needs this so post-switch
        phases (churn bursts, congestion windows) still execute and their
        QoE is measured.
    engine:
        Which execution engine drives the per-period inner loop:
        ``"oracle"`` (the reference per-peer object engine, default) or
        ``"vector"`` (the NumPy struct-of-arrays engine in
        :mod:`repro.core.vector`).  Both produce bit-identical results --
        the vector engine is a pure performance substitution verified by
        the differential suite in ``tests/test_vector_equivalence.py`` --
        so the choice is an execution detail: it never enters result
        fingerprints or stored documents.
    topology:
        Name of a library network topology (:mod:`repro.net.library`).
        Empty (the default) runs on the zero-latency, lossless
        :class:`~repro.net.fabric.IdealFabric` -- the paper's implicit
        model, bit-identical to the pre-network-layer simulator.  A named
        topology runs on a :class:`~repro.net.fabric.LatencyFabric`:
        peers are assigned to regions, buffer-map pulls and segment
        requests can be lost (and are retried the next period), and
        segment deliveries arrive after a sampled propagation delay.
    """

    n_nodes: int = 200
    seed: int = 0
    algorithm: str = "fast"
    min_degree: int = 5
    play_rate: float = 10.0
    buffer_capacity: int = 600
    tau: float = 1.0
    startup_quota_old: int = 10
    startup_quota_new: int = 50
    inbound_low: float = 10.0
    inbound_high: float = 33.0
    inbound_mean: float = 15.0
    outbound_low: float = 10.0
    outbound_high: float = 33.0
    outbound_mean: float = 15.0
    source_outbound: float = 60.0
    old_stream_segments: int = 900
    warmup: str = "analytic"
    warmup_duration: float = 30.0
    lag_per_hop: float = 20.0
    lag_jitter: float = 0.35
    bandwidth_lag_factor: float = 3.0
    playback_offset: int = 30
    lookahead: int = 200
    max_time: float = 150.0
    churn: ChurnConfig = field(default_factory=ChurnConfig.disabled)
    supplier_rate_estimate: str = "full"
    trace_mean_degree: float = 2.0
    record_rounds: bool = True
    peer_classes: Tuple[PeerClass, ...] = ()
    run_full_horizon: bool = False
    topology: str = ""
    engine: str = "oracle"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; known: {sorted(ENGINE_NAMES)}"
            )
        if self.topology and self.topology not in topology_names():
            raise ValueError(
                f"unknown topology {self.topology!r}; known: {topology_names()}"
            )
        if self.n_nodes < self.min_degree + 2:
            raise ValueError(
                f"need at least min_degree + 2 = {self.min_degree + 2} nodes, got {self.n_nodes}"
            )
        if self.algorithm not in ALGORITHM_FACTORIES:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; known: {sorted(ALGORITHM_FACTORIES)}"
            )
        if self.warmup not in ("analytic", "simulated"):
            raise ValueError(f"warmup must be 'analytic' or 'simulated', got {self.warmup!r}")
        if self.supplier_rate_estimate not in ("fair_share", "full"):
            raise ValueError(
                "supplier_rate_estimate must be 'fair_share' or 'full', "
                f"got {self.supplier_rate_estimate!r}"
            )
        if self.old_stream_segments <= self.startup_quota_old:
            raise ValueError("old_stream_segments must exceed startup_quota_old")
        if self.max_time <= 0 or self.tau <= 0:
            raise ValueError("max_time and tau must be positive")
        if not isinstance(self.peer_classes, tuple):
            object.__setattr__(self, "peer_classes", tuple(self.peer_classes))
        names = [cls.name for cls in self.peer_classes]
        if len(set(names)) != len(names):
            raise ValueError(f"peer class names must be unique, got {names}")

    def with_algorithm(self, algorithm: str) -> "SessionConfig":
        """A copy of this config running a different switch algorithm."""
        return replace(self, algorithm=algorithm)

    def make_algorithm(self) -> SwitchAlgorithm:
        """Instantiate the configured switch algorithm."""
        return ALGORITHM_FACTORIES[self.algorithm]()


@dataclass
class SessionResult:
    """Everything a benchmark or example needs from one run."""

    config: SessionConfig
    metrics: SwitchMetrics
    switch_plan: SwitchPlan
    n_peers: int
    n_rounds: int
    average_degree: float
    overhead_ratio: float
    overhead_series: List[Tuple[float, float]]
    wallclock_seconds: float
    stop_reason: str
    fabric_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def algorithm(self) -> str:
        """Name of the switch algorithm that produced this result."""
        return self.metrics.algorithm


class SwitchSession:
    """One end-to-end source-switch simulation (see module docstring).

    Parameters
    ----------
    config:
        The full run configuration.
    algorithm_factory:
        Override for the switch-algorithm constructor (defaults to the
        configured algorithm).
    overlay:
        Pre-built overlay to start from (the session takes its own copy);
        defaults to building one from the config.
    directives:
        Per-period environment overrides (the workload/universe engines).
    engine:
        A *shared* :class:`~repro.sim.engine.SimulationEngine` to attach to.
        When given, the session schedules its rounds on that engine but does
        not drive it: a finished session quietly retires its periodic
        process instead of stopping the engine, so many independent channel
        meshes can run interleaved on one clock (the multi-channel
        universe).  The owner runs the engine and calls :meth:`finalize` on
        each session.  Shared sessions require the analytic warm-up (a
        shared clock starts at 0).
    label:
        Free-form tag (e.g. the channel name) carried for bookkeeping.
    membership_factory:
        Override for membership-service construction; called with the
        session's overlay and the protected source ids.  The channel
        directory injects per-channel membership services this way.
    fabric:
        Override for the network fabric.  Defaults to a
        :class:`~repro.net.fabric.LatencyFabric` built from
        ``config.topology`` (seeded from the session's ``"net"`` stream,
        so paired runs and worker fan-outs stay deterministic) or, with no
        topology configured, the zero-latency
        :class:`~repro.net.fabric.IdealFabric`.
    """

    def __new__(cls, config: Optional[SessionConfig] = None, *args, **kwargs):
        # Dispatch on the configured execution engine so every construction
        # site -- runner, workloads, universe -- picks up the vector engine
        # through the config alone.  Subclasses (the vector engine itself)
        # bypass the dispatch.
        if (
            cls is SwitchSession
            and config is not None
            and getattr(config, "engine", "oracle") == "vector"
        ):
            from repro.core.vector import VectorSwitchSession

            return super().__new__(VectorSwitchSession)
        return super().__new__(cls)

    def __init__(
        self,
        config: SessionConfig,
        *,
        algorithm_factory: Optional[Callable[[], SwitchAlgorithm]] = None,
        overlay: Optional[Overlay] = None,
        directives: Optional[Mapping[int, PeriodDirective]] = None,
        engine: Optional[SimulationEngine] = None,
        label: str = "",
        membership_factory: Optional[
            Callable[[Overlay, frozenset], MembershipService]
        ] = None,
        fabric: Optional[NetworkFabric] = None,
    ) -> None:
        self.config = config
        self.label = label
        self._algorithm_factory = algorithm_factory or config.make_algorithm
        self._membership_factory = membership_factory
        self._directives: Dict[int, PeriodDirective] = dict(directives or {})
        self.streams = RandomStreams(config.seed)
        if fabric is not None:
            self.fabric = fabric
        else:
            topology = get_topology(config.topology) if config.topology else None
            self.fabric = build_fabric(
                topology, self.streams.get("net") if topology else None
            )
        self._owns_engine = engine is None
        if engine is not None and config.warmup == "simulated":
            raise ValueError(
                "a session on a shared engine requires the analytic warm-up"
            )
        self.engine = engine if engine is not None else SimulationEngine(
            start_time=-config.warmup_duration if config.warmup == "simulated" else 0.0
        )
        #: region pin per bandwidth-class name (classes without a pin omitted)
        self._class_region_pin: Dict[str, str] = {
            cls.name: cls.region for cls in config.peer_classes if cls.region
        }
        self._stop_reason: Optional[str] = None
        self._wallclock = 0.0
        self.overlay = overlay.copy() if overlay is not None else self._build_overlay()
        self.peers: Dict[int, PeerNode] = {}
        self.sources: Dict[int, SourceNode] = {}
        self._departed: List[PeerNode] = []
        self._departed_stalls = 0
        self._outbound: Dict[int, float] = {}
        self._inbound: Dict[int, float] = {}
        self._peer_class: Dict[int, str] = {}
        self.overhead = OverheadAccountant()
        self.collector = MetricsCollector(config.startup_quota_new)
        self.rounds_run = 0
        self._switch_announced = False
        self._setup()

    # ================================================================== #
    # construction
    # ================================================================== #
    def _build_overlay(self) -> Overlay:
        cfg = self.config
        return build_session_overlay(
            cfg.n_nodes,
            cfg.seed,
            min_degree=cfg.min_degree,
            trace_mean_degree=cfg.trace_mean_degree,
        )

    def _setup(self) -> None:
        cfg = self.config
        rng = self.streams.get("setup")

        self.old_source_id, self.new_source_id = self._choose_sources(rng)
        self._assign_bandwidth()
        self._assign_regions()
        self._create_sources()
        self._create_peers()

        protected = frozenset({self.old_source_id, self.new_source_id})
        if self._membership_factory is not None:
            self.membership = self._membership_factory(self.overlay, protected)
        else:
            self.membership = MembershipService(
                self.overlay,
                cfg.min_degree,
                self.streams.get("membership"),
                protected=protected,
            )
        if self.fabric.locality_bias > 1.0:
            self.membership.set_locality(
                self.fabric.region_index_of, self.fabric.locality_bias
            )
        self.churn = ChurnModel(cfg.churn, self.streams.get("churn"))
        self.ledger = OutboundLedger(self._outbound, cfg.tau)

        if cfg.warmup == "analytic":
            self._analytic_warmup()
            self._announce_switch()
            self._record_initial_backlog()
        else:
            self._prepare_simulated_warmup()

        self.collector.sample_round(
            max(self.engine.now, 0.0), list(self.peers.values()), self._departed_stalls
        )
        self._periodic = self.engine.schedule_periodic(
            cfg.tau,
            self._round,
            start=self.engine.now + cfg.tau,
            label=f"scheduling-round:{self.label}" if self.label else "scheduling-round",
        )

    def _choose_sources(self, rng: np.random.Generator) -> Tuple[int, int]:
        """Pick two low-degree nodes as the old and new sources.

        Hubs are avoided so that neither source starts with an unrealistic
        number of direct neighbours (the paper's sources are ordinary
        members that happen to speak).
        """
        by_degree = sorted(self.overlay.node_ids, key=lambda n: (self.overlay.degree(n), n))
        candidates = by_degree[: max(10, len(by_degree) // 4)]
        order = rng.permutation(len(candidates))
        first = int(candidates[int(order[0])])
        second = int(candidates[int(order[1])])
        return first, second

    def _assign_bandwidth(self) -> None:
        cfg = self.config
        node_ids = self.overlay.node_ids
        peer_ids = [n for n in node_ids if n not in (self.old_source_id, self.new_source_id)]
        if cfg.peer_classes:
            class_indices = draw_class_indices(
                len(peer_ids), cfg.peer_classes, self.streams.get("peer-class")
            )
            inbound_rng = self.streams.get("inbound")
            outbound_rng = self.streams.get("outbound")
            for idx, node_id in enumerate(peer_ids):
                peer_class = cfg.peer_classes[int(class_indices[idx])]
                self._peer_class[node_id] = peer_class.name
                self._inbound[node_id] = peer_class.sample_inbound(inbound_rng)
                self._outbound[node_id] = peer_class.sample_outbound(outbound_rng)
        else:
            inbound = sample_rates(
                len(peer_ids),
                self.streams.get("inbound"),
                low=cfg.inbound_low,
                high=cfg.inbound_high,
                mean=cfg.inbound_mean,
            )
            outbound = sample_rates(
                len(peer_ids),
                self.streams.get("outbound"),
                low=cfg.outbound_low,
                high=cfg.outbound_high,
                mean=cfg.outbound_mean,
            )
            for idx, node_id in enumerate(peer_ids):
                self._inbound[node_id] = float(inbound[idx])
                self._outbound[node_id] = float(outbound[idx])
        for source_id in (self.old_source_id, self.new_source_id):
            self._inbound[source_id] = 0.0
            self._outbound[source_id] = cfg.source_outbound

    def _assign_regions(self) -> None:
        """Place every node (sources included) on the fabric's regions.

        Peer classes that pin a region (``PeerClass.region``) override the
        topology's weighted-random draw for their members; the draw is
        still consumed for every node, so pinning one class never perturbs
        the other nodes' placement.  The ideal fabric ignores all of this.
        """
        pinned: Dict[int, str] = {}
        if self._class_region_pin and self.fabric.topology is not None:
            for node_id, class_name in self._peer_class.items():
                region = self._class_region_pin.get(class_name, "")
                if region:
                    pinned[node_id] = region
        self.fabric.assign_regions(self.overlay.node_ids, pinned)

    def _create_sources(self) -> None:
        cfg = self.config
        warmup_simulated = cfg.warmup == "simulated"
        old_segments = (
            int(cfg.warmup_duration * cfg.play_rate)
            if warmup_simulated
            else cfg.old_stream_segments
        )
        self.switch_plan = SwitchPlan.from_old_stream(
            old_segments - 1, startup_quota=cfg.startup_quota_new
        )
        old_spec = StreamSpec(
            stream=Stream.OLD,
            source_id=self.old_source_id,
            first_id=0,
            rate=cfg.play_rate,
        )
        new_spec = StreamSpec(
            stream=Stream.NEW,
            source_id=self.new_source_id,
            first_id=self.switch_plan.id_begin,
            rate=cfg.play_rate,
        )
        old_source = SourceNode(
            old_spec,
            outbound_rate=cfg.source_outbound,
            start_time=-cfg.warmup_duration if warmup_simulated else -1.0,
            stop_time=0.0,
        )
        if not warmup_simulated:
            old_source.preload(old_segments)
        new_source = SourceNode(
            new_spec,
            outbound_rate=cfg.source_outbound,
            start_time=0.0,
            stop_time=None,
        )
        self.sources = {self.old_source_id: old_source, self.new_source_id: new_source}

    def _create_peers(self) -> None:
        cfg = self.config
        for node_id in self.overlay.node_ids:
            if node_id in self.sources:
                continue
            profile = BandwidthProfile(
                inbound=self._inbound[node_id], outbound=self._outbound[node_id]
            )
            self.peers[node_id] = PeerNode(
                node_id,
                profile,
                self._algorithm_factory(),
                buffer_capacity=cfg.buffer_capacity,
                play_rate=cfg.play_rate,
                startup_quota_old=cfg.startup_quota_old,
                startup_quota_new=cfg.startup_quota_new,
                tau=cfg.tau,
                lookahead=cfg.lookahead,
                tracked=True,
                peer_class=self._peer_class.get(node_id, ""),
                region=self.fabric.region_of(node_id),
            )
        probes = get_telemetry().probes
        if probes.enabled:
            for node_id in self.peers:
                probes.funnel.mark(self.label, node_id, "joined", 0.0)

    # ------------------------------------------------------------------ #
    # warm-up
    # ------------------------------------------------------------------ #
    def _analytic_warmup(self) -> None:
        """Seed every peer into the old stream's steady state from hop distances."""
        cfg = self.config
        rng = self.streams.get("warmup")
        hops = self.overlay.hop_distances_from(self.old_source_id)
        max_hops = max(hops.values()) if hops else 1
        id_end = self.switch_plan.id_end

        for node_id, peer in self.peers.items():
            distance = hops.get(node_id, max_hops + 1)
            jitter = 1.0 + cfg.lag_jitter * float(rng.uniform(-1.0, 1.0))
            slow_penalty = max(0.0, cfg.inbound_mean - peer.bandwidth.inbound)
            lag = cfg.lag_per_hop * distance * jitter + cfg.bandwidth_lag_factor * slow_penalty
            lag = int(round(min(max(lag, 0.0), cfg.old_stream_segments * 0.5)))
            head = max(cfg.playback_offset, id_end - lag)
            position = max(0, head - cfg.playback_offset)
            peer.seed_steady_state(
                head_id=head,
                playback_position=position,
                first_old_id=0,
                now=0.0,
            )

    def _record_initial_backlog(self) -> None:
        """Record each tracked peer's ``Q0`` at the switch instant."""
        id_end = self.switch_plan.id_end
        for peer in self.peers.values():
            head = peer.highest_known_old if peer.highest_known_old is not None else -1
            missing_ahead = max(0, id_end - head)
            holes = len(peer.buffer.missing_in_range(peer.playback_old.position, min(head, id_end))) \
                if peer.playback_old is not None and head >= 0 else 0
            peer.q0 = missing_ahead + holes

    def _prepare_simulated_warmup(self) -> None:
        """Initialise peers for a simulated warm-up starting before time 0."""
        for peer in self.peers.values():
            peer.init_fresh_playback(position=0)
        # The switch is announced (and Q0 recorded) by an event at time 0,
        # after the last warm-up round has executed.
        self.engine.schedule(0.0, self._finish_simulated_warmup, priority=10,
                             label="finish-warmup")

    def _finish_simulated_warmup(self) -> None:
        self._announce_switch()
        self._record_initial_backlog()

    def _announce_switch(self) -> None:
        """Give the new source its announcement (it embeds ``id_end`` in its data)."""
        self.sources[self.new_source_id].announce_switch(self.switch_plan)
        self._switch_announced = True

    # ================================================================== #
    # the scheduling round
    # ================================================================== #
    def _round(self, now: float) -> None:
        cfg = self.config
        self.rounds_run += 1
        directive = self._directive_for(now)

        if now > 0:
            if directive is not None and directive.fail_fraction > 0.0:
                self._apply_correlated_failure(directive.fail_fraction)
            leave = directive.leave_fraction if directive is not None else None
            join = directive.join_fraction if directive is not None else None
            leave_n = directive.leave_count if directive is not None else None
            join_n = directive.join_count if directive is not None else None
            if (
                cfg.churn.enabled
                or leave is not None or join is not None
                or leave_n is not None or join_n is not None
            ):
                self._apply_churn(
                    now,
                    leave_fraction=leave,
                    join_fraction=join,
                    leave_count=leave_n,
                    join_count=join_n,
                )

        for source in self.sources.values():
            source.generate_until(now)

        self.ledger.reset_period(
            directive.bandwidth_scale if directive is not None else 1.0
        )
        order = list(self.peers.keys())
        self.streams.get("round-order").shuffle(order)

        obs = get_telemetry()
        with obs.span("period.decide", t=now, peers=len(order)):
            decisions = self._decide_phase(order, now)

        probes = obs.probes
        probing = probes.enabled
        lifecycle = probes.lifecycle
        period = self.rounds_run
        requests = failed = delayed = 0
        deliveries: List[Tuple[PeerNode, int, int]] = []
        with obs.span("period.exchange", t=now):
            for node_id in order:
                peer = self.peers[node_id]
                for request in decisions[node_id].requests:
                    requests += 1
                    self.overhead.add_request(SEGMENT_REQUEST_BITS)
                    supplier = self._node(request.supplier_id)
                    if supplier is None or not supplier.buffer.contains(request.seg_id):
                        peer.record_failed_request()
                        failed += 1
                        if probing:
                            lifecycle.append(now, period, node_id, request.seg_id,
                                             STAGE_DROPPED, request.supplier_id,
                                             DROP_SUPPLIER_GONE)
                        continue
                    if not self.ledger.consume(request.supplier_id):
                        peer.record_failed_request()
                        failed += 1
                        if probing:
                            lifecycle.append(now, period, node_id, request.seg_id,
                                             STAGE_DROPPED, request.supplier_id,
                                             DROP_NO_BUDGET)
                        continue
                    self.overhead.add_data(DEFAULT_SEGMENT_BITS)
                    delay = self.fabric.data_transfer(request.supplier_id, peer.node_id)
                    if delay is None:
                        # The segment was lost in flight.  The loss sits on the
                        # large response, not the tiny request, so the
                        # supplier's upload budget and the wire bytes are spent
                        # regardless; the scheduler re-requests the segment
                        # next period (drop + retry).
                        peer.record_failed_request()
                        failed += 1
                        if probing:
                            lifecycle.append(now, period, node_id, request.seg_id,
                                             STAGE_DROPPED, request.supplier_id,
                                             DROP_NET_LOSS)
                        continue
                    if delay <= 0.0:
                        deliveries.append((peer, request.seg_id, request.supplier_id))
                    else:
                        delayed += 1
                        self._schedule_delivery(
                            peer.node_id, request.seg_id, delay,
                            supplier_id=request.supplier_id,
                        )

            for peer, seg_id, supplier_id in deliveries:
                peer.apply_delivery(seg_id, now)
                if probing:
                    lifecycle.append(now, period, peer.node_id, seg_id,
                                     STAGE_DELIVERED, supplier_id)
                    if seg_id >= self.switch_plan.id_begin:
                        probes.funnel.mark(self.label, peer.node_id,
                                           "first_segment", now)

        with obs.span("period.flush", t=now):
            for node_id in order:
                peer = self.peers[node_id]
                if probing:
                    pos_before = peer._current_playback_id()
                    stalls_before = peer.total_stalls
                peer.advance_playback(now - cfg.tau, cfg.tau)
                if probing:
                    pos_after = peer._current_playback_id()
                    played = pos_after - pos_before
                    if played > 0:
                        lifecycle.append(now, period, node_id, pos_after,
                                         STAGE_PLAYED, -1, float(played))
                    missed = peer.total_stalls - stalls_before
                    if missed > 0:
                        lifecycle.append(now, period, node_id, pos_after,
                                         STAGE_MISSED, -1, float(missed))

            if probing:
                funnel = probes.funnel
                fills: List[int] = []
                pending = 0
                for node_id in order:
                    peer = self.peers.get(node_id)
                    if peer is None:
                        continue
                    fills.append(len(peer.buffer))
                    pending += len(peer.wanted_old) + len(peer.wanted_new)
                    if peer.discovered_switch_time is not None:
                        funnel.mark(self.label, node_id, "first_map",
                                    peer.discovered_switch_time)
                    if peer.switch_complete_time is not None:
                        funnel.mark(self.label, node_id, "playback",
                                    peer.switch_complete_time)
                probes.health.sample(
                    now, self.label, fills,
                    pending=pending,
                    utilisation=self.ledger.utilisation(),
                    requests=requests,
                    failed=failed,
                    delivered=len(deliveries),
                )

            self.ledger.end_period()
            if obs.enabled:
                obs.counter("session.periods").inc()
                obs.counter("fabric.requests").add(requests)
                obs.counter("fabric.requests_failed").add(failed)
                obs.counter("fabric.deliveries_immediate").add(len(deliveries))
                obs.counter("fabric.deliveries_delayed").add(delayed)
                obs.gauge("session.peers").set(len(self.peers))
            if now >= 0:
                self.overhead.close_period(now)
                if cfg.record_rounds:
                    self.collector.sample_round(
                        now, list(self.peers.values()), self._departed_stalls
                    )
                self._maybe_stop(now)

    def _decide_phase(self, order: Sequence[int], now: float) -> Dict[int, ScheduleDecision]:
        """Run every peer's buffer-map pull + scheduling decision for one round.

        The decide phase consumes no randomness beyond the fabric's
        control-transfer draws and never mutates neighbour state, so the
        vector engine (:mod:`repro.core.vector`) overrides exactly this
        method with an array-native equivalent.
        """
        decisions: Dict[int, ScheduleDecision] = {}
        obs = get_telemetry()
        lifecycle = obs.probes.lifecycle
        probing = obs.probes.enabled
        period = self.rounds_run
        for node_id in order:
            peer = self.peers[node_id]
            snapshots = self._pull_buffer_maps(peer)
            decision = peer.decide(snapshots, now)
            decisions[node_id] = decision
            if probing:
                for request in decision.requests:
                    lifecycle.append(now, period, node_id, request.seg_id,
                                     STAGE_REQUESTED)
                    lifecycle.append(now, period, node_id, request.seg_id,
                                     STAGE_ASSIGNED, request.supplier_id)
                    lifecycle.append(now, period, node_id, request.seg_id,
                                     STAGE_SCHEDULED, request.supplier_id,
                                     request.expected_receive_time)
        if obs.enabled:
            obs.counter("engine.dispatch.scalar").add(len(order))
        return decisions

    def _schedule_delivery(
        self, node_id: int, seg_id: int, delay: float, *, supplier_id: int = -1
    ) -> None:
        """Deliver ``seg_id`` to ``node_id`` after the network delay.

        The receiving peer may have left through churn by the arrival time,
        in which case the segment evaporates with it.
        """

        def deliver() -> None:
            peer = self.peers.get(node_id)
            if peer is None:
                return
            arrival = self.engine.now
            peer.apply_delivery(seg_id, arrival)
            probes = get_telemetry().probes
            if probes.enabled:
                probes.lifecycle.append(arrival, self.rounds_run, node_id, seg_id,
                                        STAGE_DELIVERED, supplier_id, delay)
                if seg_id >= self.switch_plan.id_begin:
                    probes.funnel.mark(self.label, node_id, "first_segment", arrival)

        self.engine.schedule_in(delay, deliver, label="net-delivery")

    def _pull_buffer_maps(self, peer: PeerNode) -> List[BufferMapSnapshot]:
        """Pull one buffer map per current neighbour (charging control traffic).

        On a lossy fabric a pull (or its reply) can be dropped: the peer
        simply schedules this period without that neighbour's map and
        retries at the next period -- pull-based gossip is self-healing.
        """
        windows = peer.interest_windows()
        snapshots: List[BufferMapSnapshot] = []
        dropped = 0
        for neighbour_id in self.overlay.neighbours(peer.node_id):
            node = self._node(neighbour_id)
            if node is None:
                continue
            if self.fabric.control_transfer(neighbour_id, peer.node_id) is None:
                dropped += 1
                continue
            send_rate = self._estimate_send_rate(neighbour_id)
            snapshot = node.snapshot_for(windows, send_rate=send_rate)
            self.overhead.add_control(snapshot.wire_bits)
            snapshots.append(snapshot)
        obs = get_telemetry()
        if obs.enabled:
            obs.counter("fabric.control_pulls").add(len(snapshots))
            obs.counter("fabric.control_dropped").add(dropped)
        return snapshots

    def _estimate_send_rate(self, supplier_id: int) -> float:
        outbound = self._outbound.get(supplier_id, 0.0)
        if self.config.supplier_rate_estimate == "full":
            return outbound
        degree = max(1, self.overlay.degree(supplier_id))
        return outbound / degree

    def _node(self, node_id: int):
        """Look up a peer or source by id (``None`` if it has left)."""
        if node_id in self.peers:
            return self.peers[node_id]
        return self.sources.get(node_id)

    # ------------------------------------------------------------------ #
    # churn and scripted environment changes
    # ------------------------------------------------------------------ #
    def _directive_for(self, now: float) -> Optional[PeriodDirective]:
        """The workload directive for the period ending at ``now`` (if any)."""
        if not self._directives or now <= 0:
            return None
        period = round_half_up(now / self.config.tau)
        return self._directives.get(period)

    def _apply_churn(
        self,
        now: float,
        *,
        leave_fraction: Optional[float] = None,
        join_fraction: Optional[float] = None,
        leave_count: Optional[int] = None,
        join_count: Optional[int] = None,
    ) -> None:
        eligible = sorted(self.peers.keys())
        plan = self.churn.plan_round(
            eligible,
            leave_fraction=leave_fraction,
            join_fraction=join_fraction,
            leave_count=leave_count,
            join_count=join_count,
        )
        if plan.empty:
            return
        affected: List[int] = []
        for leaver in plan.leavers:
            if leaver not in self.peers:
                continue
            affected.extend(self._remove_peer(leaver))
        self.membership.repair([n for n in affected if n in self.overlay])

        rng = self.streams.get("join-bandwidth")
        for _ in range(plan.joins):
            self._create_joiner(now, rng)

    def _remove_peer(self, leaver: int) -> List[int]:
        """Remove one peer from every session structure; return its ex-neighbours."""
        affected = self.membership.leave(leaver)
        departed = self.peers.pop(leaver)
        if departed.tracked:
            self._departed.append(departed)
            self._departed_stalls += departed.total_stalls
        self.ledger.remove_node(leaver)
        self._outbound.pop(leaver, None)
        self._inbound.pop(leaver, None)
        self._peer_class.pop(leaver, None)
        return affected

    def _apply_correlated_failure(self, fraction: float) -> None:
        """Fail a connected cluster of peers together (one correlated event).

        A random seed peer is drawn and the failure spreads breadth-first
        over current overlay neighbours until ``fraction`` of the peer
        population is gone -- the topological correlation is what separates
        this from the independent-leaver churn model.
        """
        eligible = sorted(self.peers.keys())
        target = min(round_half_up(fraction * len(eligible)), len(eligible))
        if target <= 0:
            return
        rng = self.streams.get("failure")
        victims: List[int] = []
        queue: deque[int] = deque()
        seen: set[int] = set()
        while len(victims) < target:
            if not queue:
                # (Re)start from a random untouched peer -- covers overlays
                # whose failed cluster is smaller than the target.
                candidates = [n for n in eligible if n not in seen]
                if not candidates:
                    break
                start = int(candidates[int(rng.integers(0, len(candidates)))])
                seen.add(start)
                queue.append(start)
            node_id = queue.popleft()
            victims.append(node_id)
            for neighbour in sorted(self.overlay.neighbours(node_id)):
                if neighbour not in seen and neighbour in self.peers:
                    seen.add(neighbour)
                    queue.append(neighbour)
        affected: List[int] = []
        for victim in victims:
            if victim in self.peers:
                affected.extend(self._remove_peer(victim))
        self.membership.repair([n for n in affected if n in self.overlay])

    def _create_joiner(self, now: float, rng: np.random.Generator) -> None:
        cfg = self.config
        info = NodeInfo(
            node_id=self.membership.allocate_node_id(),
            ping_ms=float(rng.uniform(20.0, 300.0)),
            speed_kbps=float(rng.choice([128.0, 768.0, 1500.0])),
        )
        node_id = self.membership.join(info)
        class_name = ""
        if cfg.peer_classes:
            index = int(draw_class_indices(1, cfg.peer_classes, rng)[0])
            peer_class = cfg.peer_classes[index]
            class_name = peer_class.name
            inbound = peer_class.sample_inbound(rng)
            outbound = peer_class.sample_outbound(rng)
        else:
            inbound = float(
                sample_rates(1, rng, low=cfg.inbound_low, high=cfg.inbound_high, mean=cfg.inbound_mean)[0]
            )
            outbound = float(
                sample_rates(1, rng, low=cfg.outbound_low, high=cfg.outbound_high, mean=cfg.outbound_mean)[0]
            )
        self._inbound[node_id] = inbound
        self._outbound[node_id] = outbound
        self._peer_class[node_id] = class_name
        self.ledger.add_node(node_id, outbound)
        pinned_region = ""
        if self.fabric.topology is not None:
            pinned_region = self._class_region_pin.get(class_name, "")
        self.fabric.assign_joiner(node_id, region=pinned_region)

        peer = PeerNode(
            node_id,
            BandwidthProfile(inbound=inbound, outbound=outbound),
            self._algorithm_factory(),
            buffer_capacity=cfg.buffer_capacity,
            play_rate=cfg.play_rate,
            startup_quota_old=cfg.startup_quota_old,
            startup_quota_new=cfg.startup_quota_new,
            tau=cfg.tau,
            lookahead=cfg.lookahead,
            tracked=False,
            peer_class=class_name,
            region=self.fabric.region_of(node_id),
        )
        # A joiner follows its neighbours' current playback point rather than
        # back-filling history (paper, Section 5.4).
        position = self._neighbour_playback_position(node_id)
        peer.init_fresh_playback(position=position)
        peer.q0 = 0
        self.peers[node_id] = peer
        probes = get_telemetry().probes
        if probes.enabled:
            probes.funnel.mark(self.label, node_id, "joined", now)

    def _neighbour_playback_position(self, node_id: int) -> int:
        positions: List[int] = []
        for neighbour_id in self.overlay.neighbours(node_id):
            neighbour = self.peers.get(neighbour_id)
            if neighbour is not None and neighbour.playback_old is not None:
                if neighbour.playback_new is not None and neighbour.playback_new.started:
                    positions.append(neighbour.playback_new.position)
                else:
                    positions.append(neighbour.playback_old.position)
        if not positions:
            return self.switch_plan.id_end + 1
        return max(positions)

    # ------------------------------------------------------------------ #
    # termination and results
    # ------------------------------------------------------------------ #
    def _maybe_stop(self, now: float) -> None:
        reason: Optional[str] = None
        tracked_alive = [p for p in self.peers.values() if p.tracked]
        if not tracked_alive:
            reason = "no tracked peers remain"
        elif not self.config.run_full_horizon and all(p.switch_done for p in tracked_alive):
            reason = "all tracked peers switched"
        elif now >= self.config.max_time:
            reason = "time horizon reached"
        if reason is None:
            return
        self._stop_reason = reason
        if self._owns_engine:
            raise StopSimulation(reason)
        # On a shared engine the session only retires itself: other channel
        # meshes keep running on the same clock.
        self._periodic.stop()

    @property
    def finished(self) -> bool:
        """Whether this session has stopped scheduling rounds."""
        return self._stop_reason is not None

    def run(self) -> SessionResult:
        """Run the simulation to completion and return the results.

        Only valid for a session that owns its engine; sessions attached to
        a shared engine are driven by their owner, which then collects each
        session's result through :meth:`finalize`.
        """
        if not self._owns_engine:
            raise RuntimeError(
                "session runs on a shared engine; run that engine and call finalize()"
            )
        started = _wallclock.perf_counter()
        with get_telemetry().span(
            "session.run",
            label=self.label,
            algorithm=self.config.algorithm,
            engine=self.config.engine,
            n_nodes=self.config.n_nodes,
        ):
            self.engine.run_until(self.config.max_time + self.config.tau)
        self._wallclock = _wallclock.perf_counter() - started
        return self.finalize()

    def finalize(self) -> SessionResult:
        """Build the :class:`SessionResult` from the session's current state."""
        # Peers that left through churn only contribute if they completed
        # their switch before leaving; peers that departed mid-switch carry
        # no meaningful completion time (the paper's dynamic scenario lets
        # joiners simply follow their neighbours, so the switch-time average
        # is over nodes that actually experienced the whole switch).
        completed_departed = [p for p in self._departed if p.switch_done]
        tracked = [p for p in self.peers.values() if p.tracked] + completed_departed
        metrics = self.collector.finalize(
            tracked,
            algorithm=self.config.algorithm,
            horizon=self.config.max_time,
            overhead_ratio=self.overhead.overhead_ratio(),
        )
        return SessionResult(
            config=self.config,
            metrics=metrics,
            switch_plan=self.switch_plan,
            n_peers=len(tracked),
            n_rounds=self.rounds_run,
            average_degree=self.overlay.average_degree(),
            overhead_ratio=self.overhead.overhead_ratio(),
            overhead_series=self.overhead.ratio_series(),
            wallclock_seconds=self._wallclock,
            stop_reason=self._stop_reason or "queue exhausted",
            fabric_stats=dict(self.fabric.stats()),
        )


def run_session(config: SessionConfig) -> SessionResult:
    """Convenience one-liner: build and run a session for ``config``."""
    return SwitchSession(config).run()
