"""Peer behaviour: view construction, request execution, playback.

A :class:`PeerNode` is one non-source participant of the mesh.  Every
scheduling period the session gives it the buffer-map snapshots it pulled
from its current neighbours; the peer

1. updates its knowledge (discovers the source switch the first time a
   neighbour that *holds new-source data* announces it, learns about newly
   generated segments, maintains its undelivered-segment sets),
2. builds a :class:`~repro.core.base.LocalView` and lets its switch
   algorithm produce a :class:`~repro.core.base.ScheduleDecision`,
3. receives the deliveries the session executed against the suppliers'
   outbound budgets, and
4. advances playback: the old stream finishes when its last segment has
   been played; the new stream starts once the old one has finished *and*
   its first ``Qs`` segments are buffered -- the moment the paper calls the
   completion of the peer's source switch.

The peer records the per-node quantities behind the paper's metrics:
``Q0`` (backlog at the switch instant), the number of old/new segments
received since the switch, the finish time of the old stream, the prepare
time of the new stream and the switch completion time.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.base import LocalView, NeighbourView, ScheduleDecision, SwitchAlgorithm
from repro.streaming.bandwidth import BandwidthProfile
from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import BufferMapSnapshot, snapshot_buffer
from repro.streaming.playback import PlaybackState
from repro.streaming.segment import SwitchPlan

__all__ = ["PeerNode"]


class PeerNode:
    """One mesh peer.

    Parameters
    ----------
    node_id:
        Overlay node id.
    bandwidth:
        Inbound/outbound capacity in segments per second.
    algorithm:
        The switch algorithm instance scheduling this peer's requests.
    buffer_capacity:
        FIFO buffer size ``B`` (segments).
    play_rate:
        Playback rate ``p`` (segments/second).
    startup_quota_old:
        ``Q``: consecutive segments needed to (re)start old-stream playback.
    startup_quota_new:
        ``Qs``: segments of the new stream needed to start its playback.
    tau:
        Data scheduling period (seconds).
    lookahead:
        How far beyond the playback position the peer advertises interest
        when it does not yet know where the old stream ends (segments).
    tracked:
        Whether this peer participates in switch-time metrics (peers that
        join through churn are not tracked, matching the paper's setup where
        joiners simply follow their neighbours' playback point).
    peer_class:
        Optional bandwidth-class label (ADSL/cable/fiber ...) used by the
        per-class workload metrics; empty for homogeneous populations.
    region:
        Optional network-region label assigned by the session's
        :class:`~repro.net.fabric.NetworkFabric`; empty under the ideal
        (network-oblivious) fabric.  Feeds the per-region switch-time
        breakdown.
    """

    def __init__(
        self,
        node_id: int,
        bandwidth: BandwidthProfile,
        algorithm: SwitchAlgorithm,
        *,
        buffer_capacity: int = 600,
        play_rate: float = 10.0,
        startup_quota_old: int = 10,
        startup_quota_new: int = 50,
        tau: float = 1.0,
        lookahead: int = 600,
        tracked: bool = True,
        peer_class: str = "",
        region: str = "",
    ) -> None:
        self.node_id = int(node_id)
        self.bandwidth = bandwidth
        self.algorithm = algorithm
        self.play_rate = float(play_rate)
        self.startup_quota_old = int(startup_quota_old)
        self.startup_quota_new = int(startup_quota_new)
        self.tau = float(tau)
        self.lookahead = int(lookahead)
        self.tracked = bool(tracked)
        self.peer_class = str(peer_class)
        self.region = str(region)

        self.buffer = SegmentBuffer(capacity=buffer_capacity)
        self.playback_old: Optional[PlaybackState] = None
        self.playback_new: Optional[PlaybackState] = None

        self.switch_plan: Optional[SwitchPlan] = None
        self.has_new_data = False
        self.highest_known_old: Optional[int] = None
        self.highest_known_new: Optional[int] = None
        self.wanted_old: set[int] = set()
        self.wanted_new: set[int] = set()

        # --- per-node metric bookkeeping (read by the session/collectors) ---
        self.q0: Optional[int] = None
        self.old_received_since_switch = 0
        self.new_startup_received = 0
        self.finish_old_time: Optional[float] = None
        self.prepared_new_time: Optional[float] = None
        self.switch_complete_time: Optional[float] = None
        self.segments_received_total = 0
        self.requests_issued = 0
        self.requests_failed = 0
        self.discovered_switch_time: Optional[float] = None

    # ------------------------------------------------------------------ #
    # warm-up seeding
    # ------------------------------------------------------------------ #
    def seed_steady_state(
        self,
        *,
        head_id: int,
        playback_position: int,
        first_old_id: int,
        now: float = 0.0,
    ) -> None:
        """Seed the peer into the steady state of the old stream.

        The buffer is filled with the contiguous window ending at
        ``head_id`` (bounded by its capacity and ``first_old_id``); playback
        is in progress at ``playback_position``.
        """
        if playback_position > head_id + 1:
            raise ValueError("playback_position cannot exceed head_id + 1")
        capacity = self.buffer.capacity or 0
        lo = max(first_old_id, head_id - capacity + 1) if capacity else first_old_id
        self.buffer.insert_many(range(lo, head_id + 1))
        self.highest_known_old = head_id
        self.playback_old = PlaybackState(
            play_rate=self.play_rate,
            startup_quota=self.startup_quota_old,
            position=playback_position,
            last_id=None,
            started=True,
            start_time=now,
        )

    def init_fresh_playback(self, position: int, *, open_ended: bool = True) -> None:
        """Initialise playback for a peer joining mid-stream (churn joiner)."""
        self.playback_old = PlaybackState(
            play_rate=self.play_rate,
            startup_quota=self.startup_quota_old,
            position=position,
            last_id=None,
        )
        self.highest_known_old = max(self.highest_known_old or 0, position)
        if not open_ended and self.switch_plan is not None:
            self.playback_old.last_id = self.switch_plan.id_end

    # ------------------------------------------------------------------ #
    # knowledge updates
    # ------------------------------------------------------------------ #
    def observe_snapshots(self, snapshots: Sequence[BufferMapSnapshot], now: float) -> None:
        """Digest the buffer maps pulled this period.

        Adopts the switch announcement (once), extends the known id horizon
        of both streams and refreshes the undelivered-segment sets.
        """
        if self.playback_old is None:
            raise RuntimeError(
                f"peer {self.node_id} was never seeded with a playback state"
            )
        for snap in snapshots:
            if snap.switch_info is not None and self.switch_plan is None:
                self._adopt_switch(snap.switch_info, now)

        id_end = self.switch_plan.id_end if self.switch_plan is not None else None
        id_begin = self.switch_plan.id_begin if self.switch_plan is not None else None

        for snap in snapshots:
            for seg_id in snap.available:
                if id_begin is not None and seg_id >= id_begin:
                    if self.highest_known_new is None or seg_id > self.highest_known_new:
                        self.highest_known_new = seg_id
                elif id_end is None or seg_id <= id_end:
                    if self.highest_known_old is None or seg_id > self.highest_known_old:
                        self.highest_known_old = seg_id

        self._refresh_wanted_old()
        self._refresh_wanted_new()

    def _adopt_switch(self, info: Tuple[int, int], now: float) -> None:
        """Learn ``(id_end, id_begin)`` and set up the new stream's state."""
        id_end, id_begin = info
        self.switch_plan = SwitchPlan(
            id_end=id_end,
            id_begin=id_begin,
            startup_quota=self.startup_quota_new,
        )
        self.discovered_switch_time = now
        assert self.playback_old is not None
        self.playback_old.last_id = id_end
        if self.playback_old.position > id_end and not self.playback_old.finished:
            # Everything of the old stream was already played before the
            # switch was even discovered.
            self.playback_old.finished = True
            self.playback_old.finish_time = now
        if self.highest_known_old is None or self.highest_known_old > id_end:
            self.highest_known_old = id_end
        self.playback_new = PlaybackState(
            play_rate=self.play_rate,
            startup_quota=self.startup_quota_new,
            position=id_begin,
            last_id=None,
        )
        self._refresh_wanted_new()
        self._check_prepared(now)

    def _refresh_wanted_old(self) -> None:
        """Recompute the undelivered old-stream set from current knowledge."""
        assert self.playback_old is not None
        if self.playback_old.finished:
            self.wanted_old = set()
            return
        hi = self.highest_known_old
        if hi is None:
            self.wanted_old = set()
            return
        lo = self.playback_old.position
        self.wanted_old = {
            seg_id for seg_id in range(lo, hi + 1) if not self.buffer.contains(seg_id)
        }

    def _refresh_wanted_new(self) -> None:
        """Recompute the undelivered new-stream set from current knowledge."""
        if self.switch_plan is None:
            self.wanted_new = set()
            return
        if self.playback_new is not None and self.playback_new.started:
            # Post-switch streaming of the new source: a sliding window ahead
            # of the playback position, bounded by what is known to exist.
            hi = self.highest_known_new
            if hi is None:
                self.wanted_new = set()
                return
            lo = self.playback_new.position
            hi = min(hi, lo + self.lookahead)
            self.wanted_new = {
                seg_id for seg_id in range(lo, hi + 1) if not self.buffer.contains(seg_id)
            }
            return
        self.wanted_new = {
            seg_id
            for seg_id in self.switch_plan.startup_ids()
            if not self.buffer.contains(seg_id)
        }

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def interest_windows(self) -> List[Tuple[int, int]]:
        """Id ranges this peer asks its neighbours to report maps for."""
        assert self.playback_old is not None
        windows: List[Tuple[int, int]] = []
        if self.switch_plan is None:
            lo = self.playback_old.position
            windows.append((lo, lo + self.lookahead))
            return windows
        if not self.playback_old.finished:
            windows.append((self.playback_old.position, self.switch_plan.id_end))
        if self.playback_new is not None and self.playback_new.started:
            lo = self.playback_new.position
            windows.append((lo, lo + self.lookahead))
        else:
            startup = self.switch_plan.startup_ids()
            windows.append((startup.start, startup.stop - 1 + self.lookahead // 4))
        return windows

    def build_view(self, snapshots: Sequence[BufferMapSnapshot], now: float) -> LocalView:
        """Assemble the :class:`LocalView` for this period."""
        assert self.playback_old is not None
        neighbours = tuple(
            NeighbourView(
                node_id=snap.owner_id,
                send_rate=snap.send_rate,
                available=snap.available,
                positions=snap.positions,
                buffer_capacity=snap.buffer_capacity,
            )
            for snap in snapshots
        )
        playback_id = self._current_playback_id()
        return LocalView(
            now=now,
            tau=self.tau,
            play_rate=self.play_rate,
            inbound_rate=self.bandwidth.inbound,
            playback_id=playback_id,
            startup_quota_old=self.startup_quota_old,
            startup_quota_new=self.startup_quota_new,
            old_needed=frozenset(self.wanted_old),
            new_needed=frozenset(self.wanted_new),
            id_end=self.switch_plan.id_end if self.switch_plan else None,
            id_begin=self.switch_plan.id_begin if self.switch_plan else None,
            neighbours=neighbours,
        )

    def decide(self, snapshots: Sequence[BufferMapSnapshot], now: float) -> ScheduleDecision:
        """Observe the snapshots and run the switch algorithm."""
        self.observe_snapshots(snapshots, now)
        view = self.build_view(snapshots, now)
        decision = self.algorithm.schedule(view)
        self.requests_issued += len(decision.requests)
        return decision

    def _current_playback_id(self) -> int:
        """``id_play``: the segment the player is currently consuming."""
        assert self.playback_old is not None
        if not self.playback_old.finished:
            return self.playback_old.position
        if self.playback_new is not None and self.playback_new.started:
            return self.playback_new.position
        # Old stream finished, new one not started: deadlines are measured
        # from the boundary (the player will resume at id_begin).
        if self.switch_plan is not None:
            return self.switch_plan.id_begin
        return self.playback_old.position

    # ------------------------------------------------------------------ #
    # deliveries and playback
    # ------------------------------------------------------------------ #
    def apply_delivery(self, seg_id: int, now: float) -> None:
        """Store a delivered segment and update metric counters."""
        was_new = not self.buffer.contains(seg_id)
        self.buffer.insert(seg_id)
        if not was_new:
            return
        self.segments_received_total += 1
        self.wanted_old.discard(seg_id)
        self.wanted_new.discard(seg_id)
        if self.switch_plan is not None and seg_id >= self.switch_plan.id_begin:
            self.has_new_data = True
            if seg_id in self.switch_plan.startup_ids():
                self.new_startup_received += 1
            self._check_prepared(now)
        else:
            if now >= 0.0:
                self.old_received_since_switch += 1

    def record_failed_request(self) -> None:
        """Count a request the supplier could not serve this period."""
        self.requests_failed += 1

    def _check_prepared(self, now: float) -> None:
        """Record the prepare time once all ``Qs`` startup segments are held."""
        if self.prepared_new_time is not None or self.switch_plan is None:
            return
        if self.buffer.contains_all(self.switch_plan.startup_ids()):
            self.prepared_new_time = now

    def advance_playback(self, now: float, duration: float) -> None:
        """Advance playback by ``duration`` seconds and update switch state."""
        assert self.playback_old is not None
        if not self.playback_old.finished:
            self.playback_old.maybe_start(self.buffer, now)
            self.playback_old.advance(self.buffer, now, duration)
        if self.playback_old.finished and self.finish_old_time is None:
            self.finish_old_time = self.playback_old.finish_time

        if (
            self.playback_old.finished
            and self.playback_new is not None
            and not self.playback_new.finished
        ):
            was_playing = self.playback_new.started
            self.playback_new.maybe_start(self.buffer, now + duration)
            if self.playback_new.started and self.switch_complete_time is None:
                self.switch_complete_time = self.playback_new.start_time
            if was_playing:
                # Only consume segments if playback was already running at
                # the start of the period; a stream that starts at the end of
                # this period begins consuming next period.
                self.playback_new.advance(self.buffer, now, duration)
                self._refresh_wanted_new()

    # ------------------------------------------------------------------ #
    # serving others
    # ------------------------------------------------------------------ #
    def switch_announcement(self) -> Optional[Tuple[int, int]]:
        """Announce the switch only when this peer actually holds new-source data."""
        if self.switch_plan is None or not self.has_new_data:
            return None
        return (self.switch_plan.id_end, self.switch_plan.id_begin)

    def snapshot_for(
        self,
        windows: Sequence[Tuple[int, int]],
        *,
        send_rate: float,
    ) -> BufferMapSnapshot:
        """Produce the buffer-map snapshot a neighbour pulls from this peer."""
        return snapshot_buffer(
            owner_id=self.node_id,
            buffer=self.buffer,
            windows=windows,
            send_rate=send_rate,
            switch_info=self.switch_announcement(),
        )

    # ------------------------------------------------------------------ #
    @property
    def switch_done(self) -> bool:
        """Whether this peer has completed its source switch."""
        return self.switch_complete_time is not None

    @property
    def total_stalls(self) -> int:
        """Stall periods across both streams (continuity accounting)."""
        stalls = self.playback_old.stall_periods if self.playback_old is not None else 0
        if self.playback_new is not None:
            stalls += self.playback_new.stall_periods
        return stalls

    def undelivered_old(self) -> int:
        """``Q1``: old-stream segments still undelivered (metric helper)."""
        if self.q0 is None:
            return len(self.wanted_old)
        return max(0, self.q0 - self.old_received_since_switch)

    def delivered_new_startup(self) -> int:
        """``Qs - Q2``: delivered segments of the new stream's startup window."""
        return min(self.new_startup_received, self.startup_quota_new)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeerNode(id={self.node_id}, buffered={len(self.buffer)}, "
            f"switch_done={self.switch_done})"
        )
