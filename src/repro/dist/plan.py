"""Deterministic shard planning for universe runs.

A universe run of ``R`` repetitions over an ``N``-channel lineup is
``R x N`` independent *work units* -- channel meshes that never read each
other's state (see :mod:`repro.channels.universe`).  A :class:`ShardPlan`
partitions those units into a fixed number of shards **deterministically**:
the plan is a pure function of ``(spec, rep_seeds, n_shards)``, so the
parent process, every worker, and a resumed run after an interruption all
derive the identical partition locally.  That determinism is what makes
the checkpoint journal (:mod:`repro.dist.journal`) sound: a journaled
shard id names the same unit set in every process that ever computes it.

Units are ordered ``(repetition, channel)`` and dealt round-robin across
shards.  Zipf lineups are heavily skewed -- channel 0 can hold an order of
magnitude more viewers than the tail -- and round-robin spreads the big
channels of every repetition across different shards, keeping shard wall
times comparable without needing cost estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.channels.universe import UniverseSpec

__all__ = ["ShardUnit", "Shard", "ShardPlan"]


@dataclass(frozen=True)
class ShardUnit:
    """One independent work unit: a single channel of a single repetition."""

    rep_seed: int
    channel: int

    def to_dict(self) -> Dict[str, int]:
        """JSON-friendly form (journal records)."""
        return {"rep_seed": self.rep_seed, "channel": self.channel}

    @staticmethod
    def from_dict(payload: Mapping[str, int]) -> "ShardUnit":
        """Rebuild from :meth:`to_dict` output."""
        return ShardUnit(rep_seed=int(payload["rep_seed"]), channel=int(payload["channel"]))


@dataclass(frozen=True)
class Shard:
    """One shard: an id plus its ordered work units."""

    shard_id: int
    units: Tuple[ShardUnit, ...]

    def __len__(self) -> int:
        return len(self.units)

    @property
    def rep_seeds(self) -> Tuple[int, ...]:
        """The distinct repetition seeds this shard touches, in unit order."""
        seen: List[int] = []
        for unit in self.units:
            if unit.rep_seed not in seen:
                seen.append(unit.rep_seed)
        return tuple(seen)


@dataclass(frozen=True)
class ShardPlan:
    """The deterministic partition of one universe run into shards.

    Built over the run's **complete** repetition list (never the subset
    still pending against a store), so the shard ids -- and therefore the
    journal -- stay stable across resumes regardless of how many
    repetitions already persisted.
    """

    spec: UniverseSpec
    rep_seeds: Tuple[int, ...]
    n_shards: int
    shards: Tuple[Shard, ...]

    @staticmethod
    def build(
        spec: UniverseSpec, rep_seeds: Sequence[int], n_shards: int
    ) -> "ShardPlan":
        """Partition ``len(rep_seeds) x spec.n_channels`` units into shards.

        ``n_shards`` is clamped to the unit count (a shard is never empty).
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not rep_seeds:
            raise ValueError("rep_seeds must not be empty")
        units = [
            ShardUnit(rep_seed=int(rep_seed), channel=channel)
            for rep_seed in rep_seeds
            for channel in range(spec.n_channels)
        ]
        n_shards = min(int(n_shards), len(units))
        shards = tuple(
            Shard(shard_id=index, units=tuple(units[index::n_shards]))
            for index in range(n_shards)
        )
        return ShardPlan(
            spec=spec,
            rep_seeds=tuple(int(seed) for seed in rep_seeds),
            n_shards=n_shards,
            shards=shards,
        )

    # ------------------------------------------------------------------ #
    @property
    def n_units(self) -> int:
        """Total work units across all shards."""
        return len(self.rep_seeds) * self.spec.n_channels

    def units_of_rep(self, rep_seed: int) -> int:
        """How many units one repetition contributes (= the lineup size)."""
        if rep_seed not in self.rep_seeds:
            raise KeyError(f"unknown rep_seed {rep_seed}")
        return self.spec.n_channels

    def shard_of(self, unit: ShardUnit) -> int:
        """The shard id holding ``unit``."""
        try:
            rep_index = self.rep_seeds.index(unit.rep_seed)
        except ValueError:
            raise KeyError(f"unknown rep_seed {unit.rep_seed}") from None
        if not (0 <= unit.channel < self.spec.n_channels):
            raise KeyError(f"unknown channel {unit.channel}")
        return (rep_index * self.spec.n_channels + unit.channel) % self.n_shards

    def fingerprint(self, *, version: Optional[str] = None) -> str:
        """Stable identity of this plan (the journal's run key).

        Covers the full spec, every repetition seed, the shard count, the
        store schema and the code version -- any change that could alter
        what a shard id means retires the journal instead of corrupting a
        resume.
        """
        from repro.experiments.store import SCHEMA_VERSION, code_version, stable_hash

        return "shardplan-" + stable_hash(
            {
                "kind": "shardplan",
                "schema": SCHEMA_VERSION,
                "code_version": version if version is not None else code_version(),
                "spec": self.spec.to_dict(),
                "rep_seeds": list(self.rep_seeds),
                "n_shards": self.n_shards,
            }
        )
