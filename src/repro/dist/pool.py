"""A long-lived, crash-tolerant process pool for shard execution.

Unlike the one-task-per-channel ``ProcessPoolExecutor`` fan-out of
:class:`~repro.channels.runner.UniverseRunner`, a :class:`WorkerPool`
keeps ``W`` worker processes alive for the whole run and feeds them shards
from a parent-side queue: workers amortise interpreter/numpy start-up over
many shards, and the parent always knows exactly which shard each worker
is executing (tasks are assigned to a specific worker, never pulled from a
shared queue), which is what makes crash accounting exact.

Reliability model
-----------------
* **Per-shard heartbeat** -- workers post a heartbeat message before every
  work unit; :meth:`WorkerPool.last_heartbeat` exposes the latest label
  (e.g. ``rep12/ch3``) and timestamp per shard, and the failure summary
  names it when a shard dies mid-unit.
* **Bounded retry** -- a shard whose worker raised or whose process died
  is re-queued up to ``max_retries`` times (on a respawned worker when the
  process is gone).  Duplicate results from a retried shard are dropped.
* **Failure summary** -- when retries are exhausted the pool raises
  :class:`ShardExecutionError` carrying one :class:`ShardFailure` per
  attempt, each naming the shard, the last heartbeat (the offending
  channel) and the error.

Fault injection
---------------
``fault_hook`` is called *inside the worker process* as
``fault_hook(worker_id, shard_id)`` immediately before a shard executes.
The test suite injects crashes (``os._exit``) and exceptions through it;
production runs leave it ``None``.  The hook must be picklable
(module-level function).
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs.telemetry import get_telemetry

__all__ = ["ShardFailure", "ShardExecutionError", "WorkerPool"]

_LOG = logging.getLogger("repro.dist.pool")

#: Seconds the parent blocks on the result queue before checking liveness.
_POLL_INTERVAL: float = 0.2

#: A task function: ``task_fn(payload, heartbeat)`` where ``heartbeat`` is
#: a ``Callable[[str], None]`` the task should invoke per work unit.
TaskFn = Callable[[Any, Callable[[str], None]], Any]


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt (part of the failure summary)."""

    shard_id: int
    attempt: int
    worker_id: int
    error: str
    last_heartbeat: str
    heartbeat_age_s: Optional[float] = None

    def describe(self) -> str:
        """One-line human summary."""
        where = f" at {self.last_heartbeat}" if self.last_heartbeat else ""
        if self.heartbeat_age_s is not None:
            where += f" (last heartbeat {self.heartbeat_age_s:.1f}s ago)"
        return (
            f"shard {self.shard_id} attempt {self.attempt} on worker "
            f"{self.worker_id}{where}: {self.error}"
        )


class ShardExecutionError(RuntimeError):
    """A shard exhausted its retries; carries the full failure summary."""

    def __init__(self, shard_id: int, failures: List[ShardFailure]) -> None:
        self.shard_id = shard_id
        self.failures = list(failures)
        lines = "\n  ".join(failure.describe() for failure in failures)
        super().__init__(
            f"shard {shard_id} failed after {len(failures)} attempt(s):\n  {lines}"
        )


def _worker_main(
    worker_id: int,
    task_fn: TaskFn,
    fault_hook: Optional[Callable[[int, int], None]],
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
) -> None:
    """Worker loop: execute assigned shards until the ``None`` sentinel."""
    while True:
        task = task_queue.get()
        if task is None:
            return
        shard_id, payload = task

        def heartbeat(label: str, _shard_id: int = shard_id) -> None:
            result_queue.put(("heartbeat", worker_id, _shard_id, str(label), time.time()))

        heartbeat("start")
        try:
            if fault_hook is not None:
                fault_hook(worker_id, shard_id)
            result = task_fn(payload, heartbeat)
        except BaseException:  # noqa: BLE001 - forwarded to the parent verbatim
            result_queue.put(("error", worker_id, shard_id, traceback.format_exc()))
            continue
        result_queue.put(("done", worker_id, shard_id, result))


class _Worker:
    """Parent-side handle of one worker process (its own task queue)."""

    def __init__(
        self,
        context: Any,
        worker_id: int,
        task_fn: TaskFn,
        fault_hook: Optional[Callable[[int, int], None]],
        result_queue: "multiprocessing.Queue",
    ) -> None:
        self.worker_id = worker_id
        self.task_queue: "multiprocessing.Queue" = context.Queue()
        self.process = context.Process(
            target=_worker_main,
            args=(worker_id, task_fn, fault_hook, self.task_queue, result_queue),
            daemon=True,
        )
        self.process.start()
        self.assigned: Optional[int] = None  # shard id in flight, if any

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        """Best-effort graceful stop, then terminate."""
        try:
            self.task_queue.put_nowait(None)
        except Exception:
            pass

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


class WorkerPool:
    """Execute shards on long-lived worker processes with bounded retry.

    Parameters
    ----------
    workers:
        Worker process count (capped at the task count per run).
    max_retries:
        How many times a failed shard is retried before the pool gives up
        (``0`` fails fast on the first error).
    fault_hook:
        Optional picklable ``(worker_id, shard_id)`` callable executed in
        the worker before each shard -- the fault-injection seam used by
        the crash/retry tests.
    """

    def __init__(
        self,
        workers: int,
        *,
        max_retries: int = 1,
        fault_hook: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = int(workers)
        self.max_retries = int(max_retries)
        self.fault_hook = fault_hook
        self._heartbeats: Dict[int, Tuple[str, float]] = {}
        self._worker_heartbeats: Dict[int, Tuple[str, float]] = {}
        self.failures: List[ShardFailure] = []

    # ------------------------------------------------------------------ #
    def last_heartbeat(self, shard_id: int) -> Optional[Tuple[str, float]]:
        """The latest ``(label, unix_time)`` heartbeat of one shard."""
        return self._heartbeats.get(shard_id)

    def last_worker_heartbeat(self, worker_id: int) -> Optional[Tuple[str, float]]:
        """The latest ``(label, unix_time)`` heartbeat posted by one worker."""
        return self._worker_heartbeats.get(worker_id)

    def worker_heartbeats(self) -> Dict[int, Tuple[str, float]]:
        """A snapshot of every worker's latest ``(label, unix_time)`` beat.

        The progress reporter polls this to render per-worker heartbeat
        ages; a copy is returned so callers never race the drain loop.
        """
        return dict(self._worker_heartbeats)

    # ------------------------------------------------------------------ #
    def run(
        self, task_fn: TaskFn, tasks: Mapping[int, Any]
    ) -> Iterator[Tuple[int, Any]]:
        """Execute every task, yielding ``(shard_id, result)`` on completion.

        Results arrive in completion order (callers needing determinism
        re-order by shard id).  Raises :class:`ShardExecutionError` when a
        shard exhausts its retries; always tears the workers down.
        """
        if not tasks:
            return
        obs = get_telemetry()
        context = multiprocessing.get_context()
        result_queue: "multiprocessing.Queue" = context.Queue()
        pending: List[Tuple[int, Any]] = [(int(k), v) for k, v in tasks.items()]
        attempts: Dict[int, int] = {shard_id: 0 for shard_id, _ in pending}
        shard_failures: Dict[int, List[ShardFailure]] = {}
        done: set = set()
        payloads: Dict[int, Any] = dict(pending)
        assigned_at: Dict[int, float] = {}
        fleet: List[_Worker] = []
        next_worker_id = 0

        def spawn(*, respawn: bool = False) -> _Worker:
            nonlocal next_worker_id
            worker = _Worker(
                context, next_worker_id, task_fn, self.fault_hook, result_queue
            )
            next_worker_id += 1
            fleet.append(worker)
            if obs.enabled:
                name = "pool.worker_respawn" if respawn else "pool.worker_spawn"
                obs.event(name, tid=worker.worker_id, worker=worker.worker_id)
                obs.counter(name).inc()
            if respawn:
                _LOG.warning("respawned dead worker as worker %d", worker.worker_id)
            else:
                _LOG.debug("spawned worker %d", worker.worker_id)
            return worker

        def record_failure(worker: _Worker, shard_id: int, error: str) -> ShardFailure:
            label, _ = self._heartbeats.get(shard_id, ("", 0.0))
            beat = self._worker_heartbeats.get(worker.worker_id)
            age = round(time.time() - beat[1], 3) if beat is not None else None
            attempts[shard_id] += 1
            failure = ShardFailure(
                shard_id=shard_id,
                attempt=attempts[shard_id],
                worker_id=worker.worker_id,
                error=error,
                last_heartbeat=label,
                heartbeat_age_s=age,
            )
            shard_failures.setdefault(shard_id, []).append(failure)
            self.failures.append(failure)
            _LOG.warning("shard failure: %s", failure.describe())
            if obs.enabled:
                obs.event(
                    "pool.shard_failure",
                    tid=worker.worker_id,
                    shard=shard_id,
                    attempt=attempts[shard_id],
                    heartbeat=label,
                )
                obs.counter("pool.shard_failure").inc()
            return failure

        def retry_or_raise(shard_id: int) -> None:
            if attempts[shard_id] > self.max_retries:
                _LOG.error(
                    "shard %d exhausted %d retrie(s); giving up",
                    shard_id,
                    self.max_retries,
                )
                raise ShardExecutionError(shard_id, shard_failures[shard_id])
            _LOG.warning(
                "retrying shard %d (attempt %d of %d)",
                shard_id,
                attempts[shard_id] + 1,
                self.max_retries + 1,
            )
            if obs.enabled:
                obs.event("pool.shard_retry", shard=shard_id, attempt=attempts[shard_id] + 1)
                obs.counter("pool.shard_retry").inc()
            pending.append((shard_id, payloads[shard_id]))

        try:
            for _ in range(min(self.workers, len(pending))):
                spawn()
            while len(done) < len(tasks):
                # Hand pending shards to idle live workers.
                for worker in fleet:
                    if not pending:
                        break
                    if worker.assigned is None and worker.alive():
                        shard_id, payload = pending.pop(0)
                        worker.assigned = shard_id
                        assigned_at[shard_id] = time.perf_counter()
                        worker.task_queue.put((shard_id, payload))
                try:
                    message = result_queue.get(timeout=_POLL_INTERVAL)
                except queue_module.Empty:
                    # No progress: check for crashed workers.
                    for index, worker in enumerate(list(fleet)):
                        if worker.alive():
                            continue
                        fleet.remove(worker)
                        _LOG.warning(
                            "worker %d died (assigned shard: %s)",
                            worker.worker_id,
                            worker.assigned,
                        )
                        shard_id = worker.assigned
                        if shard_id is not None and shard_id not in done:
                            record_failure(
                                worker, shard_id, "worker process died"
                            )
                            retry_or_raise(shard_id)
                        if pending or any(w.assigned is not None for w in fleet):
                            spawn(respawn=True)
                    continue
                kind, worker_id, shard_id = message[0], message[1], message[2]
                worker = next(
                    (w for w in fleet if w.worker_id == worker_id), None
                )
                if kind == "heartbeat":
                    self._heartbeats[shard_id] = (message[3], message[4])
                    self._worker_heartbeats[worker_id] = (message[3], message[4])
                    if obs.enabled:
                        obs.counter("pool.heartbeats").inc()
                    continue
                if worker is not None and worker.assigned == shard_id:
                    worker.assigned = None
                if kind == "done":
                    if shard_id in done:
                        continue  # duplicate from a retried shard
                    done.add(shard_id)
                    if obs.enabled:
                        begin = assigned_at.get(shard_id)
                        if begin is not None:
                            label, _ = self._heartbeats.get(shard_id, ("", 0.0))
                            obs.complete_span(
                                "shard.execute",
                                begin,
                                time.perf_counter(),
                                tid=worker_id,
                                shard=shard_id,
                                label=label,
                            )
                        obs.counter("pool.shards_done").inc()
                    yield shard_id, message[3]
                elif kind == "error":
                    if shard_id in done:
                        continue
                    record_failure(
                        worker if worker is not None else _DeadWorkerStub(worker_id),
                        shard_id,
                        message[3],
                    )
                    retry_or_raise(shard_id)
        finally:
            for worker in fleet:
                worker.stop()
            deadline = time.time() + 2.0
            for worker in fleet:
                worker.process.join(timeout=max(0.0, deadline - time.time()))
            for worker in fleet:
                worker.kill()
            result_queue.close()


class _DeadWorkerStub:
    """Minimal stand-in when a failure's worker handle is already gone."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
