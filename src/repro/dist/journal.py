"""Write-ahead checkpoint journal for sharded universe runs.

The sharded runner (:mod:`repro.dist.runner`) persists each finished
shard's results into a journal *before* folding them into the run, so an
interrupted ``repro universe run`` resumes by replaying journaled shards
and re-simulating only the rest -- bit-identically to an uninterrupted
run, because shard payloads round-trip exactly through JSON (floats
survive via repr) and the shard partition itself is deterministic
(:mod:`repro.dist.plan`).

Layout, under ``<store results dir>/journal/``::

    <run_key>/
        manifest.json     # the plan fingerprint + context, written first
        shard-<id>.json   # one record per completed shard, written atomically

``run_key`` is :meth:`repro.dist.plan.ShardPlan.fingerprint` -- any change
to the spec, the seeds, the shard count, the schema or the code version
produces a different key, so a stale journal is simply never matched (and
:meth:`ShardJournal.open` wipes a directory whose manifest disagrees,
which can only happen on a fingerprint collision or manual tampering).
Every write is atomic (temp file + ``os.replace``): a crash mid-write
leaves either the previous state or the new one, never a torn record.
The journal is discarded once the run completes.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

__all__ = ["ShardJournal"]

_MANIFEST = "manifest.json"


def _write_atomic(path: Path, payload: Mapping[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)


class ShardJournal:
    """Per-run shard checkpoint directory (see module docstring)."""

    def __init__(self, directory: Path, manifest: Dict[str, Any]) -> None:
        self.directory = Path(directory)
        self.manifest = manifest

    # ------------------------------------------------------------------ #
    @staticmethod
    def open(
        journal_root: Path, run_key: str, manifest: Mapping[str, Any]
    ) -> "ShardJournal":
        """Open (or create) the journal for one run.

        A pre-existing directory whose manifest does not match ``manifest``
        exactly is wiped -- its records were written by a different plan
        and must not seed this run.
        """
        directory = Path(journal_root) / run_key
        expected = dict(manifest)
        expected["run_key"] = run_key
        manifest_path = directory / _MANIFEST
        if directory.exists():
            stale = True
            if manifest_path.exists():
                try:
                    stale = json.loads(manifest_path.read_text(encoding="utf-8")) != expected
                except (json.JSONDecodeError, OSError):
                    stale = True
            if stale:
                shutil.rmtree(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if not manifest_path.exists():
            _write_atomic(manifest_path, expected)
        return ShardJournal(directory, expected)

    # ------------------------------------------------------------------ #
    def _shard_path(self, shard_id: int) -> Path:
        return self.directory / f"shard-{int(shard_id):05d}.json"

    def record(self, shard_id: int, payload: Mapping[str, Any]) -> None:
        """Checkpoint one finished shard (atomic; overwrites are idempotent)."""
        _write_atomic(self._shard_path(shard_id), {"shard_id": int(shard_id), **payload})

    def completed(self) -> Dict[int, Dict[str, Any]]:
        """All journaled shard payloads, keyed by shard id.

        Torn or unparsable records (crash mid-``os.replace`` is impossible,
        but defence-in-depth costs nothing) are skipped: the runner simply
        re-simulates those shards.
        """
        out: Dict[int, Dict[str, Any]] = {}
        for path in sorted(self.directory.glob("shard-*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, OSError):
                continue
            out[int(payload["shard_id"])] = payload
        return out

    def discard(self) -> None:
        """Remove the journal (the run completed; records are now redundant)."""
        if self.directory.exists():
            shutil.rmtree(self.directory, ignore_errors=True)
        # Drop the shared journal root too once the last run's journal goes.
        parent = self.directory.parent
        try:
            if parent.exists() and not any(parent.iterdir()):
                parent.rmdir()
        except OSError:
            pass

    @staticmethod
    def exists(journal_root: Path, run_key: str) -> bool:
        """Whether a journal directory for ``run_key`` is present."""
        return (Path(journal_root) / run_key / _MANIFEST).exists()
