"""Live progress for sharded runs: a throttled stderr status line.

A long sharded run is otherwise silent until it returns; the pieces
needed for a live view already exist -- the executor knows the shard
frontier (planned / journal-replayed / freshly computed) and the
:class:`~repro.dist.pool.WorkerPool` records a per-worker heartbeat for
every work unit (``rep<seed>/ch<channel>``).  :class:`ProgressReporter`
aggregates them into one periodically re-printed line::

    [shards] 5/12 done (3 replayed) | ETA ~14s | w0 rep4/ch2 (0.3s) w1 rep5/ch0 (1.1s)

Design notes
------------
* **Throttled, newline-terminated.**  Lines go to ``stream`` (stderr by
  default) at most once per ``interval_s`` seconds plus one final line,
  so runs with thousands of tiny shards do not flood terminals or logs;
  plain newlines (no ``\\r`` tricks) keep redirected output readable.
* **Ticker thread.**  Completions can be minutes apart, so emission is
  not tied to them: a daemon thread re-prints every ``interval_s`` using
  the latest pool heartbeats, which is what makes a wedged worker
  visible *before* the run fails.  ``interval_s=0`` disables both the
  thread and the throttle (every event emits synchronously) -- the mode
  the tests drive.
* **ETA from observed completions.**  The mean wall-clock gap between
  the fresh-shard completions seen so far already bakes in worker
  parallelism and journal replay, so the estimate is simply
  ``remaining * mean_gap`` -- no model of per-shard cost.
* **Injectable clocks.**  ``clock`` (monotonic) drives throttling and
  ETA; ``wall_clock`` (unix) is only compared against the pool's
  heartbeat timestamps.  Tests pin both.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO, Callable, Optional

from repro.dist.pool import WorkerPool

__all__ = ["ProgressReporter", "format_eta"]

#: Default seconds between status lines.
DEFAULT_INTERVAL_S: float = 2.0

#: At most this many per-worker heartbeat entries per line.
_MAX_WORKERS_SHOWN: int = 8


def format_eta(seconds: float) -> str:
    """Compact human form of an ETA: ``~42s``, ``~3m10s``, ``~2h05m``."""
    seconds = max(0.0, float(seconds))
    if seconds < 60.0:
        return f"~{seconds:.0f}s"
    minutes, rest = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"~{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"~{hours}h{minutes:02d}m"


class ProgressReporter:
    """Render a sharded run's live status as periodic stderr lines.

    The :class:`~repro.dist.runner.ShardedExecutor` drives the life
    cycle: :meth:`begin` once the shard frontier is known,
    :meth:`shard_done` per freshly computed shard, :meth:`finish` on the
    way out (idempotent, also runs on failure).  All methods are
    thread-safe; the internal ticker thread shares them.
    """

    def __init__(
        self,
        *,
        stream: Optional[IO[str]] = None,
        interval_s: float = DEFAULT_INTERVAL_S,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s < 0:
            raise ValueError(f"interval_s must be >= 0, got {interval_s}")
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = float(interval_s)
        self._clock = clock
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._pool: Optional[WorkerPool] = None
        self._total = 0
        self._replayed = 0
        self._fresh_done = 0
        self._started_at = 0.0
        self._last_emit: Optional[float] = None
        self._stop: Optional[threading.Event] = None
        self._ticker: Optional[threading.Thread] = None
        self._finished = False
        #: Lines emitted so far (what the tests assert on).
        self.lines_emitted = 0

    # ------------------------------------------------------------------ #
    def begin(self, *, total: int, replayed: int, pool: Optional[WorkerPool]) -> None:
        """Start reporting: ``total`` shards this run, ``replayed`` of
        them already satisfied from the checkpoint journal."""
        with self._lock:
            self._total = int(total)
            self._replayed = int(replayed)
            self._fresh_done = 0
            self._pool = pool
            self._started_at = self._clock()
            self._finished = False
            self._emit_locked()
        if self.interval_s > 0:
            self._stop = threading.Event()
            self._ticker = threading.Thread(
                target=self._tick, name="repro-progress", daemon=True
            )
            self._ticker.start()

    def shard_done(self, shard_id: int) -> None:
        """Record one freshly computed shard; emit if the throttle allows."""
        with self._lock:
            self._fresh_done += 1
            now = self._clock()
            if (
                self.interval_s == 0
                or self._last_emit is None
                or now - self._last_emit >= self.interval_s
            ):
                self._emit_locked()

    def finish(self) -> None:
        """Stop the ticker and print one final line.  Idempotent."""
        ticker, stop = self._ticker, self._stop
        self._ticker = None
        self._stop = None
        if stop is not None:
            stop.set()
        if ticker is not None:
            ticker.join(timeout=self.interval_s + 1.0)
        with self._lock:
            if self._finished:
                return
            self._finished = True
            self._emit_locked()

    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        stop = self._stop
        while stop is not None and not stop.wait(self.interval_s):
            with self._lock:
                if self._finished:
                    return
                self._emit_locked()

    def _emit_locked(self) -> None:
        self._last_emit = self._clock()
        print(self.status_line(), file=self.stream, flush=True)
        self.lines_emitted += 1

    # ------------------------------------------------------------------ #
    def status_line(self) -> str:
        """The current one-line status (pure read; callable any time)."""
        done = self._replayed + self._fresh_done
        parts = [f"[shards] {done}/{self._total} done"]
        if self._replayed:
            parts[0] += f" ({self._replayed} replayed)"
        eta = self._eta()
        parts.append("all shards finished" if eta == "done" else f"ETA {eta}")
        workers = self._worker_ages()
        if workers:
            parts.append(workers)
        return " | ".join(parts)

    def _eta(self) -> str:
        remaining = self._total - self._replayed - self._fresh_done
        if remaining <= 0:
            return "done"
        if self._fresh_done == 0:
            return "--"
        mean_gap = (self._clock() - self._started_at) / self._fresh_done
        return format_eta(remaining * mean_gap)

    def _worker_ages(self) -> str:
        if self._pool is None:
            return ""
        beats = self._pool.worker_heartbeats()
        if not beats:
            return ""
        now = self._wall_clock()
        entries = [
            f"w{worker_id} {label} ({max(0.0, now - stamp):.1f}s)"
            for worker_id, (label, stamp) in sorted(beats.items())[:_MAX_WORKERS_SHOWN]
        ]
        if len(beats) > _MAX_WORKERS_SHOWN:
            entries.append(f"+{len(beats) - _MAX_WORKERS_SHOWN} more")
        return " ".join(entries)
