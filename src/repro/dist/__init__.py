"""The sharded execution runtime for universes and sweeps.

``repro.dist`` scales the multi-channel universe past what a single
process -- or a single uninterrupted run -- can hold:

* :mod:`repro.dist.plan` -- :class:`~repro.dist.plan.ShardPlan`, the
  deterministic partition of a run's ``repetitions x channels`` work units
  into shards;
* :mod:`repro.dist.pool` -- :class:`~repro.dist.pool.WorkerPool`, a
  long-lived process pool that reuses workers across shards, tracks
  per-shard heartbeats, retries crashed shards a bounded number of times
  and names the offending shard/channel when it gives up;
* :mod:`repro.dist.journal` -- the write-ahead checkpoint journal that
  lets an interrupted ``repro universe run`` resume without recomputing
  finished shards, bit-identically to an uninterrupted run;
* :mod:`repro.dist.progress` -- :class:`~repro.dist.progress.
  ProgressReporter`, the throttled live status line (shards done/total,
  ETA, per-worker heartbeat age) behind ``repro universe run
  --progress``;
* :mod:`repro.dist.runner` -- the shard executor gluing the pieces
  together underneath :class:`~repro.channels.runner.UniverseRunner`
  (``repro universe run --shards N --workers W``).

Results are **bit-identical** (at store-document level) to the serial
path for any shard/worker combination, under both compute engines -- the
property the dist test suite and the CI ``dist`` smoke job pin down.
"""

from repro.dist.journal import ShardJournal
from repro.dist.plan import Shard, ShardPlan, ShardUnit
from repro.dist.pool import ShardExecutionError, ShardFailure, WorkerPool
from repro.dist.progress import ProgressReporter
from repro.dist.runner import ShardAggregates, ShardedExecutor, ShardResult

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardUnit",
    "ShardJournal",
    "ShardExecutionError",
    "ShardFailure",
    "WorkerPool",
    "ProgressReporter",
    "ShardAggregates",
    "ShardedExecutor",
    "ShardResult",
]
