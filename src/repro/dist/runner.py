"""The sharded executor: plan + worker pool + journal + streaming sketches.

:class:`ShardedExecutor` slots underneath
:class:`~repro.channels.runner.UniverseRunner` as an alternative to the
per-channel ``ProcessPoolExecutor`` fan-out.  The differences that matter
at scale:

* **O(shard) memory.**  Workers never ship per-peer samples to the
  parent; each shard reduces its channels' zap-time distributions into a
  :class:`~repro.metrics.sketch.QuantileSketch` and a
  :class:`~repro.metrics.sketch.StreamAccumulator` in-process, and the
  parent merges the per-shard aggregates in shard-id order (deterministic
  regardless of completion order).
* **Checkpointed progress.**  Every finished shard is journaled
  (:class:`~repro.dist.journal.ShardJournal`) before it is folded into
  the run, so an interrupted run resumes by replaying journaled shards
  and re-simulating only the rest -- bit-identically, because shard
  payloads are plain JSON with exact float round trips.
* **Crash tolerance.**  Shards execute on a long-lived
  :class:`~repro.dist.pool.WorkerPool` with per-shard heartbeats and
  bounded retry.

Workers re-derive each repetition's :class:`~repro.channels.universe.
UniversePlan` locally from ``(spec, rep_seed)`` -- planning is a pure
function -- and memoise it for the lifetime of the worker process, so
shard payloads stay tiny and reusing workers across shards amortises the
planning cost.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.channels.aggregates import RepAggregator, unit_aggregate
from repro.channels.universe import (
    ChannelOutcome,
    PAIRED_ALGORITHMS,
    UniverseRepResult,
    UniverseSpec,
    plan_universe,
    run_planned_channel_detailed,
)
from repro.dist.journal import ShardJournal
from repro.dist.plan import ShardPlan, ShardUnit
from repro.dist.pool import WorkerPool
from repro.dist.progress import ProgressReporter
from repro.obs.telemetry import get_telemetry
from repro.metrics.sketch import (
    DEFAULT_SKETCH_CAPACITY,
    QuantileSketch,
    StreamAccumulator,
)

__all__ = ["ShardResult", "ShardAggregates", "ShardedExecutor"]


@dataclass(frozen=True)
class ShardAggregates:
    """The streaming aggregates of one algorithm (``normal`` or ``fast``)."""

    sketch: QuantileSketch
    stats: StreamAccumulator


@dataclass(frozen=True)
class ShardResult:
    """One executed shard: per-unit channel outcomes plus its aggregates.

    The payload form (:meth:`to_payload`/:meth:`from_payload`) is plain
    JSON -- it is both what workers return over the result queue and what
    the journal checkpoints, so a replayed shard is byte-for-byte the
    shard that ran.
    """

    shard_id: int
    #: ``(rep_seed, channel) -> (normal outcome dict, fast outcome dict)``
    outcomes: Mapping[Tuple[int, int], Tuple[Dict[str, Any], Dict[str, Any]]]
    #: Per-algorithm zap-time aggregates over this shard's units.
    sketches: Mapping[str, QuantileSketch]
    stats: Mapping[str, StreamAccumulator]
    #: ``(rep_seed, channel) -> {algorithm: unit aggregate dict}`` -- the
    #: per-channel building blocks of the persisted repetition aggregates
    #: (:mod:`repro.channels.aggregates`), built worker-side at the
    #: default sketch capacity.  May be empty for journal records written
    #: before aggregates were persisted; such records are unusable and
    #: their shards re-simulate.
    unit_aggregates: Mapping[Tuple[int, int], Dict[str, Any]] = field(
        default_factory=dict
    )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-friendly form (journal record / queue message)."""
        unit_aggregates = self.unit_aggregates or {}
        units = []
        for (rep_seed, channel), (normal, fast) in sorted(self.outcomes.items()):
            unit: Dict[str, Any] = {
                "rep_seed": rep_seed,
                "channel": channel,
                "normal": normal,
                "fast": fast,
            }
            aggregates = unit_aggregates.get((rep_seed, channel))
            if aggregates is not None:
                unit["aggregates"] = aggregates
            units.append(unit)
        return {
            "units": units,
            "sketches": {name: sk.to_dict() for name, sk in self.sketches.items()},
            "stats": {name: acc.to_dict() for name, acc in self.stats.items()},
        }

    @staticmethod
    def from_payload(shard_id: int, payload: Mapping[str, Any]) -> "ShardResult":
        """Rebuild from :meth:`to_payload` output (exact round trip)."""
        outcomes = {}
        unit_aggregates = {}
        for unit in payload["units"]:
            unit_key = (int(unit["rep_seed"]), int(unit["channel"]))
            outcomes[unit_key] = (dict(unit["normal"]), dict(unit["fast"]))
            if "aggregates" in unit:
                unit_aggregates[unit_key] = dict(unit["aggregates"])
        return ShardResult(
            shard_id=int(shard_id),
            outcomes=outcomes,
            sketches={
                name: QuantileSketch.from_dict(sk)
                for name, sk in payload["sketches"].items()
            },
            stats={
                name: StreamAccumulator.from_dict(acc)
                for name, acc in payload["stats"].items()
            },
            unit_aggregates=unit_aggregates,
        )


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #
#: Per-worker plan memo: planning is pure in ``(spec, rep_seed)`` and
#: workers live across shards, so repeated reps plan once per process.
_PLAN_MEMO: Dict[Tuple[str, int], Any] = {}
_PLAN_MEMO_LIMIT = 128


def _planned(spec: UniverseSpec, rep_seed: int) -> Any:
    memo_key = (json.dumps(spec.to_dict(), sort_keys=True), int(rep_seed))
    plan = _PLAN_MEMO.get(memo_key)
    if plan is None:
        if len(_PLAN_MEMO) >= _PLAN_MEMO_LIMIT:
            _PLAN_MEMO.clear()
        plan = plan_universe(spec, rep_seed)
        _PLAN_MEMO[memo_key] = plan
    return plan


def _run_shard_task(
    payload: Mapping[str, Any], heartbeat: Callable[[str], None]
) -> Dict[str, Any]:
    """Worker entry point: run one shard's units, reduce, return JSON.

    Module-level so it pickles; heartbeats once per unit with a
    ``rep<seed>/ch<channel>`` label (what the failure summary surfaces).
    """
    spec = UniverseSpec.from_dict(payload["spec"])
    compute_engine = payload["compute_engine"]
    capacity = int(payload["sketch_capacity"])
    sketches = {name: QuantileSketch(capacity=capacity) for name in PAIRED_ALGORITHMS}
    stats = {name: StreamAccumulator() for name in PAIRED_ALGORITHMS}
    units: List[Dict[str, Any]] = []
    for unit in payload["units"]:
        rep_seed = int(unit["rep_seed"])
        channel = int(unit["channel"])
        heartbeat(f"rep{rep_seed}/ch{channel}")
        plan = _planned(spec, rep_seed)
        (normal, fast), (normal_values, fast_values) = run_planned_channel_detailed(
            plan, channel, compute_engine=compute_engine
        )
        for name, values in zip(PAIRED_ALGORITHMS, (normal_values, fast_values)):
            sketches[name].extend(values)
            for value in values:
                stats[name].add(value)
        units.append(
            {
                "rep_seed": rep_seed,
                "channel": channel,
                "normal": asdict(normal),
                "fast": asdict(fast),
                # Per-unit aggregates always use the DEFAULT capacity (not
                # the executor's shard-level ``sketch_capacity``) so the
                # persisted repetition aggregates are byte-identical to
                # the serial and parallel paths regardless of knobs.
                "aggregates": {
                    "normal": unit_aggregate(normal_values, normal.unfinished),
                    "fast": unit_aggregate(fast_values, fast.unfinished),
                },
            }
        )
    return {
        "units": units,
        "sketches": {name: sk.to_dict() for name, sk in sketches.items()},
        "stats": {name: acc.to_dict() for name, acc in stats.items()},
    }


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #
class ShardedExecutor:
    """Execute the pending repetitions of a :class:`ShardPlan`.

    Parameters
    ----------
    plan:
        The full-run shard plan (built over *all* repetition seeds -- see
        :class:`~repro.dist.plan.ShardPlan` -- never the pending subset).
    workers:
        Worker process count for the :class:`~repro.dist.pool.WorkerPool`.
    compute_engine:
        Simulation core for the workers (store-key-agnostic by contract).
    journal_root:
        Directory holding per-run checkpoint journals; ``None`` disables
        checkpointing (no store to resume against).
    max_retries / fault_hook:
        Forwarded to the pool (crash tolerance / fault injection).
    after_shard:
        Optional parent-side callback ``(shard_id) -> None`` invoked after
        each shard is journaled -- the seam the interrupt/resume tests use
        to kill the run at a precise point.
    progress:
        Optional :class:`~repro.dist.progress.ProgressReporter` fed the
        run's shard frontier (total / journal-replayed / per-completion)
        so it can print a live status line; ``None`` stays silent.
    """

    def __init__(
        self,
        plan: ShardPlan,
        *,
        workers: int = 1,
        compute_engine: Optional[str] = None,
        journal_root: Optional[Path] = None,
        max_retries: int = 1,
        fault_hook: Optional[Callable[[int, int], None]] = None,
        after_shard: Optional[Callable[[int], None]] = None,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
        progress: Optional["ProgressReporter"] = None,
    ) -> None:
        self.plan = plan
        self.pool = WorkerPool(workers, max_retries=max_retries, fault_hook=fault_hook)
        self.compute_engine = compute_engine
        self.journal_root = Path(journal_root) if journal_root is not None else None
        self.after_shard = after_shard
        self.progress = progress
        self.sketch_capacity = int(sketch_capacity)
        #: Merged per-algorithm aggregates, populated once :meth:`execute`
        #: has been fully consumed.  Cover only freshly simulated units --
        #: replayed repetitions never re-enter the executor.
        self.aggregates: Optional[Dict[str, ShardAggregates]] = None
        #: How many shards were replayed from the journal last run.
        self.journal_replayed: int = 0

    # ------------------------------------------------------------------ #
    def _open_journal(self) -> Optional[ShardJournal]:
        if self.journal_root is None:
            return None
        run_key = self.plan.fingerprint()
        manifest = {
            "spec": self.plan.spec.to_dict(),
            "rep_seeds": list(self.plan.rep_seeds),
            "n_shards": self.plan.n_shards,
            "sketch_capacity": self.sketch_capacity,
        }
        return ShardJournal.open(self.journal_root, run_key, manifest)

    def _merge_aggregates(self, results: Mapping[int, ShardResult]) -> None:
        merged: Dict[str, ShardAggregates] = {
            name: ShardAggregates(
                sketch=QuantileSketch(capacity=self.sketch_capacity),
                stats=StreamAccumulator(),
            )
            for name in PAIRED_ALGORITHMS
        }
        # Shard-id order, never completion order: merging is deterministic
        # across runs, interrupted or not.
        for shard_id in sorted(results):
            result = results[shard_id]
            for name in PAIRED_ALGORITHMS:
                merged[name].sketch.merge(result.sketches[name])
                merged[name].stats.merge(result.stats[name])
        self.aggregates = merged

    # ------------------------------------------------------------------ #
    def execute(self, pending_seeds: Sequence[int]) -> Iterator[UniverseRepResult]:
        """Simulate the pending repetitions, yielding them in seed order.

        Repetitions are yielded as soon as all their units are available
        (journaled or freshly computed), in ``pending_seeds`` order --
        exactly the contract :func:`repro.experiments.store.
        replay_or_execute` expects, so the caller persists each one before
        the next shard even finishes.  On full consumption the journal is
        discarded and :attr:`aggregates` is populated.
        """
        pending = [int(seed) for seed in pending_seeds]
        if not pending:
            self._merge_aggregates({})
            return
        unknown = set(pending) - set(self.plan.rep_seeds)
        if unknown:
            raise ValueError(f"seeds not in plan: {sorted(unknown)}")
        pending_set = set(pending)
        n_channels = self.plan.spec.n_channels

        # The units each shard must deliver for *this* run.
        needed: Dict[int, List[ShardUnit]] = {}
        for shard in self.plan.shards:
            units = [u for u in shard.units if u.rep_seed in pending_set]
            if units:
                needed[shard.shard_id] = units

        journal = self._open_journal()
        results: Dict[int, ShardResult] = {}
        self.journal_replayed = 0
        if journal is not None:
            for shard_id, payload in journal.completed().items():
                if shard_id not in needed:
                    continue
                replayed = ShardResult.from_payload(shard_id, payload)
                # A record is only usable if it covers every unit this
                # run still needs from the shard (it may legally cover
                # more: repetitions persisted since it was written) --
                # outcomes AND per-unit aggregates both; a record from
                # before aggregates were journaled re-simulates.
                if all(
                    (u.rep_seed, u.channel) in replayed.outcomes
                    and (u.rep_seed, u.channel) in replayed.unit_aggregates
                    for u in needed[shard_id]
                ):
                    results[shard_id] = replayed
                    self.journal_replayed += 1

        obs = get_telemetry()
        if obs.enabled:
            obs.counter("dist.shards.replayed").add(self.journal_replayed)
            if self.journal_replayed:
                obs.event(
                    "dist.journal_replay",
                    shards=self.journal_replayed,
                    needed=len(needed),
                )

        tasks: Dict[int, Dict[str, Any]] = {
            shard_id: {
                "spec": self.plan.spec.to_dict(),
                "compute_engine": self.compute_engine,
                "sketch_capacity": self.sketch_capacity,
                "units": [u.to_dict() for u in units],
            }
            for shard_id, units in needed.items()
            if shard_id not in results
        }
        if obs.enabled:
            obs.counter("dist.shards.computed").add(len(tasks))
        if self.progress is not None:
            self.progress.begin(
                total=len(needed), replayed=self.journal_replayed, pool=self.pool
            )

        # Assemble repetitions incrementally: a rep is ready once all its
        # channels are collected; yield strictly in pending-seed order.
        collected: Dict[
            Tuple[int, int],
            Tuple[Dict[str, Any], Dict[str, Any], Dict[str, Any]],
        ] = {}
        remaining: Dict[int, int] = {seed: n_channels for seed in pending}
        emitted = 0

        def absorb(result: ShardResult) -> None:
            for unit in needed[result.shard_id]:
                unit_key = (unit.rep_seed, unit.channel)
                if unit_key not in collected:
                    normal_doc, fast_doc = result.outcomes[unit_key]
                    collected[unit_key] = (
                        normal_doc,
                        fast_doc,
                        result.unit_aggregates[unit_key],
                    )
                    remaining[unit.rep_seed] -= 1

        def drain(limit: int) -> Iterator[UniverseRepResult]:
            nonlocal emitted
            while emitted < limit and remaining[pending[emitted]] == 0:
                yield self._assemble(pending[emitted], collected)
                emitted += 1

        # The consumer (``replay_or_execute``'s zip) never advances this
        # generator past its last yield, so everything that must happen on
        # success -- merging aggregates, discarding the journal, tearing
        # the pool down -- has to precede the final repetition.  Hold the
        # last one back until the epilogue has run.
        hold_back = len(pending) - 1

        for result in results.values():
            absorb(result)
        yield from drain(hold_back)

        # Close the pool generator deterministically on any exit -- an
        # exception from ``after_shard`` (the interrupt seam) or an
        # abandoned consumer would otherwise leave worker teardown to GC.
        pool_run = self.pool.run(_run_shard_task, tasks)
        try:
            for shard_id, payload in pool_run:
                result = ShardResult.from_payload(shard_id, payload)
                if journal is not None:
                    journal.record(shard_id, payload)
                results[shard_id] = result
                if self.progress is not None:
                    self.progress.shard_done(shard_id)
                if self.after_shard is not None:
                    self.after_shard(shard_id)
                absorb(result)
                yield from drain(hold_back)
        finally:
            pool_run.close()
            if self.progress is not None:
                self.progress.finish()

        self._merge_aggregates(results)
        if journal is not None:
            journal.discard()
        yield from drain(len(pending))

    # ------------------------------------------------------------------ #
    def _assemble(
        self,
        rep_seed: int,
        collected: Dict[
            Tuple[int, int],
            Tuple[Dict[str, Any], Dict[str, Any], Dict[str, Any]],
        ],
    ) -> UniverseRepResult:
        """Reassemble one repetition from its per-channel outcome dicts.

        Pops the consumed outcomes so parent memory stays bounded by the
        in-flight shard frontier, not the whole run.  The per-unit
        aggregates fold in ascending channel order -- the canonical order
        shared with the serial and parallel paths, which is what keeps
        the persisted ``aggregates`` block byte-identical across them.
        """
        spec = self.plan.spec
        normal: List[ChannelOutcome] = []
        fast: List[ChannelOutcome] = []
        aggregator = RepAggregator()
        for channel in range(spec.n_channels):
            normal_doc, fast_doc, units = collected.pop((rep_seed, channel))
            normal.append(ChannelOutcome(**normal_doc))
            fast.append(ChannelOutcome(**fast_doc))
            for name in PAIRED_ALGORITHMS:
                aggregator.fold_unit(name, int(fast_doc["decile"]), units[name])
        # n_zaps/surfers live on the zap plan; re-derive it (pure, memoised
        # per worker but cheap enough to do once per rep in the parent).
        plan = plan_universe(spec, rep_seed)
        return UniverseRepResult(
            universe=spec.name,
            seed=int(rep_seed),
            n_channels=spec.n_channels,
            n_viewers=spec.n_viewers,
            n_zaps=plan.zap_plan.n_zaps,
            surfers=plan.zap_plan.surfers,
            normal=tuple(normal),
            fast=tuple(fast),
            aggregates=aggregator.to_dict(),
        )
