"""Integration tests: the network fabric threaded through sessions.

Covers the tentpole acceptance properties:

* the default (ideal) fabric consumes no randomness and leaves every
  result field exactly as the network-oblivious simulator produced it;
* a topology session assigns regions, delays deliveries, drops and
  retries, and still completes the switch;
* paired fast-vs-normal runs over ``transcontinental`` stay paired and
  the fast algorithm wins in every region;
* results round-trip through the store (``fabric_stats`` included) and
  latency runs persist ``net-*`` documents.
"""

import numpy as np
import pytest

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair, run_single
from repro.experiments.store import (
    ResultStore,
    config_from_dict,
    config_to_dict,
    net_fingerprint,
    session_result_from_dict,
    session_result_to_dict,
)
from repro.metrics.net import (
    fabric_stats_rows,
    per_region_switch_stats,
    region_comparison_rows,
)
from repro.net.fabric import IdealFabric, LatencyFabric
from repro.net.library import get_topology
from repro.streaming.session import SessionConfig, SwitchSession


def small_config(n_nodes=80, **overrides):
    defaults = dict(seed=1, max_time=80.0)
    defaults.update(overrides)
    return make_session_config(n_nodes, **defaults)


class TestIdealDefault:
    def test_default_session_uses_ideal_fabric(self):
        session = SwitchSession(small_config(n_nodes=40, max_time=10.0))
        assert isinstance(session.fabric, IdealFabric)
        assert not session.membership.locality_enabled

    def test_ideal_run_has_no_regions_and_empty_stats(self):
        result = run_single(small_config(n_nodes=60, max_time=60.0))
        assert result.fabric_stats == {}
        assert all(outcome.region == "" for outcome in result.metrics.outcomes)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(n_nodes=40, topology="atlantis")


class TestTopologySession:
    def test_regions_assigned_and_switch_completes(self):
        result = run_single(small_config(n_nodes=80, topology="transcontinental"))
        regions = {o.region for o in result.metrics.outcomes}
        assert regions <= {"na-east", "na-west", "europe", "asia"}
        assert len(regions) >= 2, "expected a multi-region population"
        assert result.metrics.unfinished == 0
        stats = result.fabric_stats
        assert stats["messages"] > 0
        assert stats["dropped"] > 0  # 1% lossy last miles
        assert stats["mean_delay_s"] > 0.03  # transcontinental paths

    def test_latency_session_enables_locality(self):
        session = SwitchSession(small_config(n_nodes=60, topology="transcontinental",
                                             max_time=10.0))
        assert isinstance(session.fabric, LatencyFabric)
        assert session.membership.locality_enabled

    def test_deterministic_from_seed(self):
        a = run_single(small_config(n_nodes=60, topology="metro", max_time=60.0))
        b = run_single(small_config(n_nodes=60, topology="metro", max_time=60.0))
        assert a.metrics.outcomes == b.metrics.outcomes
        assert a.fabric_stats == b.fabric_stats

    def test_latency_lengthens_fast_switch_time(self):
        ideal = run_single(small_config(n_nodes=80))
        latency = run_single(small_config(n_nodes=80, topology="transcontinental"))
        assert latency.metrics.avg_switch_time > ideal.metrics.avg_switch_time

    def test_explicit_fabric_override(self):
        topology = get_topology("metro")
        fabric = LatencyFabric(topology, np.random.default_rng(5))
        session = SwitchSession(small_config(n_nodes=40, max_time=10.0), fabric=fabric)
        assert session.fabric is fabric
        assert all(
            fabric.region_of(node_id) in topology.region_names
            for node_id in session.peers
        )


class TestPairedTranscontinental:
    @pytest.fixture(scope="class")
    def pair(self):
        return run_pair(small_config(n_nodes=100, topology="transcontinental"))

    def test_paired_region_assignment_identical(self, pair):
        normal = {o.node_id: o.region for o in pair.normal.metrics.outcomes}
        fast = {o.node_id: o.region for o in pair.fast.metrics.outcomes}
        assert normal == fast

    def test_fast_beats_normal_in_every_region(self, pair):
        rows = region_comparison_rows(
            pair.normal.metrics.outcomes,
            pair.fast.metrics.outcomes,
            horizon=pair.normal.metrics.horizon,
        )
        assert len(rows) == 4
        for row in rows:
            assert row["fast_switch_time"] < row["normal_switch_time"], row
            assert row["reduction"] > 0

    def test_per_region_stats_cover_all_peers(self, pair):
        stats = per_region_switch_stats(
            pair.fast.metrics.outcomes, horizon=pair.fast.metrics.horizon
        )
        assert sum(s.peers for s in stats) == pair.fast.metrics.n_peers
        for s in stats:
            assert s.p50 <= s.p90
            assert s.mean > 0

    def test_latency_widens_the_fast_switch_advantage(self):
        # The shipped comparison (examples/latency_regions.py): at 150
        # peers, seed 1, the transcontinental fabric widens the paired
        # fast-vs-normal gap -- in absolute seconds and in reduction ratio.
        ideal = run_pair(small_config(n_nodes=150, max_time=90.0))
        latency = run_pair(
            small_config(n_nodes=150, max_time=90.0, topology="transcontinental")
        )
        ideal_gap = (
            ideal.normal.metrics.avg_switch_time - ideal.fast.metrics.avg_switch_time
        )
        latency_gap = (
            latency.normal.metrics.avg_switch_time
            - latency.fast.metrics.avg_switch_time
        )
        assert latency_gap > ideal_gap
        assert latency.switch_time_reduction > ideal.switch_time_reduction

    def test_fabric_stats_rows_printable(self, pair):
        rows = fabric_stats_rows(pair.fast.fabric_stats)
        assert {row["metric"] for row in rows} == {
            "net messages", "net dropped", "net drop_ratio", "net mean_delay_s"
        }


class TestStoreIntegration:
    def test_config_topology_round_trips(self):
        config = small_config(n_nodes=60, topology="metro")
        assert config_from_dict(config_to_dict(config)) == config

    def test_old_config_payload_defaults_to_ideal(self):
        payload = config_to_dict(small_config(n_nodes=60))
        del payload["topology"]  # a pre-net-layer document
        assert config_from_dict(payload).topology == ""

    def test_session_result_round_trips_with_fabric_stats(self):
        result = run_single(small_config(n_nodes=60, topology="metro", max_time=60.0))
        rebuilt = session_result_from_dict(session_result_to_dict(result))
        assert rebuilt.fabric_stats == result.fabric_stats
        assert rebuilt.metrics.outcomes == result.metrics.outcomes

    def test_pair_replay_and_net_document(self, tmp_path):
        store = ResultStore(tmp_path)
        config = small_config(n_nodes=60, topology="metro", max_time=60.0)
        first = run_pair(config, store=store)
        # The topology was persisted as a net-* document...
        topology = get_topology("metro")
        key = net_fingerprint(topology)
        assert store.load_net(key) == topology
        assert any(k.startswith("net-") for k in store.keys())
        # ...and the pair replays bit-identically from disk.
        replayed = run_pair(config, store=store)
        assert replayed.normal.metrics.outcomes == first.normal.metrics.outcomes
        assert replayed.fast.fabric_stats == first.fast.fabric_stats

    def test_ideal_pair_persists_no_net_document(self, tmp_path):
        store = ResultStore(tmp_path)
        run_pair(small_config(n_nodes=60, max_time=60.0), store=store)
        assert not any(k.startswith("net-") for k in store.keys())
