"""Tests for the metric collector using lightweight stand-in peers."""

from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro.metrics.collectors import MetricsCollector


@dataclass
class _FakePlayback:
    stall_periods: int = 0


@dataclass
class _FakePeer:
    """Minimal object satisfying the collector's peer protocol."""

    node_id: int
    q0: int = 40
    old_received: int = 0
    new_startup_received: int = 0
    startup_quota_new: int = 50
    finish_old_time: Optional[float] = None
    prepared_new_time: Optional[float] = None
    switch_complete_time: Optional[float] = None
    tracked: bool = True
    segments_received_total: int = 0
    playback_old: _FakePlayback = field(default_factory=_FakePlayback)

    def undelivered_old(self) -> int:
        return max(0, self.q0 - self.old_received)

    def delivered_new_startup(self) -> int:
        return min(self.new_startup_received, self.startup_quota_new)


def test_sample_round_averages_ratios():
    collector = MetricsCollector(startup_quota_new=50)
    peers = [
        _FakePeer(1, q0=40, old_received=20, new_startup_received=25),
        _FakePeer(2, q0=40, old_received=40, new_startup_received=50,
                  finish_old_time=5.0, prepared_new_time=6.0, switch_complete_time=6.0),
    ]
    sample = collector.sample_round(3.0, peers)
    assert sample.time == 3.0
    assert sample.undelivered_ratio_old == pytest.approx((0.5 + 0.0) / 2)
    assert sample.delivered_ratio_new == pytest.approx((0.5 + 1.0) / 2)
    assert sample.fraction_finished_old == 0.5
    assert sample.fraction_switched == 0.5
    assert sample.tracked_peers == 2


def test_sample_round_ignores_untracked_peers():
    collector = MetricsCollector(startup_quota_new=50)
    peers = [_FakePeer(1), _FakePeer(2, tracked=False, new_startup_received=50)]
    sample = collector.sample_round(1.0, peers)
    assert sample.tracked_peers == 1
    assert sample.delivered_ratio_new == 0.0


def test_sample_round_with_no_tracked_peers():
    collector = MetricsCollector(startup_quota_new=50)
    sample = collector.sample_round(1.0, [])
    assert sample.tracked_peers == 0
    assert sample.fraction_switched == 1.0


def test_peer_with_zero_backlog_counts_as_fully_delivered():
    collector = MetricsCollector(startup_quota_new=50)
    sample = collector.sample_round(0.0, [_FakePeer(1, q0=0)])
    assert sample.undelivered_ratio_old == 0.0


def test_finalize_summarises_times_and_unfinished():
    collector = MetricsCollector(startup_quota_new=50)
    peers = [
        _FakePeer(1, finish_old_time=10.0, prepared_new_time=16.0, switch_complete_time=16.0),
        _FakePeer(2, finish_old_time=12.0, prepared_new_time=20.0, switch_complete_time=20.0),
        _FakePeer(3),  # never finished
    ]
    metrics = collector.finalize(peers, algorithm="fast", horizon=60.0, overhead_ratio=0.015)
    assert metrics.algorithm == "fast"
    assert metrics.n_peers == 3
    assert metrics.unfinished == 1
    assert metrics.avg_finish_old == pytest.approx((10 + 12 + 60) / 3)
    assert metrics.avg_prepare_new == pytest.approx((16 + 20 + 60) / 3)
    assert metrics.avg_switch_time == metrics.avg_prepare_new
    assert metrics.last_prepare_new == 60.0
    assert metrics.overhead_ratio == 0.015
    assert len(metrics.outcomes) == 3


def test_finalize_with_collected_rounds_exposes_series():
    collector = MetricsCollector(startup_quota_new=50)
    collector.sample_round(1.0, [_FakePeer(1, new_startup_received=10)])
    collector.sample_round(2.0, [_FakePeer(1, new_startup_received=30)])
    metrics = collector.finalize([_FakePeer(1)], algorithm="normal", horizon=60.0)
    series = metrics.series("delivered_ratio_new")
    assert series == [(1.0, pytest.approx(0.2)), (2.0, pytest.approx(0.6))]


def test_collector_requires_positive_quota():
    with pytest.raises(ValueError):
        MetricsCollector(startup_quota_new=0)
