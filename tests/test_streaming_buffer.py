"""Tests for the FIFO segment buffer."""

import pytest

from repro.streaming.buffer import SegmentBuffer


def test_insert_contains_len():
    buffer = SegmentBuffer(capacity=5)
    buffer.insert(10)
    buffer.insert(11)
    assert len(buffer) == 2
    assert 10 in buffer and buffer.contains(11)
    assert 12 not in buffer


def test_fifo_eviction_order():
    buffer = SegmentBuffer(capacity=3)
    evicted = buffer.insert_many([1, 2, 3])
    assert evicted == []
    assert buffer.insert(4) == 1
    assert buffer.insert(5) == 2
    assert buffer.as_set() == frozenset({3, 4, 5})
    assert buffer.evicted_total == 2


def test_duplicate_insert_is_noop():
    buffer = SegmentBuffer(capacity=3)
    buffer.insert_many([1, 2, 3])
    assert buffer.insert(2) is None
    assert len(buffer) == 3
    # eviction order unchanged: 1 is still the oldest
    assert buffer.insert(4) == 1


def test_unbounded_buffer_never_evicts():
    buffer = SegmentBuffer(capacity=None)
    buffer.insert_many(range(1000))
    assert len(buffer) == 1000
    assert buffer.evicted_total == 0


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        SegmentBuffer(capacity=0)


def test_newest_and_oldest():
    buffer = SegmentBuffer(capacity=4)
    assert buffer.newest() is None and buffer.oldest() is None
    buffer.insert_many([7, 3, 9])
    assert buffer.newest() == 9
    assert buffer.oldest() == 7


def test_position_from_tail_counts_from_insertion_end():
    buffer = SegmentBuffer(capacity=10)
    buffer.insert_many([100, 101, 102])
    assert buffer.position_from_tail(102) == 1  # newest
    assert buffer.position_from_tail(101) == 2
    assert buffer.position_from_tail(100) == 3  # next to be evicted
    with pytest.raises(KeyError):
        buffer.position_from_tail(999)


def test_position_from_tail_stable_after_evictions():
    buffer = SegmentBuffer(capacity=3)
    buffer.insert_many([1, 2, 3, 4, 5])  # holds 3, 4, 5
    assert buffer.position_from_tail(5) == 1
    assert buffer.position_from_tail(3) == 3


def test_position_from_tail_after_discard():
    buffer = SegmentBuffer(capacity=10)
    buffer.insert_many([1, 2, 3, 4])
    assert buffer.discard(3) is True
    assert buffer.discard(3) is False
    assert buffer.position_from_tail(4) == 1
    assert buffer.position_from_tail(2) == 2
    assert buffer.position_from_tail(1) == 3


def test_ids_in_range_and_missing_in_range():
    buffer = SegmentBuffer(capacity=10)
    buffer.insert_many([5, 6, 9])
    assert buffer.ids_in_range(5, 9) == [5, 6, 9]
    assert buffer.missing_in_range(5, 9) == [7, 8]
    assert buffer.ids_in_range(9, 5) == []
    assert buffer.missing_in_range(9, 5) == []


def test_ids_in_range_wide_window_uses_buffer_iteration():
    buffer = SegmentBuffer(capacity=5)
    buffer.insert_many([100, 200, 300])
    assert buffer.ids_in_range(0, 1_000_000) == [100, 200, 300]


def test_contains_all():
    buffer = SegmentBuffer(capacity=10)
    buffer.insert_many(range(20, 25))
    assert buffer.contains_all(range(20, 25))
    assert not buffer.contains_all(range(20, 26))


def test_iteration_is_oldest_to_newest():
    buffer = SegmentBuffer(capacity=3)
    buffer.insert_many([10, 30, 20])
    assert list(buffer) == [10, 30, 20]
