"""Tests for the event queue."""

from repro.sim.events import EventQueue


def test_events_pop_in_time_order():
    queue = EventQueue()
    seen = []
    queue.push(3.0, lambda: seen.append("c"))
    queue.push(1.0, lambda: seen.append("a"))
    queue.push(2.0, lambda: seen.append("b"))
    while queue:
        queue.pop().callback()
    assert seen == ["a", "b", "c"]


def test_ties_broken_by_priority_then_insertion_order():
    queue = EventQueue()
    seen = []
    queue.push(1.0, lambda: seen.append("late"), priority=5)
    queue.push(1.0, lambda: seen.append("first"), priority=0)
    queue.push(1.0, lambda: seen.append("second"), priority=0)
    order = []
    while queue:
        order.append(queue.pop())
    for event in order:
        event.callback()
    assert seen == ["first", "second", "late"]


def test_len_counts_pending_events():
    queue = EventQueue()
    assert len(queue) == 0
    e1 = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(e1)
    assert len(queue) == 1


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    seen = []
    keep = queue.push(1.0, lambda: seen.append("keep"))
    drop = queue.push(0.5, lambda: seen.append("drop"))
    queue.cancel(drop)
    nxt = queue.pop()
    assert nxt is keep
    nxt.callback()
    assert seen == ["keep"]
    assert queue.pop() is None


def test_peek_does_not_remove():
    queue = EventQueue()
    queue.push(1.0, lambda: None, label="x")
    assert queue.peek() is queue.peek()
    assert len(queue) == 1


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None


def test_iteration_skips_cancelled():
    queue = EventQueue()
    e1 = queue.push(1.0, lambda: None, label="a")
    queue.push(2.0, lambda: None, label="b")
    queue.cancel(e1)
    labels = {event.label for event in queue}
    assert labels == {"b"}
