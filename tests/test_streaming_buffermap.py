"""Tests for buffer-map snapshots and wire-size accounting."""

import pytest

from repro.streaming.buffer import SegmentBuffer
from repro.streaming.buffermap import (
    UNBOUNDED_CAPACITY,
    BufferMapSnapshot,
    buffer_map_bits,
    snapshot_buffer,
)


def test_paper_wire_size_is_620_bits():
    # B = 600 slots -> 600 availability bits + 20 offset bits
    assert buffer_map_bits(600) == 620


def test_wire_size_scales_with_capacity():
    assert buffer_map_bits(100) == 120
    with pytest.raises(ValueError):
        buffer_map_bits(0)


def test_snapshot_restricted_to_windows():
    buffer = SegmentBuffer(capacity=600)
    buffer.insert_many(range(0, 100))
    snap = snapshot_buffer(7, buffer, [(10, 19), (50, 54)], send_rate=12.0)
    assert snap.owner_id == 7
    assert snap.available == frozenset(range(10, 20)) | frozenset(range(50, 55))
    assert snap.send_rate == 12.0
    assert snap.wire_bits == 620
    assert snap.switch_info is None


def test_snapshot_positions_match_buffer_positions():
    buffer = SegmentBuffer(capacity=600)
    buffer.insert_many(range(0, 10))
    snap = snapshot_buffer(1, buffer, [(0, 9)], send_rate=1.0)
    assert snap.position_of(9) == 1
    assert snap.position_of(0) == 10
    # unknown ids default to the newest position
    assert snap.position_of(999) == 1


def test_snapshot_of_unbounded_source_buffer():
    buffer = SegmentBuffer(capacity=None)
    buffer.insert_many(range(0, 50))
    snap = snapshot_buffer(2, buffer, [(0, 49)], send_rate=60.0, switch_info=(899, 900))
    assert snap.buffer_capacity == UNBOUNDED_CAPACITY
    assert snap.wire_bits == buffer_map_bits(600)
    assert snap.switch_info == (899, 900)


def test_snapshot_capacity_and_wire_overrides():
    buffer = SegmentBuffer(capacity=300)
    buffer.insert(5)
    snap = snapshot_buffer(3, buffer, [(0, 10)], send_rate=1.0,
                           advertised_capacity=1000, wire_bits=64)
    assert snap.buffer_capacity == 1000
    assert snap.wire_bits == 64


def test_snapshot_has_helper():
    snap = BufferMapSnapshot(owner_id=1, available=frozenset({3, 4}))
    assert snap.has(3)
    assert not snap.has(5)


def test_overlapping_windows_do_not_duplicate():
    buffer = SegmentBuffer(capacity=600)
    buffer.insert_many(range(0, 30))
    snap = snapshot_buffer(1, buffer, [(0, 20), (10, 29)], send_rate=1.0)
    assert snap.available == frozenset(range(0, 30))
    assert len(snap.positions) == 30
