"""Tests for result comparison and table formatting."""

import pytest

from repro.metrics.collectors import SwitchMetrics
from repro.metrics.report import (
    compare_metrics,
    format_series,
    format_table,
    reduction_ratio,
)


def _metrics(algorithm: str, prepare: float, finish: float, overhead: float) -> SwitchMetrics:
    return SwitchMetrics(
        algorithm=algorithm,
        n_peers=100,
        avg_finish_old=finish,
        avg_prepare_new=prepare,
        avg_switch_time=prepare,
        avg_start_time=prepare,
        last_finish_old=finish + 2,
        last_prepare_new=prepare + 3,
        last_start_time=prepare + 3,
        unfinished=0,
        horizon=120.0,
        overhead_ratio=overhead,
    )


def test_reduction_ratio_matches_paper_definition():
    assert reduction_ratio(20.0, 15.0) == pytest.approx(0.25)
    assert reduction_ratio(0.0, 15.0) == 0.0
    assert reduction_ratio(10.0, 12.0) == pytest.approx(-0.2)


def test_compare_metrics_builds_row():
    normal = _metrics("normal", prepare=20.0, finish=10.0, overhead=0.016)
    fast = _metrics("fast", prepare=15.0, finish=12.0, overhead=0.014)
    row = compare_metrics("1000", normal, fast)
    assert row.label == "1000"
    assert row.switch_time_reduction == pytest.approx(0.25)
    assert row.normal_finish_old == 10.0
    assert row.fast_prepare_new == 15.0
    as_dict = row.as_dict()
    assert as_dict["n_peers"] == 100
    assert as_dict["fast_overhead"] == 0.014


def test_format_table_renders_all_rows_and_floats():
    rows = [
        {"n_nodes": 100, "reduction": 0.25},
        {"n_nodes": 1000, "reduction": 0.3123456},
    ]
    text = format_table(rows)
    assert "n_nodes" in text and "reduction" in text
    assert "0.250" in text and "0.312" in text
    assert len(text.splitlines()) == 4  # header + separator + 2 rows


def test_format_table_empty_and_column_selection():
    assert format_table([]) == "(no data)"
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_series_two_columns():
    text = format_series([(1.0, 0.5), (2.0, 0.75)], x_label="time", y_label="ratio")
    lines = text.splitlines()
    assert lines[0].split() == ["time", "ratio"]
    assert len(lines) == 4
