"""Tests for the experiment runner and the cached size sweep."""

import pytest

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair, run_single
from repro.experiments.sweeps import clear_sweep_cache, run_size_sweep


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


def _tiny(n=36, seed=2):
    return make_session_config(n, seed=seed, max_time=70.0, old_stream_segments=400,
                               lookahead=120)


def test_run_single_returns_result_with_metrics():
    result = run_single(_tiny().with_algorithm("normal"))
    assert result.algorithm == "normal"
    assert result.metrics.n_peers == 34
    assert result.metrics.avg_prepare_new > 0


def test_run_pair_is_paired_on_identical_randomness():
    pair = run_pair(_tiny())
    assert pair.normal.config.seed == pair.fast.config.seed
    assert pair.normal.config.n_nodes == pair.fast.config.n_nodes
    # same overlay -> same average degree in both runs
    assert pair.normal.average_degree == pair.fast.average_degree
    assert pair.n_nodes == 36
    row = pair.comparison()
    assert row.label == "36"
    assert row.n_peers == 34
    assert isinstance(pair.switch_time_reduction, float)


def test_size_sweep_produces_one_point_per_size():
    sweep = run_size_sweep([30, 40], seed=1, repetitions=1,
                           overrides={"max_time": 70.0, "old_stream_segments": 400,
                                      "lookahead": 120})
    assert [p.n_nodes for p in sweep.points] == [30, 40]
    rows = sweep.rows()
    assert len(rows) == 2
    assert set(rows[0]) >= {"n_nodes", "normal_switch_time", "fast_switch_time", "reduction"}
    series = sweep.series("reduction")
    assert [x for x, _ in series] == [30.0, 40.0]
    assert sweep.point_for(30).n_nodes == 30
    with pytest.raises(KeyError):
        sweep.point_for(999)


def test_size_sweep_results_are_cached():
    kwargs = dict(seed=4, repetitions=1,
                  overrides={"max_time": 70.0, "old_stream_segments": 400, "lookahead": 120})
    first = run_size_sweep([30], **kwargs)
    second = run_size_sweep([30], **kwargs)
    assert first is second  # same object: served from the lru cache
    third = run_size_sweep([30], seed=5, repetitions=1,
                           overrides={"max_time": 70.0, "old_stream_segments": 400,
                                      "lookahead": 120})
    assert third is not first


def test_sweep_point_aggregates_repetitions():
    sweep = run_size_sweep([30], seed=1, repetitions=2,
                           overrides={"max_time": 70.0, "old_stream_segments": 400,
                                      "lookahead": 120})
    point = sweep.points[0]
    assert point.repetitions == 2
    assert point.normal_switch_time > 0
    assert point.fast_switch_time > 0
