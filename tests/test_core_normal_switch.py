"""Tests for the normal (baseline) switch algorithm."""

import pytest

from repro.core.base import LocalView, NeighbourView, Stream
from repro.core.normal_switch import NormalSwitchAlgorithm


def _neighbour(node_id, available, send_rate=20.0):
    available = frozenset(available)
    return NeighbourView(
        node_id=node_id,
        send_rate=send_rate,
        available=available,
        positions={seg: 1 for seg in available},
        buffer_capacity=600,
    )


def _view(old_needed, new_needed, neighbours, *, inbound=7.0, id_end=4):
    return LocalView(
        now=0.0,
        tau=1.0,
        play_rate=10.0,
        inbound_rate=inbound,
        playback_id=0,
        startup_quota_old=2,
        startup_quota_new=5,
        old_needed=frozenset(old_needed),
        new_needed=frozenset(new_needed),
        id_end=id_end,
        id_begin=id_end + 1,
        neighbours=tuple(neighbours),
    )


def test_figure2_ordering_old_first_then_new():
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour])
    decision = NormalSwitchAlgorithm().schedule(view)
    streams = [r.stream for r in decision.requests]
    assert len(decision.requests) == 7
    assert streams[:5] == [Stream.OLD] * 5
    assert streams[5:] == [Stream.NEW] * 2
    # old segments in playback order, new segments in id order
    assert [r.seg_id for r in decision.old_requests] == [0, 1, 2, 3, 4]
    assert [r.seg_id for r in decision.new_requests] == [5, 6]


def test_reserved_inbound_blocks_new_stream_while_backlog_large():
    """Default (reserved) reading: Q1 >= I means no new-source requests even
    if not all of the backlog is schedulable this period."""
    neighbour = _neighbour(1, available=list(range(0, 3)) + list(range(20, 30)))
    view = _view(old_needed=range(0, 15), new_needed=range(20, 30),
                 neighbours=[neighbour], inbound=10.0, id_end=19)
    decision = NormalSwitchAlgorithm().schedule(view)
    assert decision.new_requests == ()
    assert len(decision.old_requests) == 3  # only what is schedulable


def test_opportunistic_variant_spills_leftover_to_new_stream():
    neighbour = _neighbour(1, available=list(range(0, 3)) + list(range(20, 30)))
    view = _view(old_needed=range(0, 15), new_needed=range(20, 30),
                 neighbours=[neighbour], inbound=10.0, id_end=19)
    decision = NormalSwitchAlgorithm(opportunistic_leftover=True).schedule(view)
    assert len(decision.old_requests) == 3
    assert len(decision.new_requests) == 7


def test_small_backlog_leaves_room_for_new_stream_in_both_variants():
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 2), new_needed=range(5, 10),
                 neighbours=[neighbour], inbound=6.0)
    for opportunistic in (False, True):
        decision = NormalSwitchAlgorithm(opportunistic_leftover=opportunistic).schedule(view)
        assert len(decision.old_requests) == 2
        assert len(decision.new_requests) == 4


def test_zero_capacity_produces_empty_decision():
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10),
                 neighbours=[neighbour], inbound=0.0)
    assert NormalSwitchAlgorithm().schedule(view).requests == ()


def test_only_new_stream_needed_uses_full_capacity():
    neighbour = _neighbour(1, available=range(5, 30))
    view = _view(old_needed=[], new_needed=range(5, 20), neighbours=[neighbour], inbound=8.0)
    decision = NormalSwitchAlgorithm().schedule(view)
    assert len(decision.requests) == 8
    assert all(r.stream is Stream.NEW for r in decision.requests)


def test_suppliers_shared_budget_between_passes():
    # One slow supplier holds everything: the new-stream pass must respect the
    # sending time already committed to the old stream.
    slow = _neighbour(1, available=range(0, 10), send_rate=5.0)  # max 4 per period
    view = _view(old_needed=range(0, 2), new_needed=range(5, 10), neighbours=[slow],
                 inbound=10.0)
    decision = NormalSwitchAlgorithm().schedule(view)
    assert len(decision.old_requests) == 2
    assert len(decision.new_requests) <= 2  # 4 slots minus 2 used by the old stream


def test_requests_target_actual_holders():
    n_old = _neighbour(1, available={0, 1})
    n_new = _neighbour(2, available={5, 6, 7})
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[n_old, n_new],
                 inbound=10.0)
    decision = NormalSwitchAlgorithm(opportunistic_leftover=True).schedule(view)
    holders = {1: {0, 1}, 2: {5, 6, 7}}
    for request in decision.requests:
        assert request.seg_id in holders[request.supplier_id]


def test_i1_i2_reflect_request_counts():
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour])
    decision = NormalSwitchAlgorithm().schedule(view)
    assert decision.i1 == pytest.approx(len(decision.old_requests))
    assert decision.i2 == pytest.approx(len(decision.new_requests))
    assert decision.r1 is None and decision.case is None
