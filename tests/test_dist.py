"""Tests for the sharded universe runtime (:mod:`repro.dist`).

Covers the shard plan, the crash-tolerant worker pool, the checkpoint
journal, and the acceptance properties of the sharded executor: serial
vs. sharded bit-identity at store-document level (both engines, both
store backends), streaming-sketch exactness against
:func:`~repro.metrics.universe.zap_time_stats`, and interrupt/resume
byte-identity re-simulating only unfinished shards.
"""

import io
import json
import os

import numpy as np
import pytest

from repro.channels.runner import run_universe, universe_fingerprint
from repro.channels.universe import UniverseSpec, run_universe_rep
from repro.dist import (
    ProgressReporter,
    Shard,
    ShardExecutionError,
    ShardJournal,
    ShardPlan,
    ShardUnit,
    WorkerPool,
)
from repro.dist.progress import format_eta
from repro.experiments.store import STORE_BACKENDS, open_store

#: The same deliberately tiny universe the channel tests use.
TINY = UniverseSpec(
    name="tiny-dist",
    description="dist-test universe",
    n_channels=4,
    n_viewers=48,
    zipf_exponent=1.0,
    min_audience=8,
    surfer_fraction=0.4,
    surfer_zap_rate=0.15,
    loyal_zap_rate=0.01,
    duration=16.0,
)


# --------------------------------------------------------------------------- #
# shard plan
# --------------------------------------------------------------------------- #
class TestShardPlan:
    def test_build_is_deterministic(self):
        first = ShardPlan.build(TINY, [0, 1, 2], 3)
        second = ShardPlan.build(TINY, [0, 1, 2], 3)
        assert first == second
        assert first.fingerprint() == second.fingerprint()

    def test_covers_every_unit_exactly_once(self):
        plan = ShardPlan.build(TINY, [0, 1, 2], 5)
        units = [unit for shard in plan.shards for unit in shard.units]
        assert len(units) == plan.n_units == 3 * TINY.n_channels
        assert len(set(units)) == len(units)

    def test_round_robin_balance(self):
        plan = ShardPlan.build(TINY, [0, 1, 2], 5)
        sizes = [len(shard) for shard in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_clamped_to_unit_count(self):
        plan = ShardPlan.build(TINY, [7], 100)
        assert plan.n_shards == TINY.n_channels
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_shard_of_matches_the_partition(self):
        plan = ShardPlan.build(TINY, [0, 1, 2], 5)
        for shard in plan.shards:
            for unit in shard.units:
                assert plan.shard_of(unit) == shard.shard_id
        with pytest.raises(KeyError):
            plan.shard_of(ShardUnit(rep_seed=99, channel=0))
        with pytest.raises(KeyError):
            plan.shard_of(ShardUnit(rep_seed=0, channel=TINY.n_channels))

    def test_fingerprint_rotates_with_inputs(self):
        base = ShardPlan.build(TINY, [0, 1], 2).fingerprint()
        assert ShardPlan.build(TINY, [0, 1], 3).fingerprint() != base
        assert ShardPlan.build(TINY, [0, 2], 2).fingerprint() != base
        bigger = TINY.scaled_to(n_viewers=60)
        assert ShardPlan.build(bigger, [0, 1], 2).fingerprint() != base

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan.build(TINY, [0], 0)
        with pytest.raises(ValueError):
            ShardPlan.build(TINY, [], 2)

    def test_unit_round_trips_through_dict(self):
        unit = ShardUnit(rep_seed=3, channel=1)
        assert ShardUnit.from_dict(unit.to_dict()) == unit

    def test_shard_rep_seeds_in_unit_order(self):
        shard = Shard(
            shard_id=0,
            units=(
                ShardUnit(rep_seed=5, channel=0),
                ShardUnit(rep_seed=2, channel=1),
                ShardUnit(rep_seed=5, channel=2),
            ),
        )
        assert shard.rep_seeds == (5, 2)


# --------------------------------------------------------------------------- #
# worker pool (synthetic, picklable task functions)
# --------------------------------------------------------------------------- #
def _double_task(payload, heartbeat):
    heartbeat(f"rep{payload}/ch0")
    return payload * 2


def _failing_task(payload, heartbeat):
    heartbeat(f"rep{payload}/ch{payload + 1}")
    raise RuntimeError(f"unit {payload} exploded")


def _crash_once_hook(worker_id, shard_id):
    """Hard-kill the worker on each shard's first attempt only."""
    flag = os.path.join(os.environ["DIST_TEST_FLAGS"], f"shard-{shard_id}")
    if not os.path.exists(flag):
        with open(flag, "w", encoding="utf-8"):
            pass
        os._exit(13)


def _always_raise_hook(worker_id, shard_id):
    raise RuntimeError("injected fault")


class TestWorkerPool:
    def test_runs_every_task_once(self):
        pool = WorkerPool(2)
        results = dict(pool.run(_double_task, {0: 10, 1: 11, 2: 12}))
        assert results == {0: 20, 1: 22, 2: 24}
        assert pool.failures == []

    def test_heartbeats_record_the_unit_label(self):
        pool = WorkerPool(1)
        list(pool.run(_double_task, {0: 7}))
        label, stamp = pool.last_heartbeat(0)
        assert label == "rep7/ch0"
        assert stamp > 0

    def test_mid_shard_error_names_the_offending_unit(self):
        pool = WorkerPool(1, max_retries=0)
        with pytest.raises(ShardExecutionError) as excinfo:
            list(pool.run(_failing_task, {4: 4}))
        message = str(excinfo.value)
        assert "shard 4 failed after 1 attempt(s)" in message
        assert "rep4/ch5" in message  # the last heartbeat: the unit that died
        assert "unit 4 exploded" in message
        (failure,) = excinfo.value.failures
        assert failure.shard_id == 4
        assert failure.last_heartbeat == "rep4/ch5"

    def test_worker_crash_is_retried_on_a_respawned_worker(self, tmp_path, monkeypatch):
        monkeypatch.setenv("DIST_TEST_FLAGS", str(tmp_path))
        pool = WorkerPool(2, max_retries=1, fault_hook=_crash_once_hook)
        results = dict(pool.run(_double_task, {0: 1, 1: 2, 2: 3}))
        assert results == {0: 2, 1: 4, 2: 6}
        # every shard crashed exactly once before succeeding
        assert sorted(f.shard_id for f in pool.failures) == [0, 1, 2]
        assert all(f.error == "worker process died" for f in pool.failures)

    def test_exhausted_retries_raise_with_full_summary(self):
        pool = WorkerPool(1, max_retries=1, fault_hook=_always_raise_hook)
        with pytest.raises(ShardExecutionError) as excinfo:
            list(pool.run(_double_task, {0: 1}))
        assert excinfo.value.shard_id == 0
        assert len(excinfo.value.failures) == 2  # first try + one retry
        assert "injected fault" in str(excinfo.value)

    def test_worker_heartbeat_timestamp_tracked_per_worker(self):
        pool = WorkerPool(1)
        list(pool.run(_double_task, {0: 7}))
        beat = pool.last_worker_heartbeat(0)
        assert beat is not None
        label, stamp = beat
        assert label == "rep7/ch0"
        assert stamp > 0

    def test_failure_summary_reports_heartbeat_age(self):
        pool = WorkerPool(1, max_retries=0)
        with pytest.raises(ShardExecutionError) as excinfo:
            list(pool.run(_failing_task, {4: 4}))
        (failure,) = excinfo.value.failures
        assert failure.heartbeat_age_s is not None
        assert 0.0 <= failure.heartbeat_age_s < 60.0
        assert "last heartbeat" in failure.describe()
        assert "s ago" in failure.describe()

    def test_pool_reconstructs_shard_spans_and_events(self):
        from repro.obs import telemetry_session

        with telemetry_session() as telemetry:
            pool = WorkerPool(2)
            dict(pool.run(_double_task, {0: 1, 1: 2, 2: 3}))
        spans = telemetry.tracer.spans_named("shard.execute")
        assert sorted(e["args"]["shard"] for e in spans) == [0, 1, 2]
        assert all(e["dur"] >= 0.0 for e in spans)
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["pool.shards_done"] == 3
        assert counters["pool.worker_spawn"] == 2
        assert counters["pool.heartbeats"] >= 3

    def test_pool_traces_retry_and_respawn_events(self, tmp_path, monkeypatch):
        from repro.obs import telemetry_session

        monkeypatch.setenv("DIST_TEST_FLAGS", str(tmp_path))
        with telemetry_session() as telemetry:
            pool = WorkerPool(1, max_retries=1, fault_hook=_crash_once_hook)
            results = dict(pool.run(_double_task, {0: 5}))
        assert results == {0: 10}
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["pool.shard_failure"] == 1
        assert counters["pool.shard_retry"] == 1
        assert counters["pool.worker_respawn"] >= 1
        names = {e["name"] for e in telemetry.tracer.events()}
        assert {"pool.shard_failure", "pool.shard_retry",
                "pool.worker_respawn"} <= names

    def test_retry_and_respawn_warnings_are_logged(self, tmp_path, monkeypatch,
                                                   caplog):
        import logging

        monkeypatch.setenv("DIST_TEST_FLAGS", str(tmp_path))
        pool = WorkerPool(1, max_retries=1, fault_hook=_crash_once_hook)
        with caplog.at_level(logging.WARNING, logger="repro.dist.pool"):
            assert dict(pool.run(_double_task, {0: 5})) == {0: 10}
        messages = " ".join(record.message for record in caplog.records)
        assert "died" in messages and "retrying shard 0" in messages
        assert "respawned" in messages

    def test_empty_task_map_is_a_no_op(self):
        assert list(WorkerPool(2).run(_double_task, {})) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(1, max_retries=-1)


# --------------------------------------------------------------------------- #
# checkpoint journal
# --------------------------------------------------------------------------- #
class TestShardJournal:
    MANIFEST = {"spec": {"name": "x"}, "n_shards": 2}

    def test_record_round_trips_exactly(self, tmp_path):
        journal = ShardJournal.open(tmp_path, "run-a", self.MANIFEST)
        payload = {"units": [{"value": 0.1 + 0.2}], "sketches": {}}
        journal.record(0, payload)
        completed = journal.completed()
        assert set(completed) == {0}
        assert completed[0]["units"] == payload["units"]  # exact floats
        assert completed[0]["shard_id"] == 0

    def test_reopen_with_same_manifest_keeps_records(self, tmp_path):
        ShardJournal.open(tmp_path, "run-a", self.MANIFEST).record(1, {"units": []})
        journal = ShardJournal.open(tmp_path, "run-a", self.MANIFEST)
        assert set(journal.completed()) == {1}

    def test_manifest_mismatch_wipes_the_directory(self, tmp_path):
        ShardJournal.open(tmp_path, "run-a", self.MANIFEST).record(1, {"units": []})
        journal = ShardJournal.open(tmp_path, "run-a", {"spec": {"name": "y"}})
        assert journal.completed() == {}

    def test_unparsable_records_are_skipped(self, tmp_path):
        journal = ShardJournal.open(tmp_path, "run-a", self.MANIFEST)
        journal.record(0, {"units": []})
        (journal.directory / "shard-00001.json").write_text("{torn", encoding="utf-8")
        assert set(journal.completed()) == {0}

    def test_discard_removes_journal_and_empty_root(self, tmp_path):
        root = tmp_path / "journal"
        journal = ShardJournal.open(root, "run-a", self.MANIFEST)
        journal.record(0, {"units": []})
        assert ShardJournal.exists(root, "run-a")
        journal.discard()
        assert not ShardJournal.exists(root, "run-a")
        assert not root.exists()


# --------------------------------------------------------------------------- #
# end-to-end: bit-identity, sketches, interrupt/resume
# --------------------------------------------------------------------------- #
def _universe_documents(store):
    """Every universe-* document, keyed, with volatile fields dropped."""
    docs = {}
    for key in store.keys():
        if not key.startswith("universe-"):
            continue
        document = store.load(key)
        document.pop("created", None)
        docs[key] = json.dumps(document, sort_keys=True)
    assert docs, "no universe documents persisted"
    return docs


@pytest.mark.parametrize("engine", ["oracle", "vector"])
@pytest.mark.parametrize("backend", STORE_BACKENDS)
def test_sharded_run_is_bit_identical_to_serial(tmp_path, engine, backend):
    serial_store = open_store(tmp_path / "serial", backend=backend)
    sharded_store = open_store(tmp_path / "sharded", backend=backend)
    run_universe(
        TINY, seed=0, repetitions=2, store=serial_store, compute_engine=engine
    )
    run_universe(
        TINY, seed=0, repetitions=2, store=sharded_store,
        compute_engine=engine, shards=3, workers=2,
    )
    assert _universe_documents(sharded_store) == _universe_documents(serial_store)
    # the journal never outlives a successful run
    assert not (sharded_store.root / "journal").exists()


def test_streaming_aggregates_match_exact_statistics(tmp_path):
    from repro.channels.runner import UniverseRunner

    store = open_store(tmp_path, backend="json")
    runner = UniverseRunner(workers=2, store=store, shards=3)
    result = runner.run(TINY, seed=0, repetitions=2)
    aggregates = runner.last_aggregates
    assert aggregates is not None and set(aggregates) == {"normal", "fast"}

    # Pool the exact per-peer samples the serial statistics are built from
    # (re-derived through the same detailed channel runner the workers use).
    from repro.channels.universe import plan_universe, run_planned_channel_detailed

    pooled = {"normal": [], "fast": []}
    for rep in result.reps:
        plan = plan_universe(TINY, rep.seed)
        for channel in range(TINY.n_channels):
            _, (normal_values, fast_values) = run_planned_channel_detailed(plan, channel)
            pooled["normal"].extend(normal_values)
            pooled["fast"].extend(fast_values)
    for name in ("normal", "fast"):
        samples = pooled[name]
        agg = aggregates[name]
        assert agg.stats.count == len(samples)
        assert agg.stats.mean == pytest.approx(float(np.mean(samples)), rel=0, abs=1e-12)
        assert agg.sketch.count == len(samples)
        # tiny universe => below sketch capacity => exact percentiles
        assert agg.sketch.exact
        for q in (50.0, 90.0, 99.0):
            assert agg.sketch.percentile(q) == float(np.percentile(samples, q))


def test_aggregates_cover_only_fresh_repetitions(tmp_path):
    from repro.channels.runner import UniverseRunner

    store = open_store(tmp_path, backend="json")
    run_universe(TINY, seed=0, repetitions=2, store=store, shards=2)
    runner = UniverseRunner(store=store, shards=2)
    replayed = runner.run(TINY, seed=0, repetitions=2)
    assert replayed.replayed == 2
    assert runner.last_aggregates is None  # nothing freshly simulated


class _StopAfter:
    """after_shard hook that interrupts the run after ``n`` shards."""

    def __init__(self, n):
        self.n = n
        self.seen = 0

    def __call__(self, shard_id):
        self.seen += 1
        if self.seen >= self.n:
            raise KeyboardInterrupt


def test_interrupted_run_resumes_byte_identically(tmp_path):
    from repro.channels.runner import UniverseRunner

    reference_store = open_store(tmp_path / "ref", backend="json")
    run_universe(TINY, seed=0, repetitions=3, store=reference_store, shards=4)
    reference = _universe_documents(reference_store)

    store = open_store(tmp_path / "resumed", backend="json")
    interrupted = UniverseRunner(
        workers=2, store=store, shards=4, after_shard=_StopAfter(2)
    )
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(TINY, seed=0, repetitions=3)

    # the journal survived the interrupt
    plan = ShardPlan.build(TINY, [0, 1, 2], 4)
    journal_root = store.root / "journal"
    assert ShardJournal.exists(journal_root, plan.fingerprint())

    run_universe(TINY, seed=0, repetitions=3, store=store, shards=4, workers=2)
    assert _universe_documents(store) == reference
    assert not journal_root.exists()


def test_resume_replays_finished_shards_from_journal(tmp_path):
    from repro.channels.runner import UniverseRunner

    store = open_store(tmp_path, backend="json")
    interrupted = UniverseRunner(
        workers=1, store=store, shards=4, after_shard=_StopAfter(2)
    )
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(TINY, seed=0, repetitions=3)

    resumed = UniverseRunner(workers=1, store=store, shards=4)
    result = resumed.run(TINY, seed=0, repetitions=3)
    assert result.repetitions == 3
    # the two finished shards came back from the journal, not the simulator
    assert resumed.journal_replayed == 2
    # and the resumed store matches a from-scratch serial repetition
    from repro.channels.runner import rep_to_dict

    serial = rep_to_dict(run_universe_rep(TINY, 0))
    stored = store.load_universe(universe_fingerprint(TINY, 0))["rep"]
    assert json.dumps(stored, sort_keys=True) == json.dumps(serial, sort_keys=True)


def test_crashed_worker_produces_identical_documents(tmp_path, monkeypatch):
    flags = tmp_path / "flags"
    flags.mkdir()
    monkeypatch.setenv("DIST_TEST_FLAGS", str(flags))

    reference_store = open_store(tmp_path / "ref", backend="json")
    run_universe(TINY, seed=0, repetitions=2, store=reference_store, shards=2)

    from repro.channels.runner import UniverseRunner

    store = open_store(tmp_path / "crashy", backend="json")
    runner = UniverseRunner(
        workers=2, store=store, shards=2, max_retries=1, fault_hook=_crash_once_hook
    )
    runner.run(TINY, seed=0, repetitions=2)
    assert _universe_documents(store) == _universe_documents(reference_store)


def test_exhausted_shard_failure_reaches_the_caller(tmp_path):
    from repro.channels.runner import UniverseRunner

    store = open_store(tmp_path, backend="json")
    runner = UniverseRunner(
        workers=1, store=store, shards=2, max_retries=0, fault_hook=_always_raise_hook
    )
    with pytest.raises(ShardExecutionError) as excinfo:
        runner.run(TINY, seed=0, repetitions=1)
    assert "injected fault" in str(excinfo.value)


# --------------------------------------------------------------------------- #
# telemetry: shard spans cover the plan exactly once
# --------------------------------------------------------------------------- #
class TestShardSpanCoverage:
    """A ``--shards N --telemetry`` run's document carries one
    ``shard.execute`` span per planned shard -- no more, no less -- even
    when a worker crash forces a retry (the crashed attempt never
    completes a span; only the successful one does)."""

    def test_spans_cover_every_planned_shard_exactly_once(self, tmp_path):
        from repro.obs import build_telemetry_document, telemetry_session

        store = open_store(tmp_path, backend="json")
        with telemetry_session() as telemetry:
            run_universe(
                TINY, seed=0, repetitions=2, store=store, shards=2, workers=2
            )
        document = build_telemetry_document(telemetry, run={"kind": "universe"})
        plan = ShardPlan.build(TINY, [0, 1], 2)
        assert sorted(row["shard"] for row in document["shards"]) == \
            list(range(plan.n_shards))

    def test_spans_exactly_once_after_an_injected_worker_crash(
        self, tmp_path, monkeypatch
    ):
        from repro.channels.runner import UniverseRunner
        from repro.obs import build_telemetry_document, telemetry_session

        flags = tmp_path / "flags"
        flags.mkdir()
        monkeypatch.setenv("DIST_TEST_FLAGS", str(flags))
        store = open_store(tmp_path / "store", backend="json")
        runner = UniverseRunner(
            workers=2, store=store, shards=2, max_retries=1,
            fault_hook=_crash_once_hook,
        )
        with telemetry_session() as telemetry:
            runner.run(TINY, seed=0, repetitions=2)
        document = build_telemetry_document(telemetry, run={"kind": "universe"})
        plan = ShardPlan.build(TINY, [0, 1], 2)
        assert sorted(row["shard"] for row in document["shards"]) == \
            list(range(plan.n_shards))
        # ...and the retries really happened (one crash per shard).
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["pool.shard_retry"] == plan.n_shards


# --------------------------------------------------------------------------- #
# live progress
# --------------------------------------------------------------------------- #
class _FakePool:
    """Duck-typed stand-in: only ``worker_heartbeats`` is consulted."""

    def __init__(self, beats):
        self.beats = beats

    def worker_heartbeats(self):
        return dict(self.beats)


class TestProgressReporter:
    def test_lines_are_newline_terminated_and_counted(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval_s=0)
        reporter.begin(total=3, replayed=1, pool=None)
        reporter.shard_done(0)
        reporter.shard_done(1)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert reporter.lines_emitted == 4 == len(lines)
        assert stream.getvalue().endswith("\n")
        assert lines[0] == "[shards] 1/3 done (1 replayed) | ETA --"
        assert lines[-1] == "[shards] 3/3 done (1 replayed) | all shards finished"

    def test_eta_tracks_the_observed_completion_rate(self):
        fake = {"t": 0.0}
        reporter = ProgressReporter(
            stream=io.StringIO(), interval_s=0, clock=lambda: fake["t"]
        )
        reporter.begin(total=4, replayed=0, pool=None)
        fake["t"] = 10.0
        reporter.shard_done(0)
        # one fresh shard in 10s => 3 remaining at ~10s each
        assert "ETA ~30s" in reporter.status_line()

    def test_worker_heartbeat_ages_and_display_cap(self):
        beats = {i: (f"rep0/ch{i}", 90.0) for i in range(10)}
        reporter = ProgressReporter(
            stream=io.StringIO(), interval_s=0, wall_clock=lambda: 100.0
        )
        reporter.begin(total=1, replayed=0, pool=_FakePool(beats))
        line = reporter.status_line()
        assert "w0 rep0/ch0 (10.0s)" in line
        assert "+2 more" in line  # 10 workers, at most 8 shown
        assert "w8 " not in line

    def test_throttle_suppresses_mid_interval_lines(self):
        fake = {"t": 0.0}
        reporter = ProgressReporter(
            stream=io.StringIO(), interval_s=100.0, clock=lambda: fake["t"]
        )
        try:
            reporter.begin(total=3, replayed=0, pool=None)
            fake["t"] = 1.0
            reporter.shard_done(0)  # inside the interval: no line
            assert reporter.lines_emitted == 1
            fake["t"] = 200.0
            reporter.shard_done(1)  # interval elapsed: a line
            assert reporter.lines_emitted == 2
        finally:
            reporter.finish()

    def test_finish_is_idempotent(self):
        reporter = ProgressReporter(stream=io.StringIO(), interval_s=0)
        reporter.begin(total=1, replayed=0, pool=None)
        reporter.shard_done(0)
        reporter.finish()
        emitted = reporter.lines_emitted
        reporter.finish()
        assert reporter.lines_emitted == emitted

    def test_format_eta_ranges(self):
        assert format_eta(42) == "~42s"
        assert format_eta(190) == "~3m10s"
        assert format_eta(2 * 3600 + 5 * 60) == "~2h05m"

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(interval_s=-1)

    def test_sharded_run_reports_live_progress(self, tmp_path):
        """End to end: a sharded universe run drives the reporter through
        begin / per-shard / finish and the lines narrate the frontier."""
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval_s=0)
        store = open_store(tmp_path, backend="json")
        run_universe(
            TINY, seed=0, repetitions=1, workers=2, store=store,
            shards=2, progress=reporter,
        )
        lines = stream.getvalue().splitlines()
        assert reporter.lines_emitted == len(lines) == 4
        assert lines[0].startswith("[shards] 0/2 done")
        assert lines[1].startswith("[shards] 1/2 done")
        assert lines[-1].startswith("[shards] 2/2 done | all shards finished")
