"""Tests for peer behaviour (knowledge updates, scheduling, playback)."""

import pytest

from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.normal_switch import NormalSwitchAlgorithm
from repro.streaming.bandwidth import BandwidthProfile
from repro.streaming.buffermap import BufferMapSnapshot
from repro.streaming.peer import PeerNode


def _peer(algorithm=None, inbound=15.0, **kwargs):
    return PeerNode(
        node_id=10,
        bandwidth=BandwidthProfile(inbound=inbound, outbound=15.0),
        algorithm=algorithm or FastSwitchAlgorithm(),
        buffer_capacity=600,
        play_rate=10.0,
        startup_quota_old=10,
        startup_quota_new=50,
        tau=1.0,
        **kwargs,
    )


def _snapshot(owner, available, *, send_rate=20.0, switch_info=None):
    available = frozenset(available)
    return BufferMapSnapshot(
        owner_id=owner,
        available=available,
        positions={seg: 1 for seg in available},
        buffer_capacity=600,
        send_rate=send_rate,
        switch_info=switch_info,
    )


def _seeded_peer(head=879, position=850, **kwargs):
    peer = _peer(**kwargs)
    peer.seed_steady_state(head_id=head, playback_position=position, first_old_id=0)
    return peer


def test_seed_steady_state_fills_buffer_and_starts_playback():
    peer = _seeded_peer()
    assert peer.playback_old is not None and peer.playback_old.started
    assert peer.playback_old.position == 850
    assert peer.buffer.contains(879)
    assert peer.buffer.contains(280)  # within the 600-slot window
    assert not peer.buffer.contains(279)
    assert peer.highest_known_old == 879


def test_seed_validation():
    peer = _peer()
    with pytest.raises(ValueError):
        peer.seed_steady_state(head_id=10, playback_position=20, first_old_id=0)


def test_observe_without_seed_raises():
    peer = _peer()
    with pytest.raises(RuntimeError):
        peer.observe_snapshots([], now=0.0)


def test_switch_discovery_requires_announcing_neighbour():
    peer = _seeded_peer()
    peer.observe_snapshots([_snapshot(1, range(880, 890))], now=1.0)
    assert peer.switch_plan is None       # no announcement, just more old segments
    assert peer.highest_known_old == 889
    assert peer.wanted_old == set(range(880, 890))

    peer.observe_snapshots(
        [_snapshot(2, range(900, 905), switch_info=(899, 900))], now=2.0
    )
    assert peer.switch_plan is not None
    assert peer.switch_plan.id_end == 899
    assert peer.discovered_switch_time == 2.0
    assert peer.playback_old.last_id == 899
    # the whole startup window becomes wanted, regardless of availability
    assert peer.wanted_new == set(range(900, 950))


def test_wanted_old_clamped_to_id_end_after_discovery():
    peer = _seeded_peer()
    peer.observe_snapshots(
        [_snapshot(1, range(880, 960), switch_info=(899, 900))], now=1.0
    )
    assert max(peer.wanted_old) == 899
    assert peer.highest_known_new == 959


def test_decide_produces_requests_within_capacity():
    peer = _seeded_peer(inbound=12.0)
    snaps = [
        _snapshot(1, range(880, 900), switch_info=None),
        _snapshot(2, range(895, 910), switch_info=(899, 900)),
    ]
    decision = peer.decide(snaps, now=1.0)
    assert 0 < len(decision.requests) <= 12
    assert peer.requests_issued == len(decision.requests)
    for request in decision.requests:
        assert request.supplier_id in (1, 2)


def test_apply_delivery_updates_wanted_sets_and_counters():
    peer = _seeded_peer()
    peer.observe_snapshots([_snapshot(1, range(900, 905), switch_info=(899, 900))], now=1.0)
    peer.apply_delivery(880, now=1.0)
    peer.apply_delivery(900, now=1.0)
    assert peer.old_received_since_switch == 1
    assert peer.new_startup_received == 1
    assert peer.has_new_data
    assert 880 not in peer.wanted_old
    assert 900 not in peer.wanted_new
    # duplicate delivery changes nothing
    peer.apply_delivery(900, now=2.0)
    assert peer.new_startup_received == 1


def test_prepared_time_recorded_when_startup_window_complete():
    peer = _seeded_peer()
    peer.observe_snapshots([_snapshot(1, [900], switch_info=(899, 900))], now=1.0)
    for seg in range(900, 950):
        peer.apply_delivery(seg, now=5.0)
    assert peer.prepared_new_time == 5.0


def test_switch_completion_needs_both_conditions():
    peer = _seeded_peer(head=890, position=890)
    peer.observe_snapshots([_snapshot(1, [900], switch_info=(899, 900))], now=1.0)
    # receive the rest of the old stream and the full startup window
    for seg in range(891, 900):
        peer.apply_delivery(seg, now=1.0)
    for seg in range(900, 950):
        peer.apply_delivery(seg, now=2.0)
    assert peer.prepared_new_time == 2.0
    assert peer.switch_complete_time is None
    # play out the old stream (10 segments per period)
    t = 2.0
    while peer.finish_old_time is None:
        peer.advance_playback(now=t, duration=1.0)
        t += 1.0
        assert t < 10.0
    peer.advance_playback(now=t, duration=1.0)
    assert peer.switch_complete_time is not None
    assert peer.switch_done
    assert peer.playback_new.started


def test_announcement_only_after_holding_new_data():
    peer = _seeded_peer()
    peer.observe_snapshots([_snapshot(1, [900], switch_info=(899, 900))], now=1.0)
    assert peer.switch_announcement() is None
    peer.apply_delivery(900, now=1.0)
    assert peer.switch_announcement() == (899, 900)


def test_snapshot_for_exposes_window_and_send_rate():
    peer = _seeded_peer()
    snap = peer.snapshot_for([(870, 879)], send_rate=3.0)
    assert snap.owner_id == 10
    assert snap.available == frozenset(range(870, 880))
    assert snap.send_rate == 3.0
    assert snap.switch_info is None


def test_interest_windows_before_and_after_discovery():
    peer = _seeded_peer()
    before = peer.interest_windows()
    assert before == [(850, 850 + peer.lookahead)]
    peer.observe_snapshots([_snapshot(1, [900], switch_info=(899, 900))], now=1.0)
    after = peer.interest_windows()
    assert after[0] == (850, 899)
    assert after[1][0] == 900


def test_undelivered_old_uses_q0_baseline():
    peer = _seeded_peer(head=879)
    peer.q0 = 20  # e.g. id_end=899, head=879
    peer.observe_snapshots([_snapshot(1, range(880, 900), switch_info=(899, 900))], now=1.0)
    assert peer.undelivered_old() == 20
    peer.apply_delivery(880, now=1.0)
    peer.apply_delivery(881, now=1.0)
    assert peer.undelivered_old() == 18
    assert peer.delivered_new_startup() == 0


def test_normal_algorithm_peer_roundtrip():
    peer = _seeded_peer(algorithm=NormalSwitchAlgorithm(), head=895, position=890)
    snaps = [_snapshot(1, range(890, 920), switch_info=(899, 900))]
    decision = peer.decide(snaps, now=1.0)
    # only old-stream segments 896..899 are missing and known: 4 requests,
    # and the backlog (4) is below capacity so the rest goes to the new stream
    old_ids = {r.seg_id for r in decision.old_requests}
    assert old_ids == {896, 897, 898, 899}
    assert len(decision.requests) <= peer.bandwidth.inbound
