"""Tests for the Fast Source Switch Algorithm (Algorithm 1)."""

import pytest

from repro.core.allocation import AllocationCase
from repro.core.base import LocalView, NeighbourView, Stream
from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.priority import PriorityPolicy


def _neighbour(node_id, available, send_rate=20.0, positions=None, capacity=600):
    available = frozenset(available)
    return NeighbourView(
        node_id=node_id,
        send_rate=send_rate,
        available=available,
        positions=positions or {seg: 1 for seg in available},
        buffer_capacity=capacity,
    )


def _view(
    old_needed,
    new_needed,
    neighbours,
    *,
    inbound=7.0,
    playback_id=0,
    id_end=4,
    q=2,
    qs=5,
):
    return LocalView(
        now=0.0,
        tau=1.0,
        play_rate=10.0,
        inbound_rate=inbound,
        playback_id=playback_id,
        startup_quota_old=q,
        startup_quota_new=qs,
        old_needed=frozenset(old_needed),
        new_needed=frozenset(new_needed),
        id_end=id_end,
        id_begin=id_end + 1,
        neighbours=tuple(neighbours),
    )


def test_interleaves_old_and_new_segments_like_figure2():
    """With both streams available the request set mixes S1 and S2 segments."""
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour])
    decision = FastSwitchAlgorithm().schedule(view)
    assert len(decision.requests) == 7  # inbound capacity
    assert len(decision.old_requests) > 0
    assert len(decision.new_requests) > 0
    # never exceed the capacity and never request something not needed
    assert decision.requested_ids() <= view.needed()


def test_reports_model_quantities():
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour])
    decision = FastSwitchAlgorithm().schedule(view)
    assert decision.r1 is not None and decision.r2 is not None
    assert decision.r1 + decision.r2 == pytest.approx(view.inbound_rate)
    assert decision.case in list(AllocationCase)
    assert decision.o1 >= 0 and decision.o2 >= 0


def test_zero_capacity_produces_empty_decision():
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour],
                 inbound=0.0)
    decision = FastSwitchAlgorithm().schedule(view)
    assert decision.requests == ()


def test_no_candidates_produces_empty_decision():
    neighbour = _neighbour(1, available=[])
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour])
    decision = FastSwitchAlgorithm().schedule(view)
    assert decision.requests == ()


def test_single_stream_view_degenerates_to_plain_scheduling():
    neighbour = _neighbour(1, available=range(0, 20))
    view = _view(old_needed=range(0, 20), new_needed=[], neighbours=[neighbour], inbound=5.0)
    decision = FastSwitchAlgorithm().schedule(view)
    assert len(decision.requests) == 5
    assert all(r.stream is Stream.OLD for r in decision.requests)
    assert decision.i2 == pytest.approx(0.0)


def test_requests_only_target_suppliers_that_hold_the_segment():
    n1 = _neighbour(1, available={0, 1, 2})
    n2 = _neighbour(2, available={5, 6})
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[n1, n2])
    decision = FastSwitchAlgorithm().schedule(view)
    holders = {1: {0, 1, 2}, 2: {5, 6}}
    for request in decision.requests:
        assert request.seg_id in holders[request.supplier_id]


def test_capacity_never_exceeded_even_with_many_candidates():
    neighbours = [
        _neighbour(1, available=range(0, 30)),
        _neighbour(2, available=range(0, 60)),
    ]
    view = _view(old_needed=range(0, 30), new_needed=range(31, 80), neighbours=neighbours,
                 inbound=9.0, id_end=30)
    decision = FastSwitchAlgorithm().schedule(view)
    assert len(decision.requests) <= 9
    assert len(set(r.seg_id for r in decision.requests)) == len(decision.requests)


def test_urgent_old_segments_requested_before_distant_new_ones():
    """The segment right at the playback deadline must be in the request set."""
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour],
                 inbound=3.0)
    decision = FastSwitchAlgorithm().schedule(view)
    requested = decision.requested_ids()
    assert 0 in requested  # the most urgent old segment


def test_work_conserving_fills_capacity_when_one_stream_is_short():
    # Only 1 new segment available, plenty of old: allocation would reserve
    # rate for the new stream, work conservation reuses it for the old one.
    n_old = _neighbour(1, available=range(0, 20))
    n_new = _neighbour(2, available={25})
    view = _view(old_needed=range(0, 20), new_needed=range(25, 30),
                 neighbours=[n_old, n_new], inbound=10.0, id_end=20)
    conserving = FastSwitchAlgorithm(work_conserving=True).schedule(view)
    strict = FastSwitchAlgorithm(work_conserving=False).schedule(view)
    assert len(conserving.requests) >= len(strict.requests)
    assert len(conserving.requests) == 10


def test_priority_policy_changes_request_composition():
    """When supplier capacity is scarce, rarity decides what gets scheduled.

    All candidate segments are far from their playback deadline (low
    urgency) but the new-source segments are about to be evicted from the
    only supplier's buffer (high rarity).  The paper policy therefore
    schedules the endangered new-source segments first, while the
    sequential policy (no rarity) sticks to the oldest ids -- and because
    the single slow supplier can only send a few segments per period, the
    two policies end up requesting different segments.
    """
    old_ids = list(range(30, 35))
    new_ids = list(range(40, 45))
    positions = {**{s: 1 for s in old_ids}, **{s: 590 + (s - 40) for s in new_ids}}
    supplier = _neighbour(1, available=old_ids + new_ids, send_rate=6.0,
                          positions=positions)
    view = _view(old_needed=old_ids, new_needed=new_ids, neighbours=[supplier],
                 inbound=4.0, playback_id=0, id_end=39)
    paper = FastSwitchAlgorithm(priority_policy=PriorityPolicy.PAPER).schedule(view)
    sequential = FastSwitchAlgorithm(priority_policy=PriorityPolicy.SEQUENTIAL).schedule(view)
    assert paper.requested_ids() != sequential.requested_ids()
    # the paper policy rescues at least one endangered new-source segment
    assert any(seg in paper.requested_ids() for seg in new_ids)


def test_algorithm_is_stateless_across_calls():
    neighbour = _neighbour(1, available=range(0, 10))
    view = _view(old_needed=range(0, 5), new_needed=range(5, 10), neighbours=[neighbour])
    algorithm = FastSwitchAlgorithm()
    first = algorithm.schedule(view)
    second = algorithm.schedule(view)
    assert first.requested_ids() == second.requested_ids()
    assert first.i1 == second.i1 and first.i2 == second.i2
