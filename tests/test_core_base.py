"""Tests for the shared core data model (views, decisions, validation)."""

import pytest

from repro.core.base import (
    LocalView,
    NeighbourView,
    ScheduleDecision,
    SegmentRequest,
    Stream,
    validate_view,
)


def _view(**overrides):
    defaults = dict(
        now=0.0,
        tau=1.0,
        play_rate=10.0,
        inbound_rate=15.0,
        playback_id=100,
        startup_quota_old=10,
        startup_quota_new=50,
        old_needed=frozenset({101, 102}),
        new_needed=frozenset({200, 201}),
        id_end=150,
        id_begin=151,
        neighbours=(
            NeighbourView(
                node_id=1,
                send_rate=10.0,
                available=frozenset({101, 200}),
                positions={101: 5, 200: 2},
                buffer_capacity=600,
            ),
        ),
    )
    defaults.update(overrides)
    return LocalView(**defaults)


def test_view_counts_and_stream_classification():
    view = _view()
    assert view.q1 == 2
    assert view.q2 == 2
    assert view.stream_of(120) is Stream.OLD
    assert view.stream_of(151) is Stream.NEW
    assert view.stream_of(400) is Stream.NEW


def test_stream_classification_without_switch_info():
    view = _view(id_end=None, id_begin=None, new_needed=frozenset())
    assert view.stream_of(99999) is Stream.OLD


def test_suppliers_of_and_needed_union():
    view = _view()
    assert [n.node_id for n in view.suppliers_of(101)] == [1]
    assert view.suppliers_of(102) == ()
    assert view.needed() == frozenset({101, 102, 200, 201})


def test_capacity_segments_rounds_rate_times_period():
    assert _view(inbound_rate=15.4).capacity_segments() == 15
    assert _view(inbound_rate=15.6).capacity_segments() == 16
    assert _view(inbound_rate=0.0).capacity_segments() == 0


def test_neighbour_position_defaults_to_newest():
    neighbour = NeighbourView(node_id=2, send_rate=1.0, available=frozenset({7}))
    assert neighbour.position_of(7) == 1


def test_decision_partitions_requests_by_stream():
    decision = ScheduleDecision(
        requests=(
            SegmentRequest(seg_id=101, supplier_id=1, stream=Stream.OLD),
            SegmentRequest(seg_id=200, supplier_id=1, stream=Stream.NEW),
        ),
        i1=1.0,
        i2=1.0,
    )
    assert [r.seg_id for r in decision.old_requests] == [101]
    assert [r.seg_id for r in decision.new_requests] == [200]
    assert decision.requested_ids() == frozenset({101, 200})


def test_validate_view_accepts_well_formed_view():
    validate_view(_view())  # should not raise


def test_validate_view_rejects_overlapping_needs():
    with pytest.raises(ValueError, match="overlap"):
        validate_view(_view(new_needed=frozenset({101})))


def test_validate_view_rejects_bad_switch_boundary():
    with pytest.raises(ValueError, match="id_begin"):
        validate_view(_view(id_begin=140))


def test_validate_view_rejects_nonpositive_parameters():
    with pytest.raises(ValueError):
        validate_view(_view(tau=0.0))
    with pytest.raises(ValueError):
        validate_view(_view(play_rate=0.0))
    with pytest.raises(ValueError):
        validate_view(_view(inbound_rate=-1.0))


def test_validate_view_rejects_bad_neighbours():
    bad_rate = NeighbourView(node_id=1, send_rate=-1.0, available=frozenset())
    with pytest.raises(ValueError):
        validate_view(_view(neighbours=(bad_rate,)))
    bad_capacity = NeighbourView(
        node_id=1, send_rate=1.0, available=frozenset(), buffer_capacity=0
    )
    with pytest.raises(ValueError):
        validate_view(_view(neighbours=(bad_capacity,)))


def test_stream_enum_labels():
    assert str(Stream.OLD) == "S1"
    assert str(Stream.NEW) == "S2"
