"""End-to-end assertions of the paper's qualitative claims (small scale).

These tests run paired simulations on small overlays and check the *shape*
of the paper's headline results rather than absolute numbers:

* the fast switch algorithm never loses (the average switch time is not
  larger than the normal algorithm's, within a small tolerance),
* the trade-off structure of Figure 6 holds: the fast algorithm finishes
  the old stream no earlier than the baseline but prepares the new stream
  no later,
* the communication overhead stays small and the fast algorithm does not
  add overhead,
* the model's closed-form optimum is a lower bound on what the simulated
  peers achieve.
"""

import pytest

from repro.core.model import optimal_split
from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair


@pytest.fixture(scope="module")
def paired_result():
    """One paired run shared by the assertions in this module."""
    config = make_session_config(120, seed=3, max_time=120.0)
    return run_pair(config)


def test_everyone_completes_the_switch(paired_result):
    assert paired_result.normal.metrics.unfinished == 0
    assert paired_result.fast.metrics.unfinished == 0


def test_fast_switch_is_not_slower_than_normal(paired_result):
    normal = paired_result.normal.metrics.avg_switch_time
    fast = paired_result.fast.metrics.avg_switch_time
    assert fast <= normal * 1.02  # allow 2% noise, expect a clear win in practice


def test_figure6_bar_ordering(paired_result):
    """normal finish <= fast finish <= fast prepare <= normal prepare."""
    n = paired_result.normal.metrics
    f = paired_result.fast.metrics
    tolerance = 1.0  # one scheduling period of slack
    assert n.avg_finish_old <= f.avg_finish_old + tolerance
    assert f.avg_finish_old <= f.avg_prepare_new + tolerance
    assert f.avg_prepare_new <= n.avg_prepare_new + tolerance


def test_switch_time_respects_both_conditions(paired_result):
    for result in (paired_result.normal, paired_result.fast):
        metrics = result.metrics
        assert metrics.avg_start_time >= metrics.avg_prepare_new - 1e-9
        assert metrics.avg_start_time >= metrics.avg_finish_old - 1e-9
        for outcome in metrics.outcomes:
            assert outcome.switch_complete_time >= outcome.prepared_new_time - 1e-9
            assert outcome.switch_complete_time >= outcome.finish_old_time - 1e-9


def test_communication_overhead_small_and_not_increased_by_fast(paired_result):
    normal = paired_result.normal.overhead_ratio
    fast = paired_result.fast.overhead_ratio
    assert 0.001 < normal < 0.06
    assert 0.001 < fast < 0.06
    assert fast <= normal * 1.10  # "without bringing extra communication overhead"


def test_model_lower_bound_is_not_violated(paired_result):
    """No peer switches faster than the closed-form optimum allows."""
    config = paired_result.fast.config
    for outcome in paired_result.fast.metrics.outcomes:
        if outcome.prepared_new_time is None:
            continue
        split = optimal_split(
            inbound=config.inbound_high,  # most generous bound: fastest possible peer
            q1=0.0,                        # assume no old-stream work at all
            q2=config.startup_quota_new,
            q=config.startup_quota_old,
            p=config.play_rate,
        )
        assert outcome.prepared_new_time >= split.t2 - config.tau - 1e-9


def test_reduction_ratio_reported_consistently(paired_result):
    row = paired_result.comparison("integration")
    expected = 1.0 - (
        paired_result.fast.metrics.avg_switch_time
        / paired_result.normal.metrics.avg_switch_time
    )
    assert row.switch_time_reduction == pytest.approx(expected)
    assert row.label == "integration"
