"""Tests for the four-case rate allocation (Section 4)."""

import pytest

from repro.core.allocation import AllocationCase, allocate_for_model, allocate_rates
from repro.core.model import optimal_split


def _split(inbound=15.0, q1=50.0, q2=50.0, q=10.0, p=10.0):
    return optimal_split(inbound, q1, q2, q, p)


def test_case1_optimum_feasible_uses_r1_r2():
    split = _split()
    allocation = allocate_rates(split, 15.0, o1=100.0, o2=100.0)
    assert allocation.case is AllocationCase.OPTIMUM_FEASIBLE
    assert allocation.i1 == pytest.approx(split.r1)
    assert allocation.i2 == pytest.approx(split.r2)


def test_case2_new_stream_limited():
    split = _split()
    o2 = split.r2 / 2.0
    allocation = allocate_rates(split, 15.0, o1=100.0, o2=o2)
    assert allocation.case is AllocationCase.NEW_LIMITED
    assert allocation.i2 == pytest.approx(o2)
    assert allocation.i1 == pytest.approx(min(100.0, 15.0 - o2))


def test_case3_old_stream_limited():
    split = _split()
    o1 = split.r1 / 2.0
    allocation = allocate_rates(split, 15.0, o1=o1, o2=100.0)
    assert allocation.case is AllocationCase.OLD_LIMITED
    assert allocation.i1 == pytest.approx(o1)
    assert allocation.i2 == pytest.approx(min(100.0, 15.0 - o1))


def test_case4_both_limited():
    split = _split()
    allocation = allocate_rates(split, 15.0, o1=split.r1 / 3.0, o2=split.r2 / 3.0)
    assert allocation.case is AllocationCase.BOTH_LIMITED
    assert allocation.i1 == pytest.approx(split.r1 / 3.0)
    assert allocation.i2 == pytest.approx(split.r2 / 3.0)


def test_allocation_never_exceeds_inbound_even_with_huge_o2():
    split = _split()
    allocation = allocate_rates(split, 15.0, o1=0.5, o2=40.0)
    assert allocation.total <= 15.0 + 1e-9
    assert allocation.i1 >= 0.0 and allocation.i2 >= 0.0


def test_zero_outbound_towards_new_source_gives_it_nothing():
    split = _split()
    allocation = allocate_rates(split, 15.0, o1=20.0, o2=0.0)
    assert allocation.i2 == 0.0
    assert allocation.i1 <= 15.0


def test_negative_inputs_rejected():
    split = _split()
    with pytest.raises(ValueError):
        allocate_rates(split, -1.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        allocate_rates(split, 1.0, -1.0, 1.0)
    with pytest.raises(ValueError):
        allocate_rates(split, 1.0, 1.0, -1.0)


def test_allocate_for_model_convenience_wrapper():
    allocation = allocate_for_model(15.0, 50.0, 50.0, 10.0, 10.0, o1=100.0, o2=100.0)
    assert allocation.case is AllocationCase.OPTIMUM_FEASIBLE
    assert allocation.split.r1 == pytest.approx(optimal_split(15.0, 50.0, 50.0, 10.0, 10.0).r1)
    assert allocation.total == pytest.approx(15.0)
