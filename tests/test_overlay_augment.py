"""Tests for the random-edge augmentation step."""

import numpy as np
import pytest

from repro.overlay.augment import AugmentationError, augment_to_min_degree
from repro.overlay.generator import generate_trace
from repro.overlay.topology import NodeInfo, Overlay, build_overlay_from_trace


def _chain(n: int) -> Overlay:
    overlay = Overlay()
    for i in range(n):
        overlay.add_node(NodeInfo(node_id=i))
    for i in range(n - 1):
        overlay.add_edge(i, i + 1)
    return overlay


def test_every_node_reaches_min_degree():
    overlay = _chain(50)
    rng = np.random.default_rng(0)
    added = augment_to_min_degree(overlay, 5, rng)
    assert added > 0
    assert all(overlay.degree(n) >= 5 for n in overlay.node_ids)


def test_existing_edges_are_preserved():
    overlay = _chain(30)
    before = set(overlay.edges())
    augment_to_min_degree(overlay, 4, np.random.default_rng(1))
    after = set(overlay.edges())
    assert before <= after


def test_paper_setting_on_generated_trace():
    overlay = build_overlay_from_trace(generate_trace(400, seed=3))
    augment_to_min_degree(overlay, 5, np.random.default_rng(3))
    degrees = [overlay.degree(n) for n in overlay.node_ids]
    assert min(degrees) >= 5
    # augmentation should not explode the average degree
    assert overlay.average_degree() < 12.0


def test_min_degree_zero_is_noop():
    overlay = _chain(10)
    edges = overlay.edge_count()
    assert augment_to_min_degree(overlay, 0, np.random.default_rng(0)) == 0
    assert overlay.edge_count() == edges


def test_too_small_overlay_raises():
    overlay = _chain(4)
    with pytest.raises(AugmentationError):
        augment_to_min_degree(overlay, 5, np.random.default_rng(0))


def test_negative_min_degree_rejected():
    overlay = _chain(10)
    with pytest.raises(ValueError):
        augment_to_min_degree(overlay, -1, np.random.default_rng(0))


def test_complete_graph_needs_no_edges():
    overlay = Overlay()
    for i in range(6):
        overlay.add_node(NodeInfo(node_id=i))
    for i in range(6):
        for j in range(i + 1, 6):
            overlay.add_edge(i, j)
    assert augment_to_min_degree(overlay, 5, np.random.default_rng(0)) == 0


def test_deterministic_for_fixed_rng_seed():
    overlay_a = _chain(40)
    overlay_b = _chain(40)
    augment_to_min_degree(overlay_a, 5, np.random.default_rng(9))
    augment_to_min_degree(overlay_b, 5, np.random.default_rng(9))
    assert sorted(overlay_a.edges()) == sorted(overlay_b.edges())
