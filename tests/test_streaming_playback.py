"""Tests for the per-stream playback state machine."""

import pytest

from repro.streaming.buffer import SegmentBuffer
from repro.streaming.playback import PlaybackState


def _buffer(ids):
    buffer = SegmentBuffer(capacity=None)
    buffer.insert_many(ids)
    return buffer


def test_playback_requires_startup_quota_before_starting():
    playback = PlaybackState(play_rate=10.0, startup_quota=5, position=0)
    buffer = _buffer(range(0, 3))
    assert not playback.maybe_start(buffer, now=0.0)
    buffer.insert_many(range(3, 5))
    assert playback.maybe_start(buffer, now=1.0)
    assert playback.start_time == 1.0


def test_startup_quota_clipped_by_stream_end():
    playback = PlaybackState(play_rate=10.0, startup_quota=10, position=95, last_id=99)
    buffer = _buffer(range(95, 100))
    assert playback.can_start(buffer)


def test_advance_plays_rate_times_duration_segments():
    playback = PlaybackState(play_rate=10.0, startup_quota=1, position=0, started=True)
    buffer = _buffer(range(0, 100))
    played = playback.advance(buffer, now=0.0, duration=1.0)
    assert played == 10
    assert playback.position == 10
    assert playback.played == 10


def test_fractional_play_budget_carries_over():
    playback = PlaybackState(play_rate=2.5, startup_quota=1, position=0, started=True)
    buffer = _buffer(range(0, 100))
    assert playback.advance(buffer, 0.0, 1.0) == 2
    assert playback.advance(buffer, 1.0, 1.0) == 3  # carry makes up the .5


def test_missing_segment_stalls_and_requires_rebuffering():
    playback = PlaybackState(play_rate=10.0, startup_quota=3, position=0, started=True)
    buffer = _buffer([0, 1, 2, 4, 5])  # 3 is missing
    played = playback.advance(buffer, 0.0, 1.0)
    assert played == 3
    assert playback.stall_periods == 1
    assert not playback.started  # must re-buffer
    # with the hole filled and the startup quota satisfied it resumes
    buffer.insert(3)
    assert playback.maybe_start(buffer, 1.0)
    assert playback.advance(buffer, 1.0, 1.0) == 3  # segments 3, 4, 5 remain... plus more


def test_finite_stream_finishes_and_records_time():
    playback = PlaybackState(play_rate=10.0, startup_quota=1, position=0, started=True,
                             last_id=14)
    buffer = _buffer(range(0, 15))
    playback.advance(buffer, 0.0, 1.0)
    assert not playback.finished
    playback.advance(buffer, 1.0, 1.0)
    assert playback.finished
    assert playback.finish_time == pytest.approx(2.0)
    # advancing a finished stream is a no-op
    assert playback.advance(buffer, 2.0, 1.0) == 0


def test_not_started_stream_does_not_consume():
    playback = PlaybackState(play_rate=10.0, startup_quota=5, position=0)
    buffer = _buffer(range(0, 3))
    assert playback.advance(buffer, 0.0, 1.0) == 0
    assert playback.position == 0


def test_remaining_ids_and_progress():
    playback = PlaybackState(play_rate=10.0, startup_quota=1, position=5, started=True,
                             last_id=24)
    buffer = _buffer(range(0, 25))
    assert playback.remaining_ids() == range(5, 25)
    playback.advance(buffer, 0.0, 1.0)
    assert 0.0 < playback.progress() < 1.0
    playback.advance(buffer, 1.0, 1.0)
    assert playback.progress() == 1.0
    open_ended = PlaybackState(play_rate=10.0, startup_quota=1, position=0)
    assert open_ended.remaining_ids() is None
    assert open_ended.progress() == 0.0


def test_validation_of_parameters():
    with pytest.raises(ValueError):
        PlaybackState(play_rate=0.0, startup_quota=1, position=0)
    with pytest.raises(ValueError):
        PlaybackState(play_rate=1.0, startup_quota=0, position=0)
    playback = PlaybackState(play_rate=1.0, startup_quota=1, position=0, started=True)
    with pytest.raises(ValueError):
        playback.advance(_buffer([]), 0.0, -1.0)
