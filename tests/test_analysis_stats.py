"""Tests for summary statistics and paired comparisons."""

import pytest

from repro.analysis.stats import paired_comparison, summarize


def test_summarize_basic_statistics():
    stats = summarize([10.0, 12.0, 14.0])
    assert stats.n == 3
    assert stats.mean == pytest.approx(12.0)
    assert stats.minimum == 10.0 and stats.maximum == 14.0
    assert stats.std == pytest.approx(2.0)
    assert stats.ci_half_width > 0
    assert stats.ci_low < stats.mean < stats.ci_high
    assert "±" in stats.format("s")


def test_summarize_single_value_has_zero_spread():
    stats = summarize([5.0])
    assert stats.std == 0.0
    assert stats.ci_half_width == 0.0
    assert stats.ci_low == stats.ci_high == 5.0


def test_summarize_validation():
    with pytest.raises(ValueError):
        summarize([])
    with pytest.raises(ValueError):
        summarize([1.0, 2.0], confidence=0.33)


def test_higher_confidence_widens_interval():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    narrow = summarize(values, confidence=0.80)
    wide = summarize(values, confidence=0.99)
    assert wide.ci_half_width > narrow.ci_half_width


def test_paired_comparison_reduction_and_sign_counts():
    baseline = [20.0, 22.0, 18.0, 21.0]
    treatment = [16.0, 17.0, 19.0, 21.0]
    comparison = paired_comparison(baseline, treatment)
    assert comparison.n == 4
    assert comparison.wins == 2
    assert comparison.losses == 1
    assert comparison.ties == 1
    assert comparison.win_rate == pytest.approx((2 + 0.5) / 4)
    expected_reduction = sum((b - t) / b for b, t in zip(baseline, treatment)) / 4
    assert comparison.mean_reduction == pytest.approx(expected_reduction)
    assert comparison.baseline.mean == pytest.approx(20.25)
    assert comparison.treatment.mean == pytest.approx(18.25)


def test_paired_comparison_validation():
    with pytest.raises(ValueError):
        paired_comparison([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        paired_comparison([], [])


def test_paired_comparison_handles_zero_baseline():
    comparison = paired_comparison([0.0, 10.0], [0.0, 5.0])
    # the zero-baseline pair contributes zero reduction instead of dividing by zero
    assert comparison.mean_reduction == pytest.approx(0.25)
