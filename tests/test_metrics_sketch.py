"""Tests for the mergeable quantile sketch and stream accumulators.

Pins both halves of the exactness contract documented in
:mod:`repro.metrics.sketch`: exact percentiles (bit-identical to
``numpy.percentile`` and hence to :func:`zap_time_stats`) while the sample
count stays within capacity, and a bounded relative error once the sketch
has compressed.
"""

import json

import numpy as np
import pytest

from repro.metrics.sketch import (
    DEFAULT_SKETCH_CAPACITY,
    QuantileSketch,
    StreamAccumulator,
    sketch_of,
)

#: Relative-error tolerance pinned for compressed sketches on the shipped
#: percentiles (p50/p90/p99).  The dist layer's merge contract relies on it.
COMPRESSED_RTOL = 0.01


class TestStreamAccumulator:
    def test_empty(self):
        acc = StreamAccumulator()
        assert acc.count == 0 and acc.mean == 0.0

    def test_add_and_merge_are_exact(self):
        left, right = StreamAccumulator(), StreamAccumulator()
        for v in (1.5, 2.0, -3.25):
            left.add(v)
        right.add(10.0, weight=4)
        left.merge(right)
        assert left.count == 7
        assert left.total == 1.5 + 2.0 + -3.25 + 40.0
        assert left.minimum == -3.25 and left.maximum == 10.0

    def test_merge_empty_is_identity(self):
        acc = StreamAccumulator()
        acc.add(2.0)
        before = acc.to_dict()
        acc.merge(StreamAccumulator())
        assert acc.to_dict() == before

    def test_round_trip(self):
        acc = StreamAccumulator()
        acc.add(0.1)
        acc.add(7.7, weight=3)
        rebuilt = StreamAccumulator.from_dict(json.loads(json.dumps(acc.to_dict())))
        assert rebuilt == acc
        empty = StreamAccumulator.from_dict(
            json.loads(json.dumps(StreamAccumulator().to_dict()))
        )
        assert empty == StreamAccumulator()

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            StreamAccumulator().add(1.0, weight=0)


class TestExactMode:
    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.percentile(50.0) == 0.0
        assert sketch.mean == 0.0

    def test_percentiles_match_numpy_exactly(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(3.0, size=500).tolist()
        sketch = sketch_of(samples)
        assert sketch.exact
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert sketch.percentile(q) == float(np.percentile(samples, q))
        assert sketch.mean == pytest.approx(float(np.mean(samples)), rel=1e-12)

    def test_merge_stays_exact_within_capacity(self):
        rng = np.random.default_rng(11)
        a, b = rng.normal(5.0, 2.0, 300).tolist(), rng.normal(9.0, 1.0, 200).tolist()
        left, right = sketch_of(a), sketch_of(b)
        left.merge(right)
        assert left.exact and left.count == 500
        pooled = a + b
        for q in (50.0, 90.0, 99.0):
            assert left.percentile(q) == float(np.percentile(pooled, q))

    def test_matches_zap_time_stats_pooling(self):
        """The universe contract: pooled sketch percentiles equal the
        in-memory ``zap_time_stats`` of the concatenated samples."""
        from repro.metrics.collectors import PeerOutcome
        from repro.metrics.universe import zap_time_stats, zap_time_values

        outcomes = [
            PeerOutcome(
                node_id=i,
                q0=0,
                finish_old_time=1.0,
                prepared_new_time=0.5 * i,
                switch_complete_time=(None if i % 7 == 0 else 0.5 * i),
            )
            for i in range(60)
        ]
        values, unfinished = zap_time_values(outcomes, horizon=40.0)
        stats = zap_time_stats(outcomes, horizon=40.0)
        sketch = sketch_of(values)
        assert unfinished > 0  # the horizon samples are in the distribution
        assert sketch.percentile(50.0) == stats.p50
        assert sketch.percentile(90.0) == stats.p90
        assert sketch.percentile(99.0) == stats.p99
        assert sketch.mean == pytest.approx(stats.mean, rel=1e-12)


class TestCompressedMode:
    def test_compression_preserves_count_and_sum(self):
        rng = np.random.default_rng(3)
        samples = rng.gamma(2.0, 2.0, size=5000).tolist()
        sketch = sketch_of(samples, capacity=64)
        assert sketch.compressed and not sketch.exact
        assert sketch.count == len(samples)
        assert len(sketch.values) <= 64
        assert sketch.mean == pytest.approx(float(np.mean(samples)), rel=1e-9)

    def test_compressed_percentiles_within_tolerance(self):
        rng = np.random.default_rng(5)
        samples = rng.exponential(4.0, size=20000).tolist()
        sketch = sketch_of(samples, capacity=256)
        for q in (50.0, 90.0, 99.0):
            exact = float(np.percentile(samples, q))
            assert sketch.percentile(q) == pytest.approx(exact, rel=COMPRESSED_RTOL)

    def test_merge_of_compressed_shards_within_tolerance(self):
        """Shard-wise sketches merged in shard order approximate the pooled
        distribution -- the dist layer's streaming-aggregation contract."""
        rng = np.random.default_rng(9)
        shards = [rng.lognormal(1.0, 0.6, size=4000).tolist() for _ in range(6)]
        merged = QuantileSketch(capacity=512)
        for shard in shards:
            merged.merge(sketch_of(shard, capacity=512))
        pooled = [v for shard in shards for v in shard]
        for q in (50.0, 90.0, 99.0):
            exact = float(np.percentile(pooled, q))
            assert merged.percentile(q) == pytest.approx(exact, rel=COMPRESSED_RTOL)

    def test_compression_is_order_independent(self):
        """The centroid set depends only on the inserted multiset."""
        rng = np.random.default_rng(13)
        samples = rng.uniform(0.0, 10.0, size=1000).tolist()
        forward = sketch_of(samples, capacity=32)
        backward = sketch_of(list(reversed(samples)), capacity=32)
        assert forward.values == backward.values
        assert forward.weights == backward.weights

    def test_merge_in_fixed_order_is_deterministic(self):
        rng = np.random.default_rng(17)
        shards = [rng.normal(0.0, 1.0, size=900).tolist() for _ in range(4)]

        def merged():
            out = QuantileSketch(capacity=128)
            for shard in shards:
                out.merge(sketch_of(shard, capacity=128))
            return out

        first, second = merged(), merged()
        assert first.values == second.values and first.weights == second.weights


class TestTailClamping:
    """Exact extremes survive compression, merging and serialisation.

    Compression interpolates between centroid means, so without the
    tracked extremes ``percentile(0)``/``percentile(100)`` would drift
    inward toward the first/last centroid -- and the universe figures'
    tail rows would under-report the worst zap time.
    """

    def test_compressed_tails_are_exact(self):
        rng = np.random.default_rng(29)
        samples = rng.exponential(4.0, size=20000).tolist()
        sketch = sketch_of(samples, capacity=64)
        assert sketch.compressed
        assert sketch.percentile(0.0) == min(samples)
        assert sketch.percentile(100.0) == max(samples)

    def test_tails_clamp_out_of_range_queries(self):
        sketch = sketch_of([1.0, 2.0, 3.0] * 200, capacity=16)
        assert sketch.percentile(-5.0) == 1.0
        assert sketch.percentile(250.0) == 3.0

    def test_merge_takes_the_extremes_of_both_sides(self):
        low = sketch_of(list(np.linspace(0.5, 10.0, 500)), capacity=32)
        high = sketch_of(list(np.linspace(20.0, 99.5, 500)), capacity=32)
        low.merge(high)
        assert low.percentile(0.0) == 0.5
        assert low.percentile(100.0) == 99.5

    def test_extremes_round_trip_through_json(self):
        rng = np.random.default_rng(31)
        sketch = sketch_of(rng.gamma(2.0, 3.0, size=5000).tolist(), capacity=64)
        rebuilt = QuantileSketch.from_dict(json.loads(json.dumps(sketch.to_dict())))
        assert rebuilt.minimum == sketch.minimum
        assert rebuilt.maximum == sketch.maximum
        assert rebuilt.percentile(0.0) == sketch.percentile(0.0)
        assert rebuilt.percentile(100.0) == sketch.percentile(100.0)

    def test_legacy_payload_without_extremes_falls_back_to_centroids(self):
        # Payloads written before the extremes existed must still load;
        # the bounds degrade to the surviving centroid means.
        sketch = sketch_of([float(v) for v in range(1000)], capacity=32)
        payload = sketch.to_dict()
        del payload["minimum"], payload["maximum"]
        rebuilt = QuantileSketch.from_dict(payload)
        assert rebuilt.percentile(0.0) == min(rebuilt.values)
        assert rebuilt.percentile(100.0) == max(rebuilt.values)


class TestSerialisation:
    def test_json_round_trip_exact(self):
        rng = np.random.default_rng(21)
        for capacity, n in ((DEFAULT_SKETCH_CAPACITY, 100), (64, 1000)):
            sketch = sketch_of(rng.exponential(2.0, size=n).tolist(), capacity=capacity)
            rebuilt = QuantileSketch.from_dict(json.loads(json.dumps(sketch.to_dict())))
            assert rebuilt == sketch
            assert rebuilt.percentile(90.0) == sketch.percentile(90.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(capacity=1)
