"""Tests for the sim-time protocol probes (:mod:`repro.obs.probes`).

Covers the probe layer's tentpole properties:

* the three probes record what instrumented code reports, with bounded
  (keep-first-N) buffers and dropped counters;
* the null probe set is a true no-op and probes are off by default --
  even under a plain ``--telemetry`` session;
* probes are provably inert: results and store documents are
  byte-identical with probes on and off (telemetry document excluded);
* both engines emit **identical** probe event streams for the same
  configuration -- the differential guarantee that makes a probe
  timeline trustworthy regardless of engine choice.
"""

import json
from dataclasses import replace

import pytest

from conftest import normalized_run_document, store_documents
from repro.experiments.store import ResultStore, persist_telemetry_document
from repro.obs import (
    build_telemetry_document,
    get_telemetry,
    telemetry_session,
)
from repro.obs.probes import (
    DROP_NO_BUDGET,
    DROP_REASONS,
    FUNNEL_MILESTONES,
    NULL_PROBES,
    ProbeSet,
    SegmentLifecycleProbe,
    StartupFunnelProbe,
    SwarmHealthProbe,
    STAGE_DELIVERED,
    STAGE_DROPPED,
    STAGE_NAMES,
    STAGE_REQUESTED,
    STAGE_SCHEDULED,
)
from repro.streaming.session import SwitchSession


# --------------------------------------------------------------------------- #
# segment lifecycle ring buffer
# --------------------------------------------------------------------------- #
def test_lifecycle_keeps_first_n_and_counts_drops():
    probe = SegmentLifecycleProbe(capacity=3)
    for i in range(5):
        probe.append(float(i), i, peer=1, seg=i, stage=STAGE_REQUESTED)
    assert len(probe) == 3
    assert probe.dropped == 2
    assert probe.times == [0.0, 1.0, 2.0]  # first N, never a sliding window


def test_lifecycle_extend_matches_append():
    by_append = SegmentLifecycleProbe()
    by_extend = SegmentLifecycleProbe()
    rows = [(1.0, 0, 7, 100, STAGE_SCHEDULED, 3, 0.25),
            (2.0, 1, 7, 101, STAGE_DELIVERED, 3, 0.5)]
    for row in rows:
        by_append.append(*row)
    by_extend.extend(rows)
    assert by_append.rows() == by_extend.rows()


def test_lifecycle_rows_filter_and_counts():
    probe = SegmentLifecycleProbe()
    probe.append(1.0, 0, peer=1, seg=10, stage=STAGE_REQUESTED)
    probe.append(1.0, 0, peer=2, seg=10, stage=STAGE_REQUESTED)
    probe.append(2.0, 1, peer=1, seg=10, stage=STAGE_DROPPED,
                 supplier=5, value=DROP_NO_BUDGET)
    assert [r["peer"] for r in probe.rows(peer=1)] == [1, 1]
    assert [r["seg"] for r in probe.rows(seg=10)] == [10, 10, 10]
    assert probe.rows(peer=1)[1]["stage"] == "dropped"
    assert probe.stage_counts() == {"requested": 2, "dropped": 1}
    assert probe.drop_reason_counts() == {"no_budget": 1}
    snapshot = probe.snapshot()
    assert snapshot["events"] == 3 and snapshot["dropped"] == 0
    json.dumps(snapshot)


def test_stage_names_aligned_with_codes():
    assert len(STAGE_NAMES) == 7
    assert STAGE_NAMES[STAGE_REQUESTED] == "requested"
    assert STAGE_NAMES[STAGE_DROPPED] == "dropped"
    assert len(DROP_REASONS) == 3


# --------------------------------------------------------------------------- #
# swarm health series
# --------------------------------------------------------------------------- #
def test_health_sample_percentiles_and_snapshot():
    probe = SwarmHealthProbe()
    probe.sample(1.0, "ch0", [0, 5, 10], pending=4, utilisation=0.5,
                 requests=6, failed=1, delivered=5)
    probe.sample(2.0, "ch1", [10, 10, 10], pending=0, utilisation=0.9,
                 requests=3, failed=0, delivered=3)
    rows = probe.rows()
    assert len(rows) == 2
    assert rows[0]["peers"] == 3 and rows[0]["fill_p50"] == 5.0
    assert probe.rows(label="ch1")[0]["utilisation"] == 0.9
    snapshot = probe.snapshot()
    assert snapshot["periods"] == 2
    assert snapshot["buffer_fill"]["count"] == 6  # cumulative across periods
    assert snapshot["buffer_fill"]["p90"] == 10.0
    json.dumps(snapshot)


def test_health_capacity_bound():
    probe = SwarmHealthProbe(capacity=1)
    for t in range(3):
        probe.sample(float(t), "x", [1], pending=0, utilisation=0.0,
                     requests=0, failed=0, delivered=0)
    assert len(probe) == 1 and probe.dropped == 2


# --------------------------------------------------------------------------- #
# startup funnel
# --------------------------------------------------------------------------- #
def test_funnel_marks_are_set_once():
    probe = StartupFunnelProbe()
    probe.mark("ch0", 1, "joined", 0.0)
    probe.mark("ch0", 1, "playback", 12.0)
    probe.mark("ch0", 1, "playback", 99.0)  # later report must not overwrite
    assert probe.seen("ch0", 1, "playback")
    assert not probe.seen("ch0", 1, "first_map")
    (row,) = probe.peer_rows(label="ch0")
    assert row["playback"] == 12.0 and row["first_map"] is None


def test_funnel_rows_aggregate_per_label():
    probe = StartupFunnelProbe()
    for peer, playback in ((1, 10.0), (2, 14.0)):
        probe.mark("ch0", peer, "joined", 2.0)
        probe.mark("ch0", peer, "playback", playback)
    probe.mark("ch1", 3, "joined", 0.0)
    rows = probe.funnel_rows()
    assert [row["label"] for row in rows] == ["ch0", "ch1"]
    ch0 = rows[0]
    assert ch0["joined"] == 2 and ch0["playback"] == 2
    assert ch0["playback_mean_s"] == 10.0  # mean of (10-2, 14-2)
    assert rows[1]["playback"] == 0 and rows[1]["playback_mean_s"] is None
    assert tuple(FUNNEL_MILESTONES)[0] == "joined"
    json.dumps(probe.snapshot())


# --------------------------------------------------------------------------- #
# the null probe set and the telemetry switch
# --------------------------------------------------------------------------- #
def test_null_probes_are_inert():
    assert NULL_PROBES.enabled is False
    NULL_PROBES.lifecycle.append(1.0, 0, 1, 2, STAGE_REQUESTED)
    NULL_PROBES.lifecycle.extend([(1.0, 0, 1, 2, STAGE_REQUESTED, -1, 0.0)])
    NULL_PROBES.health.sample(1.0, "x", [1], pending=0, utilisation=0.0,
                              requests=0, failed=0, delivered=0)
    NULL_PROBES.funnel.mark("x", 1, "joined", 0.0)
    assert len(NULL_PROBES.lifecycle) == 0
    assert len(NULL_PROBES.health) == 0
    assert len(NULL_PROBES.funnel) == 0
    assert NULL_PROBES.funnel.seen("x", 1, "joined") is False
    assert NULL_PROBES.snapshot() == {"enabled": False}


def test_probes_are_off_by_default_even_with_telemetry_on():
    assert get_telemetry().probes is NULL_PROBES
    with telemetry_session() as telemetry:
        assert telemetry.probes is NULL_PROBES
    with telemetry_session(probes=True) as telemetry:
        assert isinstance(telemetry.probes, ProbeSet)
        assert telemetry.probes.enabled
        assert get_telemetry().probes is telemetry.probes
    assert get_telemetry().probes is NULL_PROBES


def test_telemetry_document_carries_the_probes_block(tiny_config):
    with telemetry_session(probes=True) as telemetry:
        SwitchSession(tiny_config).run()
    document = build_telemetry_document(telemetry, run={"kind": "run"})
    probes = document["probes"]
    assert probes["enabled"] is True
    assert probes["lifecycle"]["events"] > 0
    assert probes["health"]["periods"] > 0
    # Every tracked peer joins the funnel (sources are not tracked peers).
    assert 0 < probes["funnel"]["peers"] <= tiny_config.n_nodes
    json.dumps(document)
    # A probe-less telemetry session exports the disabled marker only.
    with telemetry_session() as plain:
        pass
    assert build_telemetry_document(plain)["probes"] == {"enabled": False}


# --------------------------------------------------------------------------- #
# engine parity: the differential guarantee
# --------------------------------------------------------------------------- #
def _probed_run(config):
    with telemetry_session(probes=True) as telemetry:
        result = SwitchSession(config).run()
    probes = telemetry.probes
    lifecycle = (probes.lifecycle.times, probes.lifecycle.periods,
                 probes.lifecycle.peers, probes.lifecycle.segs,
                 probes.lifecycle.stages, probes.lifecycle.suppliers,
                 probes.lifecycle.values)
    return (normalized_run_document(result), lifecycle,
            probes.health.rows(), probes.funnel.peer_rows(),
            probes.snapshot())


def test_scalar_and_vector_emit_identical_probe_streams(tiny_config):
    """The acceptance criterion: a paired session produces the same probe
    event stream under both engines, column for column."""
    oracle = _probed_run(replace(tiny_config, engine="oracle"))
    vector = _probed_run(replace(tiny_config, engine="vector"))
    assert oracle[0] == vector[0]  # simulation results
    assert oracle[1] == vector[1]  # lifecycle columns
    assert oracle[2] == vector[2]  # health rows
    assert oracle[3] == vector[3]  # funnel rows
    assert json.dumps(oracle[4], sort_keys=True) == \
        json.dumps(vector[4], sort_keys=True)
    assert oracle[4]["lifecycle"]["events"] > 0


def test_probes_do_not_change_session_results(tiny_config):
    baseline = normalized_run_document(SwitchSession(tiny_config).run())
    probed, *_ = _probed_run(tiny_config)
    assert probed == baseline


# --------------------------------------------------------------------------- #
# store inertness
# --------------------------------------------------------------------------- #
def test_universe_store_documents_identical_with_probes_on_and_off(tmp_path):
    """Probes off -> the store is byte-identical to current main; probes on
    -> only the telemetry document differs (and it carries the probes)."""
    from repro.channels.runner import run_universe
    from repro.workloads.library import get_universe

    spec = get_universe("lineup-mini").scaled_to(n_channels=2, n_viewers=24)

    def run_into(root):
        store = ResultStore(root)
        run_universe(spec, seed=3, repetitions=1, workers=1, store=store,
                     compute_engine=None, shards=None)
        return store

    run_into(tmp_path / "off")
    with telemetry_session(probes=True):
        store_on = run_into(tmp_path / "on")
        key = persist_telemetry_document(
            store_on, run={"kind": "universe", "name": spec.name}
        )
    documents_off = store_documents(tmp_path / "off")
    documents_on = store_documents(tmp_path / "on")
    telemetry_docs = [name for name in documents_on
                      if name.startswith("telemetry-")]
    assert len(telemetry_docs) == 2  # the document plus its .meta.json sidecar
    probes_block = store_on.load_telemetry(key)["probes"]
    assert probes_block["enabled"] and probes_block["health"]["periods"] > 0
    for name in telemetry_docs:
        documents_on.pop(name)
    assert documents_on == documents_off
