"""Tests for the link model, the fabrics and locality-aware membership."""

import numpy as np
import pytest

from repro.net.fabric import IdealFabric, LatencyFabric, build_fabric
from repro.net.library import get_topology
from repro.net.link import LinkModel
from repro.net.topology import NetTopology, Region
from repro.overlay.membership import MembershipService
from repro.overlay.topology import NodeInfo, Overlay


def make_topology(loss_a=0.0, loss_b=0.0, jitter=2.0):
    return NetTopology(
        name="ab",
        regions=(
            Region("a", weight=0.5, last_mile_ms=5.0, jitter_ms=jitter, loss=loss_a),
            Region("b", weight=0.5, last_mile_ms=10.0, jitter_ms=jitter, loss=loss_b),
        ),
        latency_ms=((1.0, 50.0), (50.0, 2.0)),
    )


class TestLinkModel:
    def test_deterministic_from_seed(self):
        topo = make_topology(loss_a=0.1)
        a = LinkModel(topo, np.random.default_rng(7))
        b = LinkModel(topo, np.random.default_rng(7))
        seq_a = [a.transfer(0, 1) for _ in range(50)]
        seq_b = [b.transfer(0, 1) for _ in range(50)]
        assert seq_a == seq_b

    def test_lossless_path_never_drops(self):
        link = LinkModel(make_topology(), np.random.default_rng(0))
        delays = [link.transfer(0, 1) for _ in range(200)]
        assert all(d is not None for d in delays)
        assert link.dropped == 0

    def test_delay_within_jitter_bounds(self):
        link = LinkModel(make_topology(), np.random.default_rng(0))
        # path a->b: backbone 50 + last miles 5 + 10 = 65 ms, jitter +-4 ms
        for _ in range(100):
            delay = link.transfer(0, 1)
            assert 0.061 <= delay <= 0.069

    def test_loss_rate_roughly_matches(self):
        link = LinkModel(make_topology(loss_a=0.2, loss_b=0.2), np.random.default_rng(1))
        n = 3000
        for _ in range(n):
            link.transfer(0, 1)
        # combined loss = 1 - 0.8 * 0.8 = 0.36
        assert link.dropped / n == pytest.approx(0.36, abs=0.04)
        assert link.loss_probability(0, 1) == pytest.approx(0.36)

    def test_intra_region_faster_than_cross_region(self):
        link = LinkModel(make_topology(jitter=0.0), np.random.default_rng(0))
        assert link.base_delay(0, 0) < link.base_delay(0, 1)


class TestIdealFabric:
    def test_constants_and_no_randomness(self):
        fabric = IdealFabric()
        fabric.assign_regions([1, 2, 3])
        fabric.assign_joiner(4)
        assert fabric.region_of(1) == ""
        assert fabric.region_index_of(1) is None
        assert fabric.control_transfer(1, 2) == 0.0
        assert fabric.data_transfer(1, 2) == 0.0
        assert fabric.locality_bias == 1.0
        assert fabric.stats() == {}

    def test_build_fabric_dispatch(self):
        assert isinstance(build_fabric(None, None), IdealFabric)
        fabric = build_fabric(make_topology(), np.random.default_rng(0))
        assert isinstance(fabric, LatencyFabric)
        with pytest.raises(ValueError):
            build_fabric(make_topology(), None)


class TestLatencyFabric:
    def test_assignment_deterministic_and_order_insensitive(self):
        topo = make_topology()
        a = LatencyFabric(topo, np.random.default_rng(3))
        b = LatencyFabric(topo, np.random.default_rng(3))
        a.assign_regions([5, 1, 9, 2])
        b.assign_regions([2, 9, 1, 5])  # same set, different order
        for node in (1, 2, 5, 9):
            assert a.region_of(node) == b.region_of(node)

    def test_pinning_wins_without_perturbing_others(self):
        topo = make_topology()
        free = LatencyFabric(topo, np.random.default_rng(3))
        pinned = LatencyFabric(topo, np.random.default_rng(3))
        nodes = list(range(20))
        free.assign_regions(nodes)
        pinned.assign_regions(nodes, pinned={7: "b"})
        assert pinned.region_of(7) == "b"
        for node in nodes:
            if node != 7:
                assert pinned.region_of(node) == free.region_of(node)

    def test_joiner_assignment_and_pin(self):
        fabric = LatencyFabric(make_topology(), np.random.default_rng(0))
        fabric.assign_joiner(100)
        assert fabric.region_of(100) in ("a", "b")
        fabric.assign_joiner(101, region="a")
        assert fabric.region_of(101) == "a"

    def test_weighted_assignment_follows_region_weights(self):
        topo = NetTopology(
            name="skew",
            regions=(Region("big", weight=0.9), Region("small", weight=0.1)),
            latency_ms=((1.0, 10.0), (10.0, 1.0)),
        )
        fabric = LatencyFabric(topo, np.random.default_rng(0))
        fabric.assign_regions(range(1000))
        counts = fabric.region_counts()
        assert counts["big"] / 1000 == pytest.approx(0.9, abs=0.05)

    def test_stats_accumulate(self):
        fabric = LatencyFabric(make_topology(loss_a=0.3, loss_b=0.3),
                               np.random.default_rng(2))
        fabric.assign_regions([1, 2])
        for _ in range(200):
            fabric.data_transfer(1, 2)
        stats = fabric.stats()
        assert stats["messages"] == 200
        assert stats["dropped"] > 0
        assert 0 < stats["drop_ratio"] < 1
        assert stats["mean_delay_s"] > 0

    def test_unknown_node_treated_as_local(self):
        fabric = LatencyFabric(make_topology(), np.random.default_rng(0))
        assert fabric.data_transfer(404, 405) == 0.0

    def test_library_topology_fabric(self):
        fabric = LatencyFabric(get_topology("transcontinental"),
                               np.random.default_rng(0))
        fabric.assign_regions(range(50))
        regions = {fabric.region_of(n) for n in range(50)}
        assert regions <= {"na-east", "na-west", "europe", "asia"}


def complete_overlay(n):
    overlay = Overlay()
    for node_id in range(n):
        overlay.add_node(NodeInfo(node_id=node_id))
    return overlay


class TestLocalityAwareMembership:
    def test_bias_prefers_same_region_partners(self):
        # Nodes 0..9 in region 0, 10..19 in region 1; node 0 picks partners.
        overlay = complete_overlay(20)
        service = MembershipService(overlay, 5, np.random.default_rng(0))
        service.set_locality(lambda n: 0 if n < 10 else 1, bias=50.0)
        assert service.locality_enabled
        same = 0
        total = 0
        for _ in range(40):
            added = service.repair([0])
            for neighbour in overlay.neighbours(0):
                total += 1
                if neighbour < 10:
                    same += 1
            for neighbour in list(overlay.neighbours(0)):
                overlay.remove_edge(0, neighbour)
        # With bias 50 on a 9-vs-10 candidate split, same-region partners
        # dominate overwhelmingly.
        assert same / total > 0.85

    def test_bias_of_one_keeps_uniform_path(self):
        overlay = complete_overlay(12)
        plain = MembershipService(overlay.copy(), 5, np.random.default_rng(9))
        biased = MembershipService(overlay.copy(), 5, np.random.default_rng(9))
        biased.set_locality(lambda n: n % 2, bias=1.0)  # ignored: bias <= 1
        assert not biased.locality_enabled
        plain.repair([0])
        biased.repair([0])
        assert sorted(plain.overlay.neighbours(0)) == sorted(
            biased.overlay.neighbours(0)
        )

    def test_unknown_regions_count_as_remote(self):
        overlay = complete_overlay(8)
        service = MembershipService(overlay, 3, np.random.default_rng(1))
        service.set_locality(lambda n: None, bias=10.0)
        assert service.repair([0]) > 0  # no crash, degree restored
        assert len(overlay.neighbours(0)) >= 3
