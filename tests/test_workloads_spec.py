"""Tests for workload specifications and their dict round trip."""

import pytest

from repro.workloads.library import IPTV_CLASSES, WORKLOADS, get_workload, workload_names
from repro.workloads.spec import PeerClass, Phase, WorkloadSpec


def _mini_spec(**kwargs):
    defaults = dict(
        name="mini",
        description="test spec",
        n_nodes=50,
        phases=(
            Phase("zap-1", 15.0, switch=True),
            Phase("burst", 8.0, leave_fraction=0.15, join_fraction=0.15),
            Phase("zap-2", 15.0, switch=True, bandwidth_scale=0.7),
        ),
    )
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


def test_spec_counts_switches_and_duration():
    spec = _mini_spec()
    assert spec.n_switches == 2
    assert spec.total_duration == 38.0


def test_first_phase_must_switch():
    with pytest.raises(ValueError, match="first phase"):
        _mini_spec(phases=(Phase("idle", 10.0),))


def test_phase_names_must_be_unique():
    with pytest.raises(ValueError, match="unique"):
        _mini_spec(phases=(Phase("a", 5.0, switch=True), Phase("a", 5.0)))


def test_phase_validation():
    with pytest.raises(ValueError):
        Phase("bad", -1.0)
    with pytest.raises(ValueError):
        Phase("bad", 5.0, leave_fraction=1.5)
    with pytest.raises(ValueError):
        Phase("bad", 5.0, bandwidth_scale=0.0)
    with pytest.raises(ValueError):
        Phase("bad", 5.0, fail_fraction=-0.1)


def test_peer_class_validation():
    with pytest.raises(ValueError, match="mean"):
        PeerClass("x", 1.0, 10.0, 12.0, 15.0, 10.0, 20.0, 15.0)
    with pytest.raises(ValueError, match="fraction"):
        PeerClass("x", 0.0, 10.0, 20.0, 15.0, 10.0, 20.0, 15.0)


def test_dict_round_trip_is_exact():
    spec = _mini_spec(
        peer_classes=IPTV_CLASSES,
        base_leave_fraction=0.02,
        session_overrides={"old_stream_segments": 400, "lookahead": 120},
    )
    assert WorkloadSpec.from_dict(spec.to_dict()) == spec


def test_dict_round_trip_survives_json():
    import json

    spec = _mini_spec(peer_classes=IPTV_CLASSES)
    payload = json.loads(json.dumps(spec.to_dict()))
    assert WorkloadSpec.from_dict(payload) == spec


def test_overrides_are_sorted_and_mergeable():
    spec = _mini_spec(session_overrides={"b": 2, "a": 1})
    assert spec.session_overrides == (("a", 1), ("b", 2))
    merged = spec.with_overrides(c=3, a=9)
    assert merged.overrides_dict() == {"a": 9, "b": 2, "c": 3}


def test_scaled_to_changes_only_size():
    spec = _mini_spec()
    bigger = spec.scaled_to(500)
    assert bigger.n_nodes == 500
    assert bigger.phases == spec.phases


def test_library_has_the_six_workloads():
    assert {
        "zapping",
        "flash-crowd",
        "evening-peak",
        "correlated-failure",
        "bandwidth-degradation",
        "paper-baseline",
    } <= set(WORKLOADS)
    assert workload_names() == sorted(WORKLOADS)


def test_library_specs_are_valid_and_distinctive():
    zapping = get_workload("zapping")
    assert zapping.n_switches >= 3  # the multi-switch acceptance workload
    assert len(zapping.peer_classes) == 3
    assert get_workload("paper-baseline").base_leave_fraction == 0.05
    assert any(p.fail_fraction > 0 for p in get_workload("correlated-failure").phases)
    assert any(
        p.bandwidth_scale < 1.0 for p in get_workload("bandwidth-degradation").phases
    )
    assert any(p.join_fraction == 0.3 for p in get_workload("flash-crowd").phases)


def test_unknown_workload_raises_with_hint():
    with pytest.raises(KeyError, match="available"):
        get_workload("nope")
