"""Tests for the churn policy."""

import numpy as np
import pytest

from repro.churn.model import ChurnConfig, ChurnModel, ChurnPlan


def test_config_validation():
    with pytest.raises(ValueError):
        ChurnConfig(leave_fraction=-0.1)
    with pytest.raises(ValueError):
        ChurnConfig(join_fraction=1.5)
    assert ChurnConfig.paper_dynamic().leave_fraction == 0.05
    disabled = ChurnConfig.disabled()
    assert not disabled.enabled


def test_disabled_model_produces_empty_plans():
    model = ChurnModel(ChurnConfig.disabled(), np.random.default_rng(0))
    plan = model.plan_round(list(range(100)))
    assert plan.empty
    assert model.total_leaves == 0 and model.total_joins == 0


def test_plan_counts_follow_fractions():
    model = ChurnModel(ChurnConfig(leave_fraction=0.1, join_fraction=0.2),
                       np.random.default_rng(1))
    plan = model.plan_round(list(range(100)))
    assert len(plan.leavers) == 10
    assert plan.joins == 20
    assert set(plan.leavers) <= set(range(100))
    assert model.total_leaves == 10 and model.total_joins == 20


def test_paper_dynamic_five_percent_per_period():
    model = ChurnModel(ChurnConfig.paper_dynamic(), np.random.default_rng(2))
    plan = model.plan_round(list(range(1000)))
    assert len(plan.leavers) == 50
    assert plan.joins == 50


def test_leavers_are_unique_and_sorted():
    model = ChurnModel(ChurnConfig(leave_fraction=0.5, join_fraction=0.0),
                       np.random.default_rng(3))
    plan = model.plan_round(list(range(40)))
    assert len(plan.leavers) == len(set(plan.leavers)) == 20
    assert list(plan.leavers) == sorted(plan.leavers)


def test_empty_population_produces_empty_plan():
    model = ChurnModel(ChurnConfig.paper_dynamic(), np.random.default_rng(4))
    assert model.plan_round([]).empty


def test_small_population_rounds_churn_counts():
    model = ChurnModel(ChurnConfig(leave_fraction=0.05, join_fraction=0.05),
                       np.random.default_rng(5))
    # 10 peers at 5%: rounds to one every other period on average; rounding
    # of 0.5 gives 0 (banker's rounding at exactly .5 for round()),
    # with 30 peers it must be at least 1.
    plan = model.plan_round(list(range(30)))
    assert len(plan.leavers) >= 1
    assert plan.joins >= 1


def test_cannot_remove_more_than_population():
    model = ChurnModel(ChurnConfig(leave_fraction=1.0, join_fraction=0.0),
                       np.random.default_rng(6))
    plan = model.plan_round(list(range(7)))
    assert len(plan.leavers) == 7


def test_plan_dataclass_defaults():
    assert ChurnPlan().empty
    assert not ChurnPlan(leavers=(1,), joins=0).empty
    assert not ChurnPlan(leavers=(), joins=2).empty
