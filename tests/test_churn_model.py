"""Tests for the churn policy."""

import numpy as np
import pytest

from repro.churn.model import ChurnConfig, ChurnModel, ChurnPlan


def test_config_validation():
    with pytest.raises(ValueError):
        ChurnConfig(leave_fraction=-0.1)
    with pytest.raises(ValueError):
        ChurnConfig(join_fraction=1.5)
    assert ChurnConfig.paper_dynamic().leave_fraction == 0.05
    disabled = ChurnConfig.disabled()
    assert not disabled.enabled


def test_disabled_model_produces_empty_plans():
    model = ChurnModel(ChurnConfig.disabled(), np.random.default_rng(0))
    plan = model.plan_round(list(range(100)))
    assert plan.empty
    assert model.total_leaves == 0 and model.total_joins == 0


def test_plan_counts_follow_fractions():
    model = ChurnModel(ChurnConfig(leave_fraction=0.1, join_fraction=0.2),
                       np.random.default_rng(1))
    plan = model.plan_round(list(range(100)))
    assert len(plan.leavers) == 10
    assert plan.joins == 20
    assert set(plan.leavers) <= set(range(100))
    assert model.total_leaves == 10 and model.total_joins == 20


def test_paper_dynamic_five_percent_per_period():
    model = ChurnModel(ChurnConfig.paper_dynamic(), np.random.default_rng(2))
    plan = model.plan_round(list(range(1000)))
    assert len(plan.leavers) == 50
    assert plan.joins == 50


def test_leavers_are_unique_and_sorted():
    model = ChurnModel(ChurnConfig(leave_fraction=0.5, join_fraction=0.0),
                       np.random.default_rng(3))
    plan = model.plan_round(list(range(40)))
    assert len(plan.leavers) == len(set(plan.leavers)) == 20
    assert list(plan.leavers) == sorted(plan.leavers)


def test_empty_population_produces_empty_plan():
    model = ChurnModel(ChurnConfig.paper_dynamic(), np.random.default_rng(4))
    assert model.plan_round([]).empty


def test_small_population_rounds_churn_counts():
    model = ChurnModel(ChurnConfig(leave_fraction=0.05, join_fraction=0.05),
                       np.random.default_rng(5))
    plan = model.plan_round(list(range(30)))
    assert len(plan.leavers) >= 1
    assert plan.joins >= 1


def test_half_expectations_round_up_not_bankers():
    # 10 peers at 5% is an expectation of exactly 0.5 leavers/joiners.
    # int(round(0.5)) would give 0 (banker's rounding); the model pins
    # floor(x + 0.5) = 1 so small populations churn deterministically.
    model = ChurnModel(ChurnConfig(leave_fraction=0.05, join_fraction=0.05),
                       np.random.default_rng(5))
    plan = model.plan_round(list(range(10)))
    assert len(plan.leavers) == 1
    assert plan.joins == 1


@pytest.mark.parametrize("population,fraction,expected", [
    (10, 0.05, 1),   # 0.5 -> 1 (round-half-up)
    (30, 0.05, 2),   # 1.5 -> 2
    (50, 0.05, 3),   # 2.5 -> 3 (int(round(2.5)) would be 2)
    (9, 0.05, 0),    # 0.45 -> 0
    (100, 0.05, 5),  # 5.0 -> 5
])
def test_rounding_is_floor_of_x_plus_half(population, fraction, expected):
    model = ChurnModel(ChurnConfig(leave_fraction=fraction, join_fraction=fraction),
                       np.random.default_rng(8))
    plan = model.plan_round(list(range(population)))
    assert len(plan.leavers) == expected
    assert plan.joins == expected


def test_per_round_overrides_replace_configured_intensities():
    model = ChurnModel(ChurnConfig(leave_fraction=0.05, join_fraction=0.05),
                       np.random.default_rng(9))
    plan = model.plan_round(list(range(100)), leave_fraction=0.2, join_fraction=0.0)
    assert len(plan.leavers) == 20
    assert plan.joins == 0


def test_overrides_activate_a_disabled_model():
    model = ChurnModel(ChurnConfig.disabled(), np.random.default_rng(10))
    assert model.plan_round(list(range(100))).empty
    burst = model.plan_round(list(range(100)), join_fraction=0.3)
    assert burst.joins == 30
    assert burst.leavers == ()


def test_cannot_remove_more_than_population():
    model = ChurnModel(ChurnConfig(leave_fraction=1.0, join_fraction=0.0),
                       np.random.default_rng(6))
    plan = model.plan_round(list(range(7)))
    assert len(plan.leavers) == 7


def test_plan_dataclass_defaults():
    assert ChurnPlan().empty
    assert not ChurnPlan(leavers=(1,), joins=0).empty
    assert not ChurnPlan(leavers=(), joins=2).empty


class TestCountOverrides:
    def test_exact_counts_win_over_fractions(self):
        model = ChurnModel(ChurnConfig(leave_fraction=0.5, join_fraction=0.5),
                           np.random.default_rng(0))
        plan = model.plan_round(list(range(20)), leave_count=3, join_count=2)
        assert len(plan.leavers) == 3
        assert plan.joins == 2

    def test_counts_activate_a_disabled_model(self):
        model = ChurnModel(ChurnConfig.disabled(), np.random.default_rng(0))
        plan = model.plan_round(list(range(10)), leave_count=2, join_count=1)
        assert len(plan.leavers) == 2 and plan.joins == 1

    def test_leave_count_clamped_to_population(self):
        model = ChurnModel(ChurnConfig.disabled(), np.random.default_rng(0))
        plan = model.plan_round(list(range(4)), leave_count=9)
        assert len(plan.leavers) == 4

    def test_negative_counts_treated_as_zero(self):
        model = ChurnModel(ChurnConfig.disabled(), np.random.default_rng(0))
        plan = model.plan_round(list(range(4)), leave_count=-1, join_count=-5)
        assert plan.empty

    def test_count_and_fraction_mix(self):
        # a count on one side leaves the other side's fraction in force
        model = ChurnModel(ChurnConfig(leave_fraction=0.5, join_fraction=0.25),
                           np.random.default_rng(1))
        plan = model.plan_round(list(range(8)), leave_count=1)
        assert len(plan.leavers) == 1
        assert plan.joins == 2
