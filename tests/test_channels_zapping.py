"""Tests for the zapping process and its compiled plans."""

import numpy as np
import pytest

from repro.channels.directory import Directory
from repro.channels.lineup import ChannelLineup
from repro.channels.zapping import ZappingProcess
from repro.sim.rng import sequence_seeds


def _make(n_channels=5, n_viewers=100, surfer_fraction=0.4,
          surfer_zap_rate=0.2, loyal_zap_rate=0.02, seed=7):
    lineup = ChannelLineup.build(n_channels, n_viewers, min_audience=8)
    directory = Directory(
        lineup, min_degree=5, channel_seeds=sequence_seeds(seed, n_channels)
    )
    process = ZappingProcess(
        lineup,
        directory,
        surfer_fraction=surfer_fraction,
        surfer_zap_rate=surfer_zap_rate,
        loyal_zap_rate=loyal_zap_rate,
        rng=np.random.default_rng(seed),
    )
    return lineup, directory, process


def test_plan_is_deterministic():
    _, _, p1 = _make()
    _, _, p2 = _make()
    assert p1.generate(20) == p2.generate(20)


def test_arrivals_balance_departures():
    _, _, process = _make()
    plan = process.generate(25)
    total_arrivals = sum(c for ch in plan.arrivals for _, c in ch)
    total_departures = sum(c for ch in plan.departures for _, c in ch)
    assert total_arrivals == total_departures == plan.n_zaps
    assert plan.n_zaps > 0


def test_events_match_per_channel_counts():
    _, _, process = _make()
    plan = process.generate(15)
    for channel in range(5):
        from_events = sum(1 for e in plan.events if e.from_channel == channel)
        to_events = sum(1 for e in plan.events if e.to_channel == channel)
        assert from_events == sum(c for _, c in plan.departures[channel])
        assert to_events == sum(c for _, c in plan.arrivals[channel])
    assert all(e.from_channel != e.to_channel for e in plan.events)
    assert all(1 <= e.period <= 15 for e in plan.events)


def test_final_audiences_follow_the_events():
    lineup, directory, process = _make()
    plan = process.generate(20)
    assert sum(plan.final_audiences) == lineup.total_audience
    assert directory.audiences() == plan.final_audiences
    assert directory.zaps == plan.n_zaps


def test_zero_rates_produce_no_zaps():
    _, _, process = _make(surfer_zap_rate=0.0, loyal_zap_rate=0.0)
    plan = process.generate(30)
    assert plan.n_zaps == 0
    assert plan.events == ()


def test_single_channel_universe_never_zaps():
    _, _, process = _make(n_channels=1, n_viewers=20, surfer_zap_rate=1.0,
                          loyal_zap_rate=1.0)
    plan = process.generate(10)
    assert plan.n_zaps == 0


def test_surfers_drive_most_traffic():
    _, _, process = _make(n_viewers=200, surfer_fraction=0.5,
                          surfer_zap_rate=0.3, loyal_zap_rate=0.0)
    plan = process.generate(20)
    assert 0 < plan.surfers < 200
    # with a zero loyal rate every zap comes from a surfer
    assert plan.n_zaps > 0


def test_channel_directives_carry_exact_counts():
    _, _, process = _make()
    plan = process.generate(12)
    for channel in range(5):
        directives = plan.channel_directives(channel)
        joins = dict(plan.arrivals[channel])
        leaves = dict(plan.departures[channel])
        assert set(directives) == set(joins) | set(leaves)
        for period, directive in directives.items():
            assert directive.join_count == joins.get(period)
            assert directive.leave_count == leaves.get(period)
            assert directive.phase == "zapping"
            assert not directive.is_neutral


def test_invalid_rates_rejected():
    lineup = ChannelLineup.build(3, 30, min_audience=8)
    directory = Directory(lineup, min_degree=5, channel_seeds=sequence_seeds(0, 3))
    with pytest.raises(ValueError):
        ZappingProcess(lineup, directory, surfer_fraction=1.5,
                       surfer_zap_rate=0.1, loyal_zap_rate=0.0,
                       rng=np.random.default_rng(0))
    process = ZappingProcess(lineup, directory, surfer_fraction=0.5,
                             surfer_zap_rate=0.1, loyal_zap_rate=0.0,
                             rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        process.generate(-1)
