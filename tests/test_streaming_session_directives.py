"""Session-level tests for per-period workload directives.

Covers the workload-engine hooks in :class:`SwitchSession`: churn bursts
over a static baseline, correlated failures, bandwidth-regime scaling,
heterogeneous peer classes and -- crucially -- the playback
continuity/stall accounting those events disturb.
"""

import pytest

from repro.streaming.bandwidth import PeerClass
from repro.streaming.session import (
    PeriodDirective,
    SessionConfig,
    SwitchSession,
)

TEST_CLASSES = (
    PeerClass("slow", 0.5, 10.0, 14.0, 11.0, 10.0, 14.0, 11.0),
    PeerClass("quick", 0.5, 18.0, 33.0, 24.0, 18.0, 33.0, 24.0),
)


def _config(**kwargs):
    defaults = dict(
        n_nodes=50,
        seed=11,
        max_time=30.0,
        old_stream_segments=400,
        lookahead=120,
        run_full_horizon=True,
    )
    defaults.update(kwargs)
    return SessionConfig(**defaults)


def _run(config, directives=None):
    return SwitchSession(config, directives=directives).run()


@pytest.fixture(scope="module")
def baseline():
    """The no-directive reference run (module-scoped: simulated once)."""
    return _run(_config())


def test_directive_validation():
    with pytest.raises(ValueError):
        PeriodDirective(leave_fraction=1.5)
    with pytest.raises(ValueError):
        PeriodDirective(bandwidth_scale=0.0)
    with pytest.raises(ValueError):
        PeriodDirective(fail_fraction=2.0)


def test_leave_burst_removes_tracked_peers_from_static_baseline(baseline):
    burst = _run(_config(), directives={5: PeriodDirective(leave_fraction=0.3)})
    assert baseline.config.churn.enabled is False
    # ~30% of the 48 peers left in one period; leavers stay out.
    assert burst.metrics.rounds[-1].tracked_peers <= baseline.metrics.rounds[-1].tracked_peers - 10


def test_join_burst_grows_the_population(baseline):
    burst = _run(
        _config(), directives={5: PeriodDirective(join_fraction=0.4)}
    )
    assert burst.n_rounds == baseline.n_rounds
    # joiners are untracked, so tracked metrics cover the original peers
    assert burst.metrics.n_peers == baseline.metrics.n_peers


def test_correlated_failure_removes_a_cluster(baseline):
    failed = _run(_config(), directives={4: PeriodDirective(fail_fraction=0.25)})
    lost = baseline.metrics.rounds[-1].tracked_peers - failed.metrics.rounds[-1].tracked_peers
    assert lost >= 10  # floor(0.25 * 48 + 0.5) = 12, minus any later rejoins


def test_bandwidth_scale_slows_the_switch(baseline):
    throttled_directives = {
        period: PeriodDirective(bandwidth_scale=0.35) for period in range(1, 31)
    }
    throttled = _run(_config(), directives=throttled_directives)
    assert throttled.metrics.avg_switch_time > baseline.metrics.avg_switch_time
    assert throttled.metrics.rounds[-1].cumulative_stalls >= \
        baseline.metrics.rounds[-1].cumulative_stalls


def test_cumulative_stalls_are_monotone_under_churn_burst():
    result = _run(
        _config(),
        directives={
            6: PeriodDirective(leave_fraction=0.25, join_fraction=0.25),
            7: PeriodDirective(leave_fraction=0.25),
        },
    )
    series = [sample.cumulative_stalls for sample in result.metrics.rounds]
    assert all(b >= a for a, b in zip(series, series[1:])), series
    # outcome-level stall counts agree with the final cumulative sample:
    # departed tracked peers keep their stall history.
    outcome_stalls = sum(o.stalls + o.stalls_new for o in result.metrics.outcomes)
    departed_unfinished = result.metrics.rounds[-1].cumulative_stalls - outcome_stalls
    assert departed_unfinished >= 0  # outcomes exclude peers that left mid-switch


def test_stall_periods_surface_in_peer_outcomes_under_pressure():
    result = _run(
        _config(),
        directives={p: PeriodDirective(bandwidth_scale=0.3) for p in range(1, 31)},
    )
    assert result.metrics.rounds[-1].cumulative_stalls > 0
    assert any(o.stalls + o.stalls_new > 0 for o in result.metrics.outcomes)


def test_run_full_horizon_keeps_running_after_all_switched(baseline):
    early = _run(_config(run_full_horizon=False))
    full = baseline
    assert early.stop_reason == "all tracked peers switched"
    assert full.stop_reason == "time horizon reached"
    assert full.n_rounds > early.n_rounds
    # identical switch metrics either way (the extra rounds are post-switch)
    assert full.metrics.avg_switch_time == early.metrics.avg_switch_time


def test_peer_classes_label_outcomes_and_rates():
    result = _run(_config(peer_classes=TEST_CLASSES))
    labels = {o.peer_class for o in result.metrics.outcomes}
    assert labels == {"slow", "quick"}


def test_directives_keep_paired_runs_paired():
    directives = {5: PeriodDirective(leave_fraction=0.2, join_fraction=0.2)}
    fast = _run(_config(algorithm="fast"), directives)
    normal = _run(_config(algorithm="normal"), directives)
    # same churn draws: both runs lose the same tracked peers
    assert {o.node_id for o in fast.metrics.outcomes} == \
        {o.node_id for o in normal.metrics.outcomes}


def test_duplicate_class_names_rejected():
    with pytest.raises(ValueError, match="unique"):
        _config(peer_classes=(TEST_CLASSES[0], TEST_CLASSES[0]))


def test_count_directive_validation_and_neutrality():
    with pytest.raises(ValueError):
        PeriodDirective(leave_count=-1)
    with pytest.raises(ValueError):
        PeriodDirective(join_count=-2)
    assert PeriodDirective().is_neutral
    assert not PeriodDirective(leave_count=0).is_neutral
    assert not PeriodDirective(join_count=3).is_neutral


def test_count_directives_execute_exact_membership_changes(baseline):
    session = SwitchSession(
        _config(),
        directives={
            4: PeriodDirective(leave_count=5),
            6: PeriodDirective(join_count=3),
        },
    )
    scripted = session.run()
    base_final = baseline.metrics.rounds[-1].tracked_peers
    # exactly five tracked peers left and none of the three joiners count
    assert scripted.metrics.rounds[-1].tracked_peers == base_final - 5
    assert session.membership.joins == 3
    assert session.membership.leaves == 5


def _run_session(config, directives=None, engine=None):
    return SwitchSession(config, directives=directives, engine=engine)


def test_shared_engine_sessions_match_owned_engine_runs():
    from repro.sim.engine import SimulationEngine

    config_a = _config(seed=3)
    config_b = _config(seed=4, algorithm="normal")
    solo_a = SwitchSession(config_a).run()
    solo_b = SwitchSession(config_b).run()

    engine = SimulationEngine()
    shared_a = _run_session(config_a, engine=engine)
    shared_b = _run_session(config_b, engine=engine)
    engine.run_until(config_a.max_time + config_a.tau)
    result_a = shared_a.finalize()
    result_b = shared_b.finalize()

    assert result_a.metrics == solo_a.metrics
    assert result_b.metrics == solo_b.metrics
    assert result_a.stop_reason == solo_a.stop_reason
    assert result_a.n_rounds == solo_a.n_rounds
    assert shared_a.finished and shared_b.finished


def test_shared_engine_session_rejects_run_and_simulated_warmup():
    from repro.sim.engine import SimulationEngine

    engine = SimulationEngine()
    session = _run_session(_config(seed=5), engine=engine)
    with pytest.raises(RuntimeError, match="shared engine"):
        session.run()
    with pytest.raises(ValueError, match="analytic"):
        SwitchSession(_config(seed=5, warmup="simulated"), engine=engine)


def test_early_finisher_on_shared_engine_retires_quietly():
    from repro.sim.engine import SimulationEngine

    engine = SimulationEngine()
    quick = _run_session(_config(seed=6, run_full_horizon=False), engine=engine)
    slow = _run_session(_config(seed=7), engine=engine)
    engine.run_until(30.0 + 1.0)
    assert quick.finished and quick.finalize().stop_reason == "all tracked peers switched"
    assert slow.finalize().stop_reason == "time horizon reached"
    assert slow.rounds_run == 30
    assert quick.rounds_run < 30
