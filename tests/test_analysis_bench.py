"""Benchmark-trajectory analysis: ordering, baselines and unusable means."""

import json

import pytest

from repro.analysis.bench import bench_trend_rows, load_bench_summaries


def summary(sha, created, benches):
    return {
        "schema": 1,
        "git_sha": sha,
        "created": created,
        "benchmarks": [
            {"name": name, "mean_s": mean, "stddev_s": 0.0, "min_s": mean, "rounds": 3}
            for name, mean in benches
        ],
    }


def write(tmp_path, filename, payload):
    path = tmp_path / filename
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestLoadBenchSummaries:
    def test_orders_by_embedded_created_not_filename(self, tmp_path):
        write(tmp_path, "BENCH_zzz.json",
              summary("zzz", "2026-01-01T00:00:00+00:00", [("b", 1.0)]))
        write(tmp_path, "BENCH_aaa.json",
              summary("aaa", "2026-02-01T00:00:00+00:00", [("b", 2.0)]))
        loaded = load_bench_summaries(tmp_path)
        assert [s["git_sha"] for s in loaded] == ["zzz", "aaa"]

    def test_skips_summaries_without_created(self, tmp_path):
        # Under the old bare string sort a timestampless summary collapsed
        # to "" (oldest) and silently became everyone's baseline.
        payload = summary("bad", "", [("b", 99.0)])
        write(tmp_path, "BENCH_bad.json", payload)
        del payload["created"]
        write(tmp_path, "BENCH_absent.json", payload)
        write(tmp_path, "BENCH_good.json",
              summary("good", "2026-01-01T00:00:00+00:00", [("b", 1.0)]))
        loaded = load_bench_summaries(tmp_path)
        assert [s["git_sha"] for s in loaded] == ["good"]

    def test_skips_unreadable_and_non_summary_files(self, tmp_path):
        (tmp_path / "BENCH_junk.json").write_text("{not json", encoding="utf-8")
        write(tmp_path, "BENCH_other.json", {"created": "2026-01-01", "foo": 1})
        write(tmp_path, "BENCH_ok.json",
              summary("ok", "2026-01-01T00:00:00+00:00", [("b", 1.0)]))
        assert [s["git_sha"] for s in load_bench_summaries(tmp_path)] == ["ok"]

    def test_agrees_with_the_check_gate_discovery(self, tmp_path):
        # The regression gate in benchmarks/run_benchmarks.py applies the
        # same skip rule; both must pick the same "most recent previous".
        import importlib.util
        from pathlib import Path

        script = Path(__file__).parent.parent / "benchmarks" / "run_benchmarks.py"
        spec = importlib.util.spec_from_file_location("run_benchmarks", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        write(tmp_path, "BENCH_old.json",
              summary("old", "2026-01-01T00:00:00+00:00", [("b", 1.0)]))
        write(tmp_path, "BENCH_new.json",
              summary("new", "2026-03-01T00:00:00+00:00", [("b", 2.0)]))
        write(tmp_path, "BENCH_stamp.json", summary("stampless", "", [("b", 9.0)]))
        previous = module.find_previous_summary(tmp_path, "BENCH_current.json")
        assert previous["git_sha"] == "new"
        assert load_bench_summaries(tmp_path)[-1]["git_sha"] == "new"


class TestBenchTrendRows:
    def test_first_appearance_has_no_change(self):
        rows = bench_trend_rows([summary("a", "t1", [("b", 1.0)])])
        assert rows == [{"git_sha": "a", "created": "t1", "benchmark": "b",
                         "mean_s": 1.0, "change": None}]

    def test_change_against_previous_run(self):
        rows = bench_trend_rows([
            summary("a", "t1", [("b", 1.0)]),
            summary("c", "t2", [("b", 1.5)]),
        ])
        assert rows[1]["change"] == pytest.approx(0.5)

    def test_zero_mean_never_becomes_the_baseline(self):
        # A failed run records mean_s == 0.0; the next real run must diff
        # against the last *real* mean, not show a bogus infinite jump.
        rows = bench_trend_rows([
            summary("a", "t1", [("b", 2.0)]),
            summary("c", "t2", [("b", 0.0)]),
            summary("d", "t3", [("b", 3.0)]),
        ])
        assert rows[1]["change"] is None
        assert rows[2]["change"] == pytest.approx(0.5)

    def test_non_finite_and_malformed_means_are_unusable(self):
        bad = summary("c", "t2", [("b", float("nan"))])
        worse = summary("d", "t3", [("b", 1.0)])
        worse["benchmarks"][0]["mean_s"] = "not-a-number"
        rows = bench_trend_rows([
            summary("a", "t1", [("b", 4.0)]),
            bad,
            worse,
            summary("e", "t4", [("b", 2.0)]),
        ])
        assert rows[1]["change"] is None
        assert rows[2]["change"] is None
        assert rows[3]["change"] == pytest.approx(-0.5)

    def test_skipped_benchmark_does_not_break_the_chain(self):
        rows = bench_trend_rows([
            summary("a", "t1", [("b", 1.0), ("other", 5.0)]),
            summary("c", "t2", [("other", 5.0)]),
            summary("d", "t3", [("b", 2.0), ("other", 5.0)]),
        ])
        b_rows = [row for row in rows if row["benchmark"] == "b"]
        assert b_rows[1]["change"] == pytest.approx(1.0)
