"""Tests for the Zipf channel lineup sampler."""

import numpy as np
import pytest

from repro.channels.lineup import Channel, ChannelLineup, zipf_weights
from repro.metrics.universe import decile_of


class TestZipfWeights:
    def test_weights_normalise_to_one(self):
        for n in (1, 2, 7, 20, 100):
            assert abs(zipf_weights(n, 1.0).sum() - 1.0) < 1e-12

    def test_weights_decrease_with_rank(self):
        w = zipf_weights(20, 1.0)
        assert all(w[i] > w[i + 1] for i in range(19))

    def test_exponent_zero_is_uniform(self):
        w = zipf_weights(5, 0.0)
        assert np.allclose(w, 0.2)

    def test_higher_exponent_is_more_skewed(self):
        assert zipf_weights(10, 1.5)[0] > zipf_weights(10, 0.5)[0]

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestLineupBuild:
    def test_audiences_sum_to_viewer_population(self):
        lineup = ChannelLineup.build(20, 1000, exponent=1.0, min_audience=8)
        assert lineup.total_audience == 1000
        assert lineup.n_channels == 20

    def test_build_is_deterministic(self):
        a = ChannelLineup.build(12, 500, exponent=1.2, min_audience=8)
        b = ChannelLineup.build(12, 500, exponent=1.2, min_audience=8)
        assert a == b

    def test_min_audience_floor_enforced(self):
        lineup = ChannelLineup.build(10, 120, exponent=2.0, min_audience=9)
        assert min(c.audience for c in lineup.channels) >= 9
        assert lineup.total_audience == 120

    def test_exact_total_with_floor_at_the_boundary(self):
        # total == n_channels * min_audience forces a uniform lineup.
        lineup = ChannelLineup.build(5, 40, exponent=1.5, min_audience=8)
        assert lineup.audiences() == (8, 8, 8, 8, 8)

    def test_audience_tracks_popularity(self):
        lineup = ChannelLineup.build(8, 400, exponent=1.0, min_audience=5)
        audiences = lineup.audiences()
        assert all(audiences[i] >= audiences[i + 1] for i in range(7))
        assert lineup.channels[0].name == "ch-01"

    def test_too_few_viewers_rejected(self):
        with pytest.raises(ValueError):
            ChannelLineup.build(10, 50, min_audience=8)
        with pytest.raises(ValueError):
            ChannelLineup.build(3, 30, min_audience=0)

    def test_dict_round_trip(self):
        lineup = ChannelLineup.build(6, 90)
        assert ChannelLineup.from_dict(lineup.to_dict()) == lineup

    def test_popularity_array_matches_channels(self):
        lineup = ChannelLineup.build(6, 120)
        assert np.allclose(lineup.popularity_array(), zipf_weights(6, 1.0))


class TestDecileBucketing:
    def test_twenty_channels_two_per_decile(self):
        lineup = ChannelLineup.build(20, 1000)
        deciles = [lineup.decile(c.index) for c in lineup.channels]
        assert deciles == sorted(deciles)
        for d in range(10):
            assert deciles.count(d) == 2

    def test_decile_of_extremes(self):
        assert decile_of(0, 20) == 0
        assert decile_of(19, 20) == 9
        assert decile_of(9, 10) == 9

    def test_small_lineups_skip_deciles(self):
        lineup = ChannelLineup.build(4, 60)
        assert [lineup.decile(i) for i in range(4)] == [0, 2, 5, 7]

    def test_decile_of_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            decile_of(-1, 10)
        with pytest.raises(ValueError):
            decile_of(10, 10)
        with pytest.raises(ValueError):
            decile_of(0, 0)

    def test_empty_lineup_rejected(self):
        with pytest.raises(ValueError):
            ChannelLineup(channels=())

    def test_channel_fields(self):
        channel = Channel(index=2, name="ch-03", popularity=0.1, audience=12)
        assert channel.index == 2 and channel.audience == 12
