"""Differential suite: the vector engine must be bit-identical to the oracle.

Every test replays the same deterministic scenario through both engines and
asserts that the *store documents* -- the exact JSON the persistent result
store writes -- are identical field for field.  This is the contract that
makes ``engine="vector"`` a pure performance substitution: any divergence,
however small (a reordered request, a float computed in a different
association order, a numpy scalar leaking into a document), fails loudly
here.

Coverage follows the acceptance criteria: paired switch sessions (the
run/compare library path), every shipped workload script, a lineup
universe, and the metro/transcontinental latency topologies, plus churn
and full-horizon recording variants.
"""

from __future__ import annotations

import json

import pytest

from conftest import normalized_run_document, run_engine_pair, store_documents

from repro.churn.model import ChurnConfig
from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair
from repro.experiments.store import ResultStore
from repro.streaming.session import ENGINE_NAMES, SwitchSession
from repro.workloads.library import (
    get_universe,
    get_workload,
    universe_names,
    workload_names,
)
from repro.workloads.runner import rep_to_dict, run_workload, run_workload_rep
from repro.channels.runner import (
    rep_to_dict as universe_rep_to_dict,
    run_universe,
)
from repro.channels.universe import run_universe_rep


def _tiny(**overrides):
    base = dict(seed=7, max_time=80.0, old_stream_segments=400, lookahead=120)
    base.update(overrides)
    n_nodes = base.pop("n_nodes", 40)
    return make_session_config(n_nodes, **base)


# --------------------------------------------------------------------------- #
# single sessions and the paired-switch library
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("algorithm", ["fast", "normal"])
def test_single_session_documents_identical(algorithm):
    oracle, vector = run_engine_pair(_tiny(algorithm=algorithm))
    assert oracle == vector


def test_paired_switch_library_documents_identical(tmp_path):
    """run_pair (the run/compare path) persists identical pair documents."""
    documents = {}
    for engine in ENGINE_NAMES:
        store = ResultStore(tmp_path / engine)
        run_pair(_tiny(engine=engine), store=store)
        documents[engine] = store_documents(tmp_path / engine)
    assert documents["oracle"] == documents["vector"]
    assert documents["oracle"]  # the store actually persisted something


def test_churn_session_documents_identical():
    oracle, vector = run_engine_pair(
        _tiny(
            seed=11,
            churn=ChurnConfig(
                enabled=True, leave_fraction=0.05, join_fraction=0.05
            ),
        )
    )
    assert oracle == vector


def test_full_horizon_round_recording_identical():
    oracle, vector = run_engine_pair(
        _tiny(seed=19, max_time=90.0, record_rounds=True, run_full_horizon=True)
    )
    assert oracle == vector


def test_simulated_warmup_documents_identical():
    oracle, vector = run_engine_pair(_tiny(seed=5, warmup="simulated"))
    assert oracle == vector


# --------------------------------------------------------------------------- #
# latency topologies
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("topology", ["metro", "transcontinental"])
@pytest.mark.parametrize("algorithm", ["fast", "normal"])
def test_topology_documents_identical(topology, algorithm):
    oracle, vector = run_engine_pair(
        _tiny(seed=13, algorithm=algorithm, topology=topology)
    )
    assert oracle == vector


# --------------------------------------------------------------------------- #
# every shipped workload script
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", workload_names())
def test_workload_rep_identical(name):
    spec = get_workload(name).scaled_to(30)
    oracle = rep_to_dict(run_workload_rep(spec, 3, engine="oracle"))
    vector = rep_to_dict(run_workload_rep(spec, 3, engine="vector"))
    assert json.dumps(oracle, sort_keys=True) == json.dumps(
        vector, sort_keys=True
    )


def test_workload_store_documents_identical(tmp_path):
    """The store-backed runner persists identical workload documents."""
    spec = get_workload(workload_names()[0]).scaled_to(30)
    documents = {}
    for engine in ENGINE_NAMES:
        store = ResultStore(tmp_path / engine)
        run_workload(spec, seed=3, store=store, engine=engine)
        documents[engine] = store_documents(tmp_path / engine)
    assert documents["oracle"] == documents["vector"]
    assert documents["oracle"]


# --------------------------------------------------------------------------- #
# a lineup universe (shared-engine serial path and store-backed runner)
# --------------------------------------------------------------------------- #
def test_lineup_universe_rep_identical():
    spec = get_universe("lineup-mini").scaled_to(n_channels=3, n_viewers=60)
    oracle = universe_rep_to_dict(run_universe_rep(spec, 5))
    vector = universe_rep_to_dict(
        run_universe_rep(spec, 5, compute_engine="vector")
    )
    assert json.dumps(oracle, sort_keys=True) == json.dumps(
        vector, sort_keys=True
    )


def test_universe_store_documents_identical(tmp_path):
    spec = get_universe("lineup-mini").scaled_to(n_channels=3, n_viewers=60)
    documents = {}
    for engine in ENGINE_NAMES:
        store = ResultStore(tmp_path / engine)
        run_universe(spec, seed=5, store=store, compute_engine=engine)
        documents[engine] = store_documents(tmp_path / engine)
    assert documents["oracle"] == documents["vector"]
    assert documents["oracle"]


def test_universe_names_include_lineups():
    """The universes the suite exercises exist in the library."""
    assert "lineup-mini" in universe_names()


# --------------------------------------------------------------------------- #
# engine selection surface
# --------------------------------------------------------------------------- #
def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        _tiny(engine="gpu")


def test_vector_session_class_dispatch():
    from repro.core.vector import VectorSwitchSession

    session = SwitchSession(_tiny(engine="vector"))
    assert type(session) is VectorSwitchSession
    oracle_session = SwitchSession(_tiny())
    assert type(oracle_session) is SwitchSession


def test_documents_exercise_round_payloads():
    """record_rounds payloads flow through normalisation (sanity of helper)."""
    config = _tiny(seed=19, max_time=90.0, record_rounds=True)
    result = SwitchSession(config).run()
    document = normalized_run_document(result)
    assert "wallclock_seconds" not in document
