"""Tests for the channel directory (tracker) service."""

import numpy as np
import pytest

from repro.channels.directory import Directory
from repro.channels.lineup import ChannelLineup
from repro.overlay.topology import NodeInfo, Overlay
from repro.sim.rng import sequence_seeds


def _directory(n_channels=4, n_viewers=60, seed=5, min_degree=3):
    lineup = ChannelLineup.build(n_channels, n_viewers, min_audience=8)
    return Directory(
        lineup,
        min_degree=min_degree,
        channel_seeds=sequence_seeds(seed, n_channels),
    )


def _overlay(n=10):
    overlay = Overlay()
    for i in range(n):
        overlay.add_node(NodeInfo(node_id=i))
    return overlay


class TestViewerRegistry:
    def test_register_and_tune(self):
        directory = _directory()
        directory.register_viewer(0, 1)
        directory.register_viewer(1, 1)
        assert directory.audience(1) == 2
        assert directory.channel_of(0) == 1
        left = directory.tune(0, 3)
        assert left == 1
        assert directory.audience(1) == 1 and directory.audience(3) == 1
        assert directory.zaps == 1

    def test_tune_to_same_channel_is_a_noop(self):
        directory = _directory()
        directory.register_viewer(0, 2)
        assert directory.tune(0, 2) == 2
        assert directory.zaps == 0

    def test_double_registration_rejected(self):
        directory = _directory()
        directory.register_viewer(0, 0)
        with pytest.raises(ValueError):
            directory.register_viewer(0, 1)

    def test_unknown_channel_rejected(self):
        directory = _directory(n_channels=3, n_viewers=30)
        with pytest.raises(ValueError):
            directory.register_viewer(0, 3)
        directory.register_viewer(0, 0)
        with pytest.raises(ValueError):
            directory.tune(0, -1)

    def test_seed_count_must_match_lineup(self):
        lineup = ChannelLineup.build(4, 60, min_audience=8)
        with pytest.raises(ValueError):
            Directory(lineup, min_degree=3, channel_seeds=[1, 2])


class TestMeshRegistry:
    def test_factory_creates_channel_scoped_service(self):
        directory = _directory()
        overlay = _overlay()
        factory = directory.membership_factory(2, "fast")
        service = factory(overlay, frozenset({0, 1}))
        assert directory.service_for(2, "fast") is service
        assert directory.service_for(2, "normal") is None
        assert service.overlay is overlay
        assert service.min_degree == 3
        assert service.protected == {0, 1}

    def test_paired_algorithms_draw_identical_partners(self):
        directory = _directory()
        a = directory.membership_factory(1, "normal")(_overlay(), frozenset())
        b = directory.membership_factory(1, "fast")(_overlay(), frozenset())
        ja = a.join(NodeInfo(node_id=100))
        jb = b.join(NodeInfo(node_id=100))
        assert ja == jb
        assert sorted(a.overlay.neighbours(100)) == sorted(b.overlay.neighbours(100))

    def test_different_channels_draw_differently(self):
        directory = _directory()
        a = directory.membership_factory(0, "fast")(_overlay(30), frozenset())
        b = directory.membership_factory(3, "fast")(_overlay(30), frozenset())
        a.join(NodeInfo(node_id=100))
        b.join(NodeInfo(node_id=100))
        # same population, independent channel seeds: neighbour draws differ
        assert sorted(a.overlay.neighbours(100)) != sorted(b.overlay.neighbours(100))

    def test_joiner_gets_neighbours_on_its_target_channel(self):
        directory = _directory()
        overlay = _overlay(12)
        service = directory.membership_factory(0, "fast")(overlay, frozenset())
        node = service.join()
        assert len(overlay.neighbours(node)) == 3
        assert all(n in overlay for n in overlay.neighbours(node))

    def test_factory_rejects_unknown_channel(self):
        directory = _directory(n_channels=2, n_viewers=30)
        with pytest.raises(ValueError):
            directory.membership_factory(2, "fast")
