"""Tests for protocol message records and size accounting."""

from repro.core.base import Stream
from repro.streaming.protocol import (
    SEGMENT_REQUEST_BITS,
    BufferMapExchange,
    SegmentDelivery,
    SegmentRequestMessage,
)
from repro.streaming.segment import DEFAULT_SEGMENT_BITS


def test_buffer_map_exchange_record():
    msg = BufferMapExchange(time=1.0, requester_id=3, owner_id=4, wire_bits=620)
    assert msg.wire_bits == 620
    assert msg.requester_id != msg.owner_id


def test_request_message_defaults():
    msg = SegmentRequestMessage(time=2.0, requester_id=1, supplier_id=2, seg_id=42,
                                stream=Stream.OLD)
    assert msg.wire_bits == SEGMENT_REQUEST_BITS
    assert msg.stream is Stream.OLD


def test_delivery_payload_defaults_to_30kb():
    delivery = SegmentDelivery(time=3.0, supplier_id=1, receiver_id=2, seg_id=7,
                               stream=Stream.NEW)
    assert delivery.payload_bits == DEFAULT_SEGMENT_BITS == 30 * 1024


def test_records_are_immutable():
    msg = SegmentRequestMessage(time=2.0, requester_id=1, supplier_id=2, seg_id=42,
                                stream=Stream.OLD)
    try:
        msg.seg_id = 43
    except AttributeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("protocol records must be frozen")
