"""Tests for the observability layer (:mod:`repro.obs`).

Covers the three tentpole properties:

* the metrics registry and tracer record what instrumented code reports;
* the disabled (null) handles are true no-ops and telemetry is off by
  default;
* telemetry is provably inert -- an instrumented run persists the exact
  same result documents as an uninstrumented one (the ``telemetry-*``
  document itself excluded), and telemetry content never feeds a
  fingerprint.
"""

import json
from dataclasses import replace

import pytest

from conftest import normalized_run_document, store_documents
from repro.experiments.config import make_session_config
from repro.experiments.store import (
    ResultStore,
    persist_telemetry_document,
    telemetry_fingerprint,
)
from repro.experiments.sqlite_store import SQLiteStore
from repro.obs import (
    NULL_TELEMETRY,
    MetricsRegistry,
    Tracer,
    build_telemetry_document,
    chrome_trace_payload,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    shard_span_rows,
    telemetry_session,
    trace_span,
    write_chrome_trace,
)
from repro.streaming.session import SwitchSession


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
def test_registry_instruments_are_created_once_and_accumulate():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").add(4)
    assert registry.counter("a") is registry.counter("a")
    assert registry.counter("a").value == 5
    registry.gauge("g").set(2.5)
    assert registry.gauge("g").value == 2.5
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("h").observe(value)
    summary = registry.histogram("h").summary()
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["min"] == 1.0 and summary["max"] == 4.0
    assert summary["p50"] <= summary["p90"] <= summary["p99"]


def test_registry_snapshot_is_sorted_and_json_safe():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.counter("a").inc()
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "z"]
    assert snapshot["histograms"] == {}
    json.dumps(snapshot)  # must serialise as-is


# --------------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------------- #
def test_tracer_span_records_event_and_stats():
    tracer = Tracer()
    with tracer.span("phase.work", t=1.0):
        pass
    events = tracer.events()
    assert len(events) == 1
    event = events[0]
    assert event["name"] == "phase.work" and event["ph"] == "X"
    assert event["cat"] == "phase"
    assert event["dur"] >= 0.0 and event["ts"] >= 0.0
    assert event["args"] == {"t": 1.0}
    stats = tracer.span_stats()["phase.work"]
    assert stats["count"] == 1
    assert stats["p50_s"] >= 0.0


def test_tracer_span_records_even_when_body_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("phase.boom"):
            raise RuntimeError("boom")
    assert tracer.span_stats()["phase.boom"]["count"] == 1


def test_tracer_bounded_buffer_drops_events_but_keeps_stats():
    tracer = Tracer(max_events=3)
    for _ in range(10):
        with tracer.span("s"):
            pass
    assert len(tracer.events()) == 3
    assert tracer.dropped == 7
    assert tracer.span_stats()["s"]["count"] == 10  # stats never drop


def test_tracer_instant_and_spans_named():
    tracer = Tracer()
    tracer.instant("pool.worker_spawn", tid=2, worker=2)
    tracer.complete("shard.execute", 0.0, 0.5, tid=2, shard=7)
    instants = [e for e in tracer.events() if e["ph"] == "i"]
    assert instants[0]["s"] == "p" and instants[0]["tid"] == 2
    named = tracer.spans_named("shard.execute")
    assert len(named) == 1 and named[0]["args"]["shard"] == 7


# --------------------------------------------------------------------------- #
# the switchboard and null handles
# --------------------------------------------------------------------------- #
def test_telemetry_is_off_by_default_and_null_is_noop():
    handle = get_telemetry()
    assert handle is NULL_TELEMETRY and not handle.enabled
    handle.counter("x").inc()
    handle.gauge("x").set(1)
    handle.histogram("x").observe(1.0)
    handle.event("x")
    handle.complete_span("x", 0.0, 1.0)
    with handle.span("x"):
        pass
    assert handle.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}, "spans": {},
    }


def test_enable_disable_round_trip():
    telemetry = enable_telemetry()
    try:
        assert get_telemetry() is telemetry and telemetry.enabled
        telemetry.counter("n").inc()
    finally:
        returned = disable_telemetry()
    assert returned is telemetry
    assert get_telemetry() is NULL_TELEMETRY


def test_telemetry_session_installs_and_restores():
    assert get_telemetry() is NULL_TELEMETRY
    with telemetry_session() as telemetry:
        assert get_telemetry() is telemetry
        with trace_span("unit.block", kind="test"):
            pass
    assert get_telemetry() is NULL_TELEMETRY
    assert telemetry.tracer.span_stats()["unit.block"]["count"] == 1


# --------------------------------------------------------------------------- #
# exports
# --------------------------------------------------------------------------- #
def _sample_telemetry():
    import time

    with telemetry_session() as telemetry:
        telemetry.counter("engine.events").add(12)
        telemetry.gauge("session.peers").set(40)
        with telemetry.span("period.decide", t=1.0):
            pass
        base = time.perf_counter()
        telemetry.complete_span("shard.execute", base, base + 0.25, tid=3,
                                shard=1, label="rep0/ch1")
        telemetry.complete_span("shard.execute", base, base + 0.5, tid=4,
                                shard=0, label="rep0/ch0")
        telemetry.event("pool.worker_spawn", tid=3, worker=3)
    return telemetry


def test_chrome_trace_payload_is_valid_trace_event_json(tmp_path):
    telemetry = _sample_telemetry()
    payload = chrome_trace_payload(telemetry, run={"kind": "run", "name": "t"})
    assert payload["displayTimeUnit"] == "ms"
    assert {event["ph"] for event in payload["traceEvents"]} == {"X", "i"}
    for event in payload["traceEvents"]:
        assert isinstance(event["ts"], float) and event["ts"] >= 0.0
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
    assert payload["otherData"]["kind"] == "run"
    path = tmp_path / "trace.json"
    write_chrome_trace(telemetry, path, run={"kind": "run", "name": "t"})
    assert json.loads(path.read_text(encoding="utf-8")) == json.loads(
        json.dumps(payload)
    )


def test_shard_span_rows_sorted_by_shard():
    rows = shard_span_rows(_sample_telemetry())
    assert [row["shard"] for row in rows] == [0, 1]
    assert rows[0]["worker"] == 4 and rows[0]["label"] == "rep0/ch0"
    assert rows[1]["duration_s"] == pytest.approx(0.25)


def test_build_telemetry_document_shape():
    document = build_telemetry_document(
        _sample_telemetry(), run={"kind": "universe", "name": "lineup-mini"}
    )
    assert document["kind"] == "telemetry"
    assert document["run"]["name"] == "lineup-mini"
    assert document["counters"]["engine.events"] == 12
    assert "period.decide" in document["spans"]
    assert len(document["shards"]) == 2
    assert document["trace"]["events"] == 4 and document["trace"]["dropped"] == 0
    json.dumps(document)


# --------------------------------------------------------------------------- #
# store integration
# --------------------------------------------------------------------------- #
def test_telemetry_fingerprint_keyed_by_run_identity_not_content():
    run = {"kind": "run", "name": "a", "seed": 1}
    assert telemetry_fingerprint(run) == telemetry_fingerprint(dict(run))
    assert telemetry_fingerprint(run).startswith("telemetry-")
    assert telemetry_fingerprint(run) != telemetry_fingerprint(
        {"kind": "run", "name": "a", "seed": 2}
    )
    assert telemetry_fingerprint(run, version="x") != telemetry_fingerprint(
        run, version="y"
    )


@pytest.mark.parametrize("store_cls", [ResultStore, SQLiteStore])
def test_save_and_load_telemetry_document(tmp_path, store_cls):
    store = store_cls(tmp_path / "results")
    telemetry = _sample_telemetry()
    run = {"kind": "run", "name": "unit", "seed": 5}
    key = persist_telemetry_document(store, run=run, telemetry=telemetry)
    assert key == telemetry_fingerprint(run)
    document = store.load_telemetry(key)
    assert document["kind"] == "telemetry"
    assert document["counters"]["engine.events"] == 12
    (entry,) = store.entries(kind="telemetry")
    assert entry.key == key
    assert "spans=" in entry.description and "run=run:unit" in entry.description


def test_persist_telemetry_document_noop_when_disabled(tmp_path):
    store = ResultStore(tmp_path / "results")
    assert persist_telemetry_document(store, run={"kind": "run", "name": "x"}) is None
    assert persist_telemetry_document(None, run={"kind": "run", "name": "x"}) is None
    assert store.entries(kind="telemetry") == []


def test_store_access_is_counted_when_enabled(tmp_path):
    store = ResultStore(tmp_path / "results")
    with telemetry_session() as telemetry:
        assert store.load("pair-missing") is None
        store.save("pair-unit", {"kind": "pair", "value": 1})
        assert store.load("pair-unit") is not None
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["store.load.miss"] == 1
    assert counters["store.load.hit"] == 1
    assert counters["store.save"] == 1
    assert "store.load" in telemetry.tracer.span_stats()


# --------------------------------------------------------------------------- #
# instrumented simulation + inertness
# --------------------------------------------------------------------------- #
def test_session_run_emits_phase_spans_and_counters(tiny_config):
    with telemetry_session() as telemetry:
        SwitchSession(tiny_config).run()
    snapshot = telemetry.snapshot()
    for name in ("session.run", "engine.run", "period.decide",
                 "period.exchange", "period.flush"):
        assert snapshot["spans"][name]["count"] >= 1, name
    periods = snapshot["counters"]["session.periods"]
    assert snapshot["spans"]["period.decide"]["count"] == periods
    assert snapshot["counters"]["fabric.requests"] > 0
    assert snapshot["counters"]["engine.dispatch.scalar"] > 0


def test_vector_session_counts_vector_dispatch(tiny_config):
    with telemetry_session() as telemetry:
        SwitchSession(replace(tiny_config, engine="vector")).run()
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["engine.dispatch.vector"] > 0


def test_telemetry_does_not_change_session_results(tiny_config):
    baseline = normalized_run_document(SwitchSession(tiny_config).run())
    with telemetry_session():
        instrumented = normalized_run_document(SwitchSession(tiny_config).run())
    assert instrumented == baseline


def test_universe_store_documents_identical_with_telemetry_on_and_off(tmp_path):
    from repro.channels.runner import run_universe
    from repro.workloads.library import get_universe

    spec = get_universe("lineup-mini").scaled_to(n_channels=2, n_viewers=24)

    def run_into(root):
        store = ResultStore(root)
        run_universe(spec, seed=3, repetitions=1, workers=1, store=store,
                     compute_engine=None, shards=None)
        return store

    store_off = run_into(tmp_path / "off")
    with telemetry_session() as telemetry:
        store_on = run_into(tmp_path / "on")
        persist_telemetry_document(
            store_on, run={"kind": "universe", "name": spec.name}
        )
    documents_off = store_documents(tmp_path / "off")
    documents_on = store_documents(tmp_path / "on")
    telemetry_docs = [name for name in documents_on
                      if name.startswith("telemetry-")]
    # The document itself plus its .meta.json listing sidecar.
    assert len(telemetry_docs) == 2
    for name in telemetry_docs:
        documents_on.pop(name)
    assert documents_on == documents_off  # byte-identity (volatile-stripped)
    assert sorted(store_on.keys()) != sorted(store_off.keys())  # only telemetry differs
    assert sorted(k for k in store_on.keys() if not k.startswith("telemetry-")) == \
        sorted(store_off.keys())
