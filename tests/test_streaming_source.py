"""Tests for source node behaviour."""

import pytest

from repro.core.base import Stream
from repro.streaming.segment import StreamSpec, SwitchPlan
from repro.streaming.source import SourceNode


def _old_spec():
    return StreamSpec(stream=Stream.OLD, source_id=0, first_id=0, rate=10.0)


def _new_spec(first_id=900):
    return StreamSpec(stream=Stream.NEW, source_id=1, first_id=first_id, rate=10.0)


def test_source_generates_at_stream_rate():
    source = SourceNode(_new_spec(), outbound_rate=60.0, start_time=0.0)
    assert source.generate_until(0.0) == ()
    new_ids = source.generate_until(2.0)
    assert list(new_ids) == list(range(900, 920))
    assert source.generated == 20
    assert source.last_generated_id() == 919
    # idempotent for the same time
    assert source.generate_until(2.0) == ()


def test_source_stops_at_stop_time():
    source = SourceNode(_old_spec(), outbound_rate=60.0, start_time=-5.0, stop_time=0.0)
    source.generate_until(10.0)
    assert source.generated == 50  # only the 5 seconds before the stop
    assert source.buffer.contains(49)
    assert not source.buffer.contains(50)


def test_preload_fills_buffer_instantly():
    source = SourceNode(_old_spec(), outbound_rate=60.0, stop_time=0.0)
    ids = source.preload(900)
    assert len(ids) == 900
    assert source.generated == 900
    assert source.last_generated_id() == 899
    assert len(source.buffer) == 900
    with pytest.raises(ValueError):
        source.preload(-1)


def test_source_has_zero_inbound_and_positive_outbound():
    source = SourceNode(_old_spec(), outbound_rate=60.0)
    assert source.inbound_rate == 0.0
    assert source.outbound_rate == 60.0
    with pytest.raises(ValueError):
        SourceNode(_old_spec(), outbound_rate=0.0)


def test_switch_announcement_requires_plan():
    source = SourceNode(_new_spec(), outbound_rate=60.0)
    assert source.switch_announcement() is None
    plan = SwitchPlan.from_old_stream(899)
    source.announce_switch(plan)
    assert source.switch_announcement() == (899, 900)


def test_snapshot_carries_announcement_and_availability():
    source = SourceNode(_new_spec(), outbound_rate=60.0, start_time=0.0)
    source.announce_switch(SwitchPlan.from_old_stream(899))
    source.generate_until(3.0)
    snap = source.snapshot_for([(900, 949)], send_rate=12.0)
    assert snap.owner_id == 1
    assert snap.available == frozenset(range(900, 930))
    assert snap.switch_info == (899, 900)
    assert snap.send_rate == 12.0


def test_last_generated_id_none_before_first_segment():
    source = SourceNode(_new_spec(), outbound_rate=60.0)
    assert source.last_generated_id() is None
    assert source.stream is Stream.NEW
