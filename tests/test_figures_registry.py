"""The declarative figure registry, universe figures and the HTML report.

Everything here runs at miniature scale against one module-scoped warm
store: the registry's completeness and kwargs routing, the sketch-backed
universe figures' aggregate-only data path (pinned by poisoning the raw
outcome table), serial-vs-sharded bit-identity of the universe figures,
and the report's warm-replay determinism.
"""

import json

import pytest

from repro.channels.runner import run_universe, universe_fingerprint
from repro.channels.universe import UniverseSpec
from repro.experiments.store import ResultStore
from repro.experiments.sweeps import clear_sweep_cache
from repro.figures import (
    FIGURES,
    FigureUnavailable,
    figure_names,
    get_figure,
    render_figure,
    render_report,
)
from repro.figures.registry import FigureSpec, register_figure

TINY_SIZES = [30]
TINY_UNIVERSE = UniverseSpec(
    name="lineup-mini", n_channels=3, n_viewers=36, duration=25.0
)

#: One uniform kwargs set for every figure -- what the report passes.
RENDER_KWARGS = dict(seed=0, sizes=TINY_SIZES, n_nodes=36, repetitions=1, workers=1)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


def _persist_probed_run(store):
    """One probed scalar session, persisted as a telemetry document --
    the data source of the probe-backed figures."""
    from repro.experiments.config import make_session_config
    from repro.experiments.runner import run_single
    from repro.experiments.store import persist_telemetry_document
    from repro.obs import telemetry_session

    with telemetry_session(probes=True) as telemetry:
        run_single(make_session_config(36, seed=0, max_time=60.0))
    persist_telemetry_document(
        store,
        run={"kind": "run", "name": "probe-fixture", "seed": 0},
        telemetry=telemetry,
    )


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store holding a serial universe run plus every simulation figure."""
    root = tmp_path_factory.mktemp("warm-store")
    store = ResultStore(root)
    run_universe(TINY_UNIVERSE, seed=0, repetitions=2, store=store)
    _persist_probed_run(store)
    clear_sweep_cache()
    for name in figure_names():
        render_figure(name, store=store, **RENDER_KWARGS)
    clear_sweep_cache()
    return store


def figure_json(result):
    """Canonical JSON of a figure's data (what determinism asserts on)."""
    return json.dumps(
        {
            "rows": result.rows,
            "series": {k: list(map(list, v)) for k, v in result.series.items()},
            "meta": result.meta,
        },
        sort_keys=True,
    )


class TestRegistry:
    def test_covers_all_paper_figures_and_universe_figures(self):
        ids = {spec.figure_id for spec in FIGURES.values()}
        assert {"2", "5", "6", "7", "8", "9", "10", "11", "12"} <= ids
        kinds = {spec.kind for spec in FIGURES.values()}
        assert kinds == {"static", "track", "sweep", "universe"}
        # Three sketch-backed universe figures plus two probe-backed ones.
        assert sum(1 for s in FIGURES.values() if s.kind == "universe") == 5
        assert {"probe-swarm-health", "probe-startup-funnel"} <= set(FIGURES)

    def test_get_figure_unknown_name_lists_known_ones(self):
        with pytest.raises(KeyError, match="fig7-switch-static"):
            get_figure("no-such-figure")

    def test_duplicate_registration_rejected(self):
        spec = get_figure("fig2-ordering")
        with pytest.raises(ValueError, match="already registered"):
            register_figure(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown figure kind"):
            FigureSpec(name="x", title="x", kind="holographic",
                       builder=lambda: None, figure_id="x")

    def test_render_filters_kwargs_to_the_declared_surface(self):
        # fig2 declares no params: the uniform kwargs soup must not leak
        # into its zero-argument builder.
        result = render_figure("fig2-ordering", store=None, **RENDER_KWARGS)
        assert result.figure_id == "2"

    def test_render_drops_none_values_so_defaults_apply(self):
        result = render_figure("fig7-switch-static", sizes=TINY_SIZES,
                               n_nodes=None, store=None, paper_scale=None)
        assert [row["n_nodes"] for row in result.rows] == TINY_SIZES


class TestUniverseFigures:
    def test_need_a_store(self):
        with pytest.raises(FigureUnavailable, match="results store"):
            render_figure("universe-summary")

    def test_empty_store_reports_no_documents(self, tmp_path):
        with pytest.raises(FigureUnavailable, match="no universe documents"):
            render_figure("universe-summary", store=ResultStore(tmp_path))

    def test_unknown_universe_filter_reports_scope(self, warm_store):
        with pytest.raises(FigureUnavailable, match="'nope'"):
            render_figure("universe-summary", store=warm_store, universe="nope")

    def test_summary_shape(self, warm_store):
        result = render_figure("universe-summary", store=warm_store)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["universe"] == "lineup-mini"
        assert row["reps"] == 2
        assert row["samples"] > 0
        assert row["fast_mean"] < row["normal_mean"]
        assert row["normal_p50"] <= row["normal_p90"] <= row["normal_p99"]

    def test_percentile_curves_are_monotone(self, warm_store):
        result = render_figure("universe-percentiles", store=warm_store)
        for algorithm in ("normal", "fast"):
            values = [v for _, v in result.series[algorithm]]
            assert values == sorted(values)

    def test_deciles_cover_the_lineup(self, warm_store):
        result = render_figure("universe-deciles", store=warm_store)
        assert len(result.rows) == TINY_UNIVERSE.n_channels
        assert sum(row["viewers"] for row in result.rows) > 0

    def test_reads_only_aggregates_never_raw_outcomes(self, warm_store, tmp_path):
        """Poison every document's raw outcome table: figures must not notice.

        This is the O(channels x percentiles) guarantee -- universe figures
        render from the sketch-aggregate block alone, so a million-viewer
        outcome table is never even deserialised into row objects.
        """
        poisoned = ResultStore(tmp_path / "poisoned")
        baseline = {}
        for key in warm_store.keys():
            document = warm_store.load(key)
            if document.get("kind") != "universe" or "aggregates" not in document:
                continue
            document = dict(document)
            document["rep"] = {"poison": "raw outcomes must never be read"}
            poisoned.save_universe(key, document)
        for name in ("universe-deciles", "universe-percentiles", "universe-summary"):
            baseline[name] = figure_json(render_figure(name, store=warm_store))
            assert figure_json(render_figure(name, store=poisoned)) == baseline[name]

    def test_documents_without_aggregates_explain_the_upgrade(self, warm_store, tmp_path):
        legacy = ResultStore(tmp_path / "legacy")
        for key in warm_store.keys():
            document = warm_store.load(key)
            if document.get("kind") != "universe" or "aggregates" not in document:
                continue
            document = dict(document)
            del document["aggregates"]
            legacy.save_universe(key, document)
        with pytest.raises(FigureUnavailable, match="re-run the universe"):
            render_figure("universe-summary", store=legacy)

    def test_serial_and_sharded_runs_render_identically(self, warm_store, tmp_path):
        """The acceptance criterion: figures from a --shards 2 store are
        bit-identical to the serial store's."""
        sharded = ResultStore(tmp_path / "sharded")
        run_universe(TINY_UNIVERSE, seed=0, repetitions=2, store=sharded,
                     workers=2, shards=2)
        key = universe_fingerprint(TINY_UNIVERSE, 0)
        serial_doc = dict(warm_store.load(key))
        sharded_doc = dict(sharded.load(key))
        serial_doc.pop("created", None)  # the only allowed difference
        sharded_doc.pop("created", None)
        assert json.dumps(serial_doc, sort_keys=True) == \
            json.dumps(sharded_doc, sort_keys=True)
        for name in ("universe-deciles", "universe-percentiles", "universe-summary"):
            assert figure_json(render_figure(name, store=warm_store)) == \
                figure_json(render_figure(name, store=sharded))


class TestReport:
    def test_renders_every_registered_figure_from_the_warm_store(self, warm_store, tmp_path):
        summary = render_report(warm_store, tmp_path / "report", **RENDER_KWARGS)
        assert summary.rendered == list(figure_names())
        assert summary.skipped == {}
        html = summary.html_path.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        for name in figure_names():
            assert name in html
            payload = json.loads((tmp_path / "report" / "data" / f"{name}.json")
                                 .read_text(encoding="utf-8"))
            assert payload["name"] == name
            assert payload["rows"] or payload["series"]
        assert "<svg" in html and "<table>" in html

    def test_warm_replay_is_byte_identical(self, warm_store, tmp_path):
        first = render_report(warm_store, tmp_path / "one", **RENDER_KWARGS)
        second = render_report(warm_store, tmp_path / "two", **RENDER_KWARGS)
        assert first.html_path.read_bytes() == second.html_path.read_bytes()
        for left, right in zip(first.data_files, second.data_files):
            assert left.read_bytes() == right.read_bytes()

    def test_replay_only_store_skips_missing_figures_gracefully(self, tmp_path):
        store = ResultStore(tmp_path / "empty-store", replay_only=True)
        summary = render_report(store, tmp_path / "report")
        assert summary.rendered == ["fig2-ordering"]
        assert set(summary.skipped) == set(figure_names()) - {"fig2-ordering"}
        html = summary.html_path.read_text(encoding="utf-8")
        assert "Skipped figures" in html

    def test_bench_trajectory_section(self, warm_store, tmp_path):
        bench_dir = tmp_path / "bench"
        bench_dir.mkdir()
        (bench_dir / "BENCH_abc.json").write_text(json.dumps({
            "git_sha": "abc", "created": "2026-01-01T00:00:00+00:00",
            "benchmarks": [{"name": "b::one", "mean_s": 0.25}],
        }), encoding="utf-8")
        summary = render_report(warm_store, tmp_path / "report",
                                bench_dir=bench_dir, **RENDER_KWARGS)
        html = summary.html_path.read_text(encoding="utf-8")
        assert "Benchmark trajectory" in html and "b::one" in html


class TestReportCLI:
    def test_report_command_end_to_end(self, warm_store, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli-report"
        code = main([
            "report",
            "--results-dir", str(warm_store.root),
            "--from-store",
            "--out", str(out),
            "--sizes", "30",
            "--n-nodes", "36",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["skipped"] == {}
        assert sorted(payload["rendered"]) == sorted(figure_names())
        assert (out / "report.html").stat().st_size > 0
